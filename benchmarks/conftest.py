"""Shared fixtures for the benchmark harness.

Each ``test_*`` bench regenerates one table or figure of the paper on
the full A/B dataset sweep and prints the series (run pytest with
``-s`` or check the captured output).  ``benchmark.pedantic`` with a
single round is used because one "iteration" here is a complete
multi-simulation experiment, not a microbenchmark.
"""

import pytest


@pytest.fixture
def show():
    """Print a rendered table so it lands in the benchmark log."""

    def _show(text: str) -> None:
        print()
        print(text)

    return _show
