"""Ablations over the GLSC design freedoms (Sections 3.2-3.3).

These are not in the paper's evaluation; they exercise the design
choices the paper *discusses* and DESIGN.md calls out:

* same-line combining on/off (benefit source #3),
* alias resolution at gather-link vs scatter-conditional time,
* fail-on-miss link policy (Section 3.2c),
* protecting linked lines from eviction (Section 3.2b),
* GLSC entries in the L1 tags vs a small associative buffer
  (Section 3.3's alternative implementation),
* the stride prefetcher's contribution.

Each policy flip is a per-spec config override on one shared
:class:`~repro.sim.executor.Executor`, so the baseline run is
simulated once no matter how many ablations compare against it.
"""

from repro.sim.executor import Executor, RunSpec


def _run(executor, kernel="tms", variant="glsc", **overrides):
    return executor.run(
        RunSpec(kernel, "A", "4x4", 4, variant, overrides=overrides)
    )


def test_ablation_line_combining(benchmark, show):
    executor = Executor()

    def run():
        return {
            kernel: (
                _run(executor, kernel).cycles,
                _run(executor, kernel, gsu_combine_lines=False).cycles,
            )
            for kernel in ("tms", "gbc", "hip")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for kernel, (with_combine, without) in results.items():
        show(
            f"combining {kernel}: on={with_combine} off={without} "
            f"(off/on = {without / with_combine:.3f})"
        )
        # Combining never hurts; it helps most where lanes share lines.
        assert without >= with_combine * 0.98


def test_ablation_alias_side(benchmark, show):
    executor = Executor()

    def run():
        return (
            _run(executor, "hip").cycles,
            _run(executor, "hip", glsc_alias_in_gather=True).cycles,
        )

    at_scatter, at_gather = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        f"HIP-A alias resolution: at-scatter={at_scatter} "
        f"at-gather={at_gather}"
    )
    # Both sides are legal implementations (Section 3.1); resolving at
    # gather time avoids wasted scatter work, so it should not lose
    # noticeably.
    assert at_gather < at_scatter * 1.10


def test_ablation_fail_on_miss(benchmark, show):
    executor = Executor()

    def run():
        return (
            _run(executor, "tms"),
            _run(executor, "tms", glsc_fail_on_miss=True),
        )

    stats_wait, stats_fail = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        f"TMS-A fail-on-miss: wait={stats_wait.cycles} "
        f"fail={stats_fail.cycles}; failure rate "
        f"{stats_wait.glsc_failure_rate:.3f} -> "
        f"{stats_fail.glsc_failure_rate:.3f}"
    )
    # Failing missing lanes must raise the element failure rate (the
    # lanes retry) — that's the policy's defining trade-off.
    assert stats_fail.glsc_failure_rate > stats_wait.glsc_failure_rate


def test_ablation_buffer_tracker(benchmark, show):
    executor = Executor()

    def run():
        return {
            "tag-array": _run(executor, "gbc"),
            "buffer-4": _run(executor, "gbc", glsc_buffer_entries=4),
            "buffer-64": _run(executor, "gbc", glsc_buffer_entries=64),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, stats in results.items():
        show(
            f"GBC-A GLSC storage {name}: cycles={stats.cycles} "
            f"failure={stats.glsc_failure_rate:.3f}"
        )
    # A generously sized buffer behaves like the tag array; a 4-entry
    # buffer may drop reservations (more retries) but stays correct.
    assert (
        abs(
            results["buffer-64"].cycles - results["tag-array"].cycles
        )
        <= 0.1 * results["tag-array"].cycles
    )


def test_ablation_prefetcher(benchmark, show):
    executor = Executor()

    def run():
        return (
            _run(executor, "tms", variant="base"),
            _run(executor, "tms", variant="base", prefetch_enabled=False),
        )

    with_pf, without_pf = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        f"TMS-A Base prefetcher: on={with_pf.cycles} off={without_pf.cycles} "
        f"(hits {with_pf.prefetch_hits})"
    )
    assert with_pf.cycles < without_pf.cycles
    assert with_pf.prefetch_hits > 0
