"""Extension benches: beyond the paper's figures (see DESIGN.md §6).

* a dense SIMD-width sweep locating each kernel's crossover width,
* main-memory latency sensitivity of the GLSC advantage,
* graceful degradation under injected reservation loss.
"""

from repro.harness.extensions import (
    failure_resilience,
    latency_sensitivity,
    width_sweep,
)


def test_width_sweep_crossover(benchmark, show):
    row = benchmark.pedantic(
        lambda: width_sweep("tms", "A", widths=(1, 2, 4, 8, 16)),
        rounds=1,
        iterations=1,
    )
    show(
        "TMS-A Base/GLSC ratio by width: "
        + ", ".join(f"W{w}={r:.2f}" for w, r in sorted(row.ratios.items()))
        + f"  (crossover at W{row.crossover_width()})"
    )
    # The ratio is (weakly) increasing in width and crosses above 1.
    widths = sorted(row.ratios)
    assert row.ratios[widths[-1]] > row.ratios[widths[0]]
    assert row.crossover_width() is not None
    assert row.crossover_width() <= 4


def test_latency_sensitivity(benchmark, show):
    row = benchmark.pedantic(
        lambda: latency_sensitivity("tms", "A", latencies=(70, 280, 560)),
        rounds=1,
        iterations=1,
    )
    show(
        "TMS-A Base/GLSC ratio by memory latency: "
        + ", ".join(f"{l}cyc={r:.2f}" for l, r in sorted(row.ratios.items()))
    )
    # Miss overlap matters more the farther memory is.
    assert row.ratios[560] > row.ratios[70]


def test_failure_resilience(benchmark, show):
    rows = benchmark.pedantic(
        lambda: failure_resilience("gbc", "A", losses=(0.0, 0.05, 0.1)),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        show(
            f"GBC-A loss={row.loss:.2f}: cycles={row.cycles} "
            f"failure={row.failure_rate:.3f} "
            f"slowdown={row.slowdown_vs_clean:.2f}x"
        )
    # Degradation is graceful: 10% random loss costs well under 2x.
    assert rows[-1].slowdown_vs_clean < 2.0
    # And failure rate rises monotonically with injected loss.
    rates = [row.failure_rate for row in rows]
    assert rates == sorted(rates)
