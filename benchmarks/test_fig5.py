"""Regenerate Figure 5: benchmark behaviour with GLSC at 1x1.

(a) fraction of execution time in synchronization operations at
1-wide SIMD; (b) SIMD efficiency — speedup of the 4- and 16-wide GLSC
binaries over 1-wide.
"""

from repro.harness import experiments, report
from repro.sim.executor import Executor


def test_fig5a_sync_time(benchmark, show):
    executor = Executor()
    rows = benchmark.pedantic(
        lambda: experiments.fig5a(executor=executor), rounds=1, iterations=1
    )
    show(report.render_fig5a(rows))
    # Shape check (paper: every kernel spends visible time in sync ops).
    assert all(row.sync_percent > 1.0 for row in rows)


def test_fig5b_simd_efficiency(benchmark, show):
    executor = Executor()
    rows = benchmark.pedantic(
        lambda: experiments.fig5b(executor=executor), rounds=1, iterations=1
    )
    show(report.render_fig5b(rows))
    # Shape check (paper: every benchmark gains from 4-wide SIMD).
    assert all(row.speedup_4wide > 1.0 for row in rows)
