"""Regenerate Figure 6: Base vs GLSC across topologies, 4-wide SIMD.

The paper's headline result: GLSC is on average 76% faster at 1x1 and
54% faster at 4x4.  Our simulator reproduces the *shape* — GLSC >= Base
almost everywhere, with HIP the documented exception on skewed images.
"""

import statistics

from repro.harness import experiments, report
from repro.sim.executor import Executor


def test_fig6_base_vs_glsc(benchmark, show):
    executor = Executor()
    rows = benchmark.pedantic(
        lambda: experiments.fig6(executor=executor), rounds=1, iterations=1
    )
    show(report.render_fig6(rows))

    ratios_1x1 = [row.ratio("1x1") for row in rows]
    ratios_4x4 = [row.ratio("4x4") for row in rows]
    show(
        f"mean Base/GLSC ratio: 1x1={statistics.mean(ratios_1x1):.2f} "
        f"(paper 1.76), 4x4={statistics.mean(ratios_4x4):.2f} (paper 1.54)"
    )
    # Shape: GLSC wins on average, and for the non-HIP kernels
    # individually (HIP may invert on skewed images, as in the paper).
    assert statistics.mean(ratios_4x4) > 1.0
    for row in rows:
        if row.kernel != "hip":
            assert row.ratio("4x4") > 0.9, (row.kernel, row.dataset)
