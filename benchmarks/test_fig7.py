"""Regenerate Figure 7: the Section 5.2 microbenchmark, scenarios A-D.

Scenario A isolates miss overlap, B adds line combining, C isolates
instruction-count reduction, and D (all lanes aliased) is the case
with no SIMD parallelism, where GLSC can lose — especially at 16-wide,
exactly as the paper observes.
"""

from repro.harness import experiments, report
from repro.sim.executor import Executor


def test_fig7_microbenchmark(benchmark, show):
    executor = Executor()
    rows = benchmark.pedantic(
        lambda: experiments.fig7(executor=executor), rounds=1, iterations=1
    )
    show(report.render_fig7(rows))

    by_name = {row.scenario: row for row in rows}
    # Shape checks straight from Section 5.2's discussion:
    # A (miss overlap + instructions) beats B/C (hits only).
    assert by_name["A"].ratio_4wide > by_name["C"].ratio_4wide
    # B (combining) >= C (no combining possible).
    assert by_name["B"].ratio_4wide >= by_name["C"].ratio_4wide - 0.05
    # D has no SIMD parallelism: GLSC no better than Base...
    assert by_name["D"].ratio_4wide <= 1.05
    # ...and at 16-wide GLSC is *slower* than Base in scenario D.
    assert by_name["D"].ratio_16wide < 1.0
