"""Regenerate Figure 8: GLSC benefit vs SIMD width (1/4/16) at 4x4.

The paper's forward-looking claim: GLSC's advantage grows with SIMD
width (avg ~1.0x at 1-wide to ~2x at 16-wide), most for the kernels
with high SIMD efficiency.
"""

import statistics

from repro.harness import experiments, report
from repro.sim.executor import Executor


def test_fig8_simd_width_scaling(benchmark, show):
    executor = Executor()
    rows = benchmark.pedantic(
        lambda: experiments.fig8(executor=executor), rounds=1, iterations=1
    )
    show(report.render_fig8(rows))

    mean_by_width = {
        width: statistics.mean(row.ratios[width] for row in rows)
        for width in (1, 4, 16)
    }
    show(
        "mean Base/GLSC ratio by width: "
        + ", ".join(f"{w}-wide={r:.2f}" for w, r in mean_by_width.items())
    )
    # Shape: the mean ratio grows monotonically with SIMD width, and
    # 1-wide is near parity (paper: "On average, GLSC has the same
    # performance as Base" at 1-wide).
    assert 0.75 <= mean_by_width[1] <= 1.25
    assert mean_by_width[4] > mean_by_width[1]
    assert mean_by_width[16] > mean_by_width[4]
