"""Regenerate Table 4: analysis of where GLSC's benefit comes from.

Columns: dynamic-instruction reduction, memory-stall reduction, L1
accesses saved by GSU line combining (as a share of atomic-op
accesses), and the GLSC element failure rates at 1x1 and 4x4.
"""

from repro.harness import experiments, report
from repro.sim.executor import Executor


def test_table4_analysis(benchmark, show):
    executor = Executor()
    rows = benchmark.pedantic(
        lambda: experiments.table4(executor=executor), rounds=1, iterations=1
    )
    show(report.render_table4(rows))

    by_key = {(r.kernel, r.dataset): r for r in rows}
    # Shape checks from the paper's Table 4:
    # every kernel executes fewer instructions with GLSC...
    assert all(r.instruction_reduction > 0 for r in rows)
    # ...the alias-heavy kernels fail at their alias rate even alone...
    assert by_key[("gbc", "A")].failure_rate_1x1 > 20
    assert by_key[("hip", "A")].failure_rate_1x1 > 25
    # ...the reduction kernels barely fail at all...
    for kernel in ("tms", "smc", "fs", "gps", "mfp"):
        assert by_key[(kernel, "A")].failure_rate_1x1 < 2.0, kernel
    # ...and cross-thread collisions add little on top of aliasing
    # for the alias-dominated kernels.
    assert (
        by_key[("gbc", "A")].failure_rate_4x4
        - by_key[("gbc", "A")].failure_rate_1x1
        < 5.0
    )


def test_table1_and_table3_render(benchmark, show):
    """The two configuration tables (no simulation needed)."""
    rows = benchmark.pedantic(
        lambda: (experiments.table1(), experiments.table3()),
        rounds=1,
        iterations=1,
    )
    show(report.render_table1(rows[0]))
    show(report.render_table3(rows[1]))
    assert rows[0]["mem_latency"] == 280
    assert len(rows[1]) == 14
