#!/usr/bin/env python
"""HIP case study: when does GLSC help a histogram, and when not?

Reproduces the paper's Section 5.1 discussion of HIP — the one
benchmark where Base can beat GLSC.  On spatially coherent images
(cars, people) many SIMD lanes alias on the same bin and GLSC pays
retries; on random input the alias rate collapses and GLSC wins.

Run:  python examples/histogram_images.py
"""

from repro.sim.config import MachineConfig
from repro.sim.runner import run_kernel
from repro.workloads.datasets import dataset_params
from repro.workloads.images import alias_fraction, generate_image


def main() -> None:
    config = MachineConfig(n_cores=4, threads_per_core=4, simd_width=4)
    print(f"machine: 4x4, {config.simd_width}-wide SIMD\n")
    print(f"{'dataset':10s} {'alias@4':>8s} {'Base':>9s} {'GLSC':>9s} "
          f"{'Base/GLSC':>10s} {'fail rate':>10s}")
    for dataset in ("A", "B", "random"):
        params = dataset_params("hip", dataset)
        pixels = generate_image(
            n_pixels=params["n_pixels"],
            n_colors=params["n_bins"],
            coherence=params["coherence"],
            skew=params["skew"],
            seed=params["seed"],
        )
        aliasing = alias_fraction(
            [p % params["n_bins"] for p in pixels], config.simd_width
        )
        base = run_kernel("hip", dataset, config, "base").stats
        glsc = run_kernel("hip", dataset, config, "glsc").stats
        print(
            f"{dataset:10s} {aliasing:8.1%} {base.cycles:9d} "
            f"{glsc.cycles:9d} {base.cycles / glsc.cycles:10.2f} "
            f"{glsc.glsc_failure_rate:10.1%}"
        )
    print(
        "\nAs in the paper: the car-image regime (A) makes GLSC lose to the"
        "\nprivatized Base, while random input flips the result."
    )


if __name__ == "__main__":
    main()
