#!/usr/bin/env python
"""Run the paper's Figure 2 and Figure 3 code sequences *as assembly*.

The paper presents its parallel-histogram kernels as pseudo-assembly;
this example assembles those listings with :mod:`repro.isa.assembler`
and executes them on the simulator:

* Figure 2  — Base: scalar ll/sc retry loop per pixel;
* Figure 3A — GLSC: the vgatherlink/vinc/vscattercond reduction loop;
* Figure 3B — GLSC locks: VLOCK / update / VUNLOCK per SIMD group.

All three build the same histogram; the script verifies the results
agree and compares cycle counts.  The machine is described by the same
:class:`~repro.sim.executor.RunSpec` the run API uses, and the script
closes by running the full HIP (histogram) benchmark kernel through
the :class:`~repro.sim.executor.Executor` for comparison.

Run:  python examples/paper_figures.py
"""

from repro import Machine
from repro.isa.assembler import assemble
from repro.sim.executor import Executor, RunSpec, Sweep

N_PIXELS = 2048
N_BINS = 2048

# --- Figure 2: parallel histogram with load-linked/store-conditional ---
FIGURE2 = assemble("""
    mov     ri, LO
    mul     roff, ri, 4
loop:
    bge     ri, HI, done
    lw      rpix, MINPUT, roff       # Minput[i]
    mod     rbin, rpix, NBINS        # bin = Minput[i] % numBins
    mul     raddr, rbin, 4
    add     raddr, raddr, MBINS
retry:
    ll      rtmp, raddr              # 11 Rtmp, &Mbins[bin]
    addi    rtmp, rtmp, 1            # Rtmp++
    sc      rok, raddr, rtmp         # sc Rsuccess, &Mbins[bin], Rtmp
    beq     rok, 0, retry            # retry if sc failed
    addi    ri, ri, 1
    addi    roff, roff, 4
    jmp     loop
done:
    halt
""")

# --- Figure 3A: the same reduction with gather-linked/scatter-cond ---
FIGURE3A = assemble("""
    mov     ri, LO
    mul     roff, ri, 4
loop:
    bge     ri, HI, done
    vload   vinput, MINPUT, roff     # load next SIMD_WIDTH inputs
    vmod    vbins, vinput, NBINS     # compute the bins
    kones   ftodo                    # FtoDo = ALL_ONES
retry:
    kmove   ftmp, ftodo              # Ftmp = FtoDo
    vgatherlink  ftmp, vtmp, MBINS, vbins, ftmp
    vinc    vtmp, vtmp, ftmp         # increment bins
    vscattercond ftmp, vtmp, MBINS, vbins, ftmp
    kxor    ftodo, ftodo, ftmp       # FtoDo ^= Ftmp
    kbnz    ftodo, retry
    add     ri, ri, W
    mul     roff, ri, 4
    jmp     loop
done:
    halt
""")

# --- Figure 3B: histogram under fine-grained vector locks ---
FIGURE3B = assemble("""
    vbroadcast vzero, 0
    vbroadcast vone, 1
    mov     ri, LO
    mul     roff, ri, 4
loop:
    bge     ri, HI, done
    vload   vinput, MINPUT, roff
    vmod    vbins, vinput, NBINS
    kones   ftodo
retry:
    kmove   f, ftodo
    # VLOCK(MlockArray, Vindex, F):
    vgatherlink  ftmp1, vtmp, MLOCKS, vbins, f
    vcmpeq  ftmp2, vzero, vtmp, ftmp1       # which locks are available
    vscattercond f, vone, MLOCKS, vbins, ftmp2
    # updateFn: increment the bins we hold locks for (plain SIMD ops
    # are safe inside the critical section)
    vgather vcnt, MBINS, vbins, f
    vinc    vcnt, vcnt, f
    vscatter vcnt, MBINS, vbins, f
    # VUNLOCK(MlockArray, Vindex, F):
    vscatter vzero, MLOCKS, vbins, f
    kxor    ftodo, ftodo, f
    kbnz    ftodo, retry
    add     ri, ri, W
    mul     roff, ri, 4
    jmp     loop
done:
    halt
""")


#: The machine every listing runs on, in run-API terms: 4 cores x 1
#: thread, 4-wide SIMD (the kernel/variant fields are informational
#: here — the listings below are assembled by hand).
SPEC = RunSpec("hip", "A", topology="4x1", simd_width=4, variant="glsc")


def run(listing, name):
    config = SPEC.config()
    machine = Machine(config)
    pixels = [(13 * i + i // 7) % 997 for i in range(N_PIXELS)]
    m_input = machine.image.alloc_array(pixels)
    m_bins = machine.image.alloc_zeros(N_BINS)
    m_locks = machine.image.alloc_zeros(N_BINS)

    per_thread = N_PIXELS // config.n_threads
    for tid in range(config.n_threads):
        env = {
            "MINPUT": m_input.base + tid * per_thread * 4,
            "MBINS": m_bins.base,
            "MLOCKS": m_locks.base,
            "NBINS": N_BINS,
            "LO": 0,
            "HI": per_thread,
        }
        machine.add_program(listing.program(env))
    stats = machine.run()

    expected = [0] * N_BINS
    for p in pixels:
        expected[p % N_BINS] += 1
    actual = [int(v) for v in m_bins.to_list()]
    assert actual == expected, f"{name}: histogram mismatch"
    return stats


def main() -> None:
    print(f"histogram of {N_PIXELS} pixels into {N_BINS} bins, "
          f"4x1 machine, 4-wide SIMD\n")
    results = {}
    for name, listing in (
        ("Figure 2  (Base ll/sc)", FIGURE2),
        ("Figure 3A (GLSC reduction)", FIGURE3A),
        ("Figure 3B (GLSC locks)", FIGURE3B),
    ):
        stats = run(listing, name)
        results[name] = stats
        print(f"{name:28s} cycles={stats.cycles:7d} "
              f"instructions={stats.total_instructions:7d} "
              f"fail={stats.glsc_failure_rate:.1%}")
    base = results["Figure 2  (Base ll/sc)"].cycles
    glsc = results["Figure 3A (GLSC reduction)"].cycles
    print(f"\nFigure 3A speedup over Figure 2: {base / glsc:.2f}x "
          f"(all three listings verified against the oracle)")

    # The same comparison through the run API: the registry's HIP
    # kernel (the paper's real histogram benchmark) on the same
    # machine, both variants, one deduplicated sweep.
    executor = Executor()
    sweep = Sweep.product(("hip",), (SPEC.dataset,), (SPEC.topology,),
                          (SPEC.simd_width,), ("base", "glsc"))
    stats = executor.run_sweep(sweep)
    kernel_base = stats[RunSpec("hip", SPEC.dataset, SPEC.topology,
                                SPEC.simd_width, "base")].cycles
    kernel_glsc = stats[RunSpec("hip", SPEC.dataset, SPEC.topology,
                                SPEC.simd_width, "glsc")].cycles
    print(f"HIP benchmark kernel via Executor:   {kernel_base / kernel_glsc:.2f}x "
          f"(base={kernel_base} glsc={kernel_glsc} cycles, "
          f"{executor.simulations} simulations)")


if __name__ == "__main__":
    main()
