#!/usr/bin/env python
"""Profile a kernel with the instruction tracer.

Declares the run as a :class:`~repro.sim.executor.RunSpec` and executes
it through :func:`~repro.sim.executor.execute_spec` — the same path the
parallel executor's workers use — with an
:class:`~repro.sim.trace.InstructionTrace` attached.  The per-
instruction-kind latency profiles explain *where* GLSC's cycles go
(Base burns serial ll/sc round-trips; GLSC concentrates time in a few
long-latency gather/scatter instructions that overlap their misses).

Run:  python examples/profile_kernel.py
"""

from repro.sim.executor import RunSpec, execute_spec
from repro.sim.trace import InstructionTrace


def profile(variant: str) -> None:
    spec = RunSpec("tms", "A", "4x4", 4, variant)
    trace = InstructionTrace(limit=50_000)
    stats = execute_spec(spec, tracer=trace)

    print(f"--- {variant.upper()} ---  ({spec.label()})")
    print(f"cycles: {stats.cycles}   "
          f"instructions: {stats.total_instructions}   "
          f"sync share of occupancy: {trace.sync_share():.1%}")
    print(trace.render(top=8))
    print()


def main() -> None:
    for variant in ("base", "glsc"):
        profile(variant)


if __name__ == "__main__":
    main()
