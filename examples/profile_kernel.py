#!/usr/bin/env python
"""Profile a kernel with the instruction tracer.

Attaches an :class:`~repro.sim.trace.InstructionTrace` to the machine,
runs the TMS kernel in both variants, and prints per-instruction-kind
latency profiles — the view that explains *where* GLSC's cycles go
(Base burns serial ll/sc round-trips; GLSC concentrates time in a few
long-latency gather/scatter instructions that overlap their misses).

Run:  python examples/profile_kernel.py
"""

from repro.kernels.registry import make_kernel
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.trace import InstructionTrace


def profile(variant: str) -> None:
    config = MachineConfig(n_cores=4, threads_per_core=4, simd_width=4)
    trace = InstructionTrace(limit=50_000)
    kernel = make_kernel("tms", "A", config.n_threads)
    machine = Machine(config, tracer=trace)
    kernel.allocate(machine.image)
    for _ in range(config.n_threads):
        machine.add_program(kernel.program(variant))
    stats = machine.run()
    kernel.verify()

    print(f"--- {variant.upper()} ---")
    print(f"cycles: {stats.cycles}   "
          f"instructions: {stats.total_instructions}   "
          f"sync share of occupancy: {trace.sync_share():.1%}")
    print(trace.render(top=8))
    print()


def main() -> None:
    for variant in ("base", "glsc"):
        profile(variant)


if __name__ == "__main__":
    main()
