#!/usr/bin/env python
"""Profile a kernel with the observability layer.

Declares the run as a :class:`~repro.sim.executor.RunSpec` and executes
it through the :class:`~repro.sim.executor.Executor` with an
:class:`~repro.obs.EventBus` attached, carrying three sinks at once:

* an :class:`~repro.sim.trace.InstructionTrace` — the per-
  instruction-kind latency profiles explain *where* GLSC's cycles go
  (Base burns serial ll/sc round-trips; GLSC concentrates time in a
  few long-latency gather/scatter instructions that overlap their
  misses);
* a :class:`~repro.obs.MetricsSink` — memory-hierarchy counters and
  the per-cause GLSC failure/reservation attribution;
* a :class:`~repro.obs.PerfettoSink` — the same run as a Chrome
  trace-event timeline: open the written ``.trace.json`` at
  https://ui.perfetto.dev to see every thread's instruction slices
  and the memory-hierarchy events cycle by cycle.

Run:  python examples/profile_kernel.py
"""

from repro.obs import EventBus, MetricsSink, PerfettoSink
from repro.sim.executor import Executor, RunSpec
from repro.sim.trace import InstructionTrace


def profile(variant: str) -> None:
    spec = RunSpec("tms", "A", "4x4", 4, variant)

    bus = EventBus()
    trace = bus.attach(InstructionTrace(limit=50_000))
    metrics = bus.attach(MetricsSink())
    perfetto = bus.attach(PerfettoSink())
    executor = Executor()
    stats = executor.run(spec, obs=bus)
    bus.close()

    out = f"tms-{variant}.trace.json"
    perfetto.write(out)
    telemetry = executor.telemetry[-1]

    print(f"--- {variant.upper()} ---  ({spec.label()})")
    print(f"cycles: {stats.cycles}   "
          f"instructions: {stats.total_instructions}   "
          f"sync share of occupancy: {trace.sync_share():.1%}")
    print(trace.render(top=8))
    print(metrics.render())
    print(f"timeline: {len(perfetto)} trace events -> {out} "
          f"(open at https://ui.perfetto.dev)")
    print(f"[{telemetry.wall_time_s:.2f}s wall, "
          f"{telemetry.cycles_per_second:.0f} simulated cyc/s]")
    print()


def main() -> None:
    for variant in ("base", "glsc"):
        profile(variant)


if __name__ == "__main__":
    main()
