#!/usr/bin/env python
"""Quickstart: the paper's Figure 3(A) histogram, straight on the API.

Builds a 4-core x 4-thread machine with 4-wide SIMD, writes the
gather-linked / scatter-conditional reduction loop exactly as the
paper's pseudo-code does, runs it, and prints the result plus the
headline statistics.

Run:  python examples/quickstart.py
"""

from repro import Machine, MachineConfig

N_PIXELS = 1024
N_BINS = 512


def main() -> None:
    config = MachineConfig(n_cores=4, threads_per_core=4, simd_width=4)
    machine = Machine(config)

    # Simulated-memory data structures (Minput and Mbins in the paper).
    pixels = [(7 * i + i // 5) % 251 for i in range(N_PIXELS)]
    m_input = machine.image.alloc_array(pixels)
    m_bins = machine.image.alloc_zeros(N_BINS)

    def histogram(ctx):
        """One software thread of the Figure 3(A) loop."""
        per = N_PIXELS // ctx.n_threads
        lo = ctx.tid * per
        for i in range(lo, lo + per, ctx.w):
            vinput = yield ctx.vload(m_input.addr(i))                 # vload
            vbins = yield ctx.valu(                                   # vmod
                lambda v=vinput: tuple(int(x) % N_BINS for x in v)
            )
            bins = [int(b) for b in vbins]
            todo = ctx.all_ones()                                     # FtoDo
            while todo.any():
                vals, got = yield ctx.vgatherlink(m_bins.base, bins, todo)
                inc = yield ctx.valu(                                 # vinc
                    lambda v=vals, g=got: tuple(
                        x + 1 if g.lane(k) else x for k, x in enumerate(v)
                    )
                )
                ok = yield ctx.vscattercond(m_bins.base, bins, inc, got)
                todo = yield ctx.kalu(lambda t=todo, o=ok: t.andnot(o))

    for _ in range(config.n_threads):
        machine.add_program(histogram)
    stats = machine.run()

    expected = [0] * N_BINS
    for p in pixels:
        expected[p % N_BINS] += 1
    actual = [int(v) for v in m_bins.to_list()]
    assert actual == expected, "lost updates?!"

    print(f"histogram of {N_PIXELS} pixels into {N_BINS} bins: correct")
    print(f"cycles:                 {stats.cycles}")
    print(f"dynamic instructions:   {stats.total_instructions}")
    print(f"gather-linked issued:   {stats.gatherlink_count}")
    print(f"scatter-cond issued:    {stats.scattercond_count}")
    print(f"element failure rate:   {stats.glsc_failure_rate:.1%}")
    print(f"failures by cause:      {stats.glsc_element_failures}")


if __name__ == "__main__":
    main()
