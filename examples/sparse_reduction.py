#!/usr/bin/env python
"""Sparse atomic reductions: y = A^T x across machine topologies.

TMS is the cleanest showcase of GLSC's two big wins — fewer dynamic
instructions and overlapped misses on the scattered reduction targets.
This script sweeps the paper's four topologies at 4-wide SIMD and
prints speedups, stall reductions, and failure rates.

Run:  python examples/sparse_reduction.py
"""

from repro.sim.config import CONFIG_NAMES, named_config
from repro.sim.runner import run_kernel


def main() -> None:
    dataset = "A"
    print("TMS (transpose sparse matrix-vector multiply), dataset A, "
          "4-wide SIMD\n")
    print(f"{'topology':>8s} {'Base cyc':>10s} {'GLSC cyc':>10s} "
          f"{'speedup':>8s} {'stall red.':>11s} {'instr red.':>11s}")
    for topology in CONFIG_NAMES:
        config = named_config(topology, simd_width=4)
        base = run_kernel("tms", dataset, config, "base").stats
        glsc = run_kernel("tms", dataset, config, "glsc").stats
        stall_red = 1 - glsc.total_mem_stall_cycles / max(
            base.total_mem_stall_cycles, 1
        )
        instr_red = 1 - glsc.total_instructions / base.total_instructions
        print(
            f"{topology:>8s} {base.cycles:10d} {glsc.cycles:10d} "
            f"{base.cycles / glsc.cycles:8.2f} {stall_red:11.1%} "
            f"{instr_red:11.1%}"
        )
    print(
        "\nThe speedup holds across topologies because both GLSC benefit"
        "\nsources scale: the instruction saving is per-element, and the"
        "\nmiss overlap grows as y-vector lines bounce between cores."
    )


if __name__ == "__main__":
    main()
