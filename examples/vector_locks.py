#!/usr/bin/env python
"""Vector locks (Figure 3B): SIMD critical sections on the public API.

Implements a toy "bank transfer" workload directly against the
machine API: each transfer moves an amount between two accounts and
must hold both account locks.  The GLSC variant uses the paper's
VLOCK/VUNLOCK macros (best-effort, no hold-and-wait, so deadlock-free
by construction); the Base variant acquires the locks scalar-ly in
global order.

Run:  python examples/vector_locks.py
"""

from repro import Machine, MachineConfig
from repro.kernels.common import (
    glsc_paired_lock_apply,
    scalar_lock_acquire,
)

N_ACCOUNTS = 256
TRANSFERS_PER_THREAD = 32


def build_transfers(tid: int, w: int):
    """Per-thread transfer list: lane-disjoint (src, dst, amount)."""
    base = (tid * 31) % N_ACCOUNTS
    transfers = []
    for k in range(TRANSFERS_PER_THREAD):
        src = (base + 2 * k) % N_ACCOUNTS
        dst = (src + 1) % N_ACCOUNTS
        transfers.append((src, dst, 1 + k % 3))
    return transfers


def run(variant: str):
    config = MachineConfig(n_cores=4, threads_per_core=2, simd_width=4)
    machine = Machine(config)
    balances = machine.image.alloc_array([100] * N_ACCOUNTS)
    locks = machine.image.alloc_zeros(N_ACCOUNTS)

    def program(ctx):
        transfers = build_transfers(ctx.tid, ctx.w)
        for group_start in range(0, len(transfers), ctx.w):
            group = transfers[group_start : group_start + ctx.w]
            while len(group) < ctx.w:
                group = group + group[-1:]
            src = [t[0] for t in group]
            dst = [t[1] for t in group]
            amount = [t[2] for t in group]
            mask = ctx.prefix_mask(
                min(ctx.w, len(transfers) - group_start)
            )
            if variant == "glsc":

                def work(winners, src=src, dst=dst, amount=amount):
                    taken = yield ctx.vgather(balances.base, src, winners)
                    debited = yield ctx.valu(
                        lambda: tuple(
                            b - a for b, a in zip(taken, amount)
                        )
                    )
                    yield ctx.vscatter(balances.base, src, debited, winners)
                    held = yield ctx.vgather(balances.base, dst, winners)
                    credited = yield ctx.valu(
                        lambda: tuple(
                            b + a for b, a in zip(held, amount)
                        )
                    )
                    yield ctx.vscatter(balances.base, dst, credited, winners)

                yield from glsc_paired_lock_apply(
                    ctx, locks.base, src, dst, mask, work
                )
            else:
                for lane in mask.active_lanes():
                    s, d, a = src[lane], dst[lane], amount[lane]
                    for account in sorted((s, d)):
                        yield from scalar_lock_acquire(
                            ctx, locks.addr(account)
                        )
                    bs = yield ctx.load(balances.addr(s), sync=True)
                    yield ctx.store(balances.addr(s), bs - a, sync=True)
                    bd = yield ctx.load(balances.addr(d), sync=True)
                    yield ctx.store(balances.addr(d), bd + a, sync=True)
                    yield ctx.store(locks.addr(d), 0, sync=True)
                    yield ctx.store(locks.addr(s), 0, sync=True)

    for _ in range(config.n_threads):
        machine.add_program(program)
    stats = machine.run()
    total = sum(balances.to_list())
    assert total == 100 * N_ACCOUNTS, "money was created or destroyed!"
    assert all(v == 0 for v in locks.to_list()), "locks left held!"
    return stats


def main() -> None:
    base = run("base")
    glsc = run("glsc")
    print("bank transfers under two-account locks (money conserved ✓)")
    print(f"Base: {base.cycles} cycles, {base.total_instructions} instructions")
    print(f"GLSC: {glsc.cycles} cycles, {glsc.total_instructions} instructions")
    print(f"Base/GLSC time ratio: {base.cycles / glsc.cycles:.2f}")
    print(f"GLSC element failure rate: {glsc.glsc_failure_rate:.1%}")


if __name__ == "__main__":
    main()
