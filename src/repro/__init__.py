"""repro — Atomic Vector Operations on Chip Multiprocessors (ISCA 2008).

A from-scratch reproduction of the GLSC proposal (gather-linked /
scatter-conditional SIMD atomics): an execution-driven CMP timing
simulator, the paper's seven RMS benchmark kernels in Base (scalar
ll/sc) and GLSC variants, and a harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import Machine, MachineConfig

    cfg = MachineConfig(n_cores=4, threads_per_core=4, simd_width=4)
    machine = Machine(cfg)
    counters = machine.image.alloc_zeros(64)

    def program(ctx):
        indices = [(ctx.tid + lane) % 64 for lane in range(ctx.w)]
        todo = ctx.all_ones()
        while todo.any():
            vals, got = yield ctx.vgatherlink(counters.base, indices, todo)
            inc = yield ctx.valu(lambda: tuple(v + 1 for v in vals))
            ok = yield ctx.vscattercond(counters.base, indices, inc, got)
            todo = yield ctx.kalu(lambda: todo.andnot(ok))

    for _ in range(cfg.n_threads):
        machine.add_program(program)
    stats = machine.run()

The **stable public surface** for running experiments is re-exported
here: declare runs as :class:`RunSpec` values, collect them in a
:class:`Sweep`, execute locally with an :class:`Executor` (dedup,
process-pool parallelism, a persistent :class:`ResultStore`), or
against a remote sweep service with a :class:`SweepClient` — library
users and service clients share one API::

    from repro import Executor, ResultStore, RunSpec, Sweep

    sweep = Sweep.product(kernels=("tms", "gbc"), datasets=("A",))
    stats = Executor(jobs=4, store=ResultStore()).run_sweep(sweep)

Lower-level entry points remain importable from their homes:
:mod:`repro.sim.runner` (run a named kernel on a named dataset),
:mod:`repro.service` (work queue, worker loop, HTTP server), and
:mod:`repro.harness` (regenerate the paper's tables and figures).
"""

from repro.errors import (
    ConfigError,
    DeadlockError,
    IsaError,
    ProgramError,
    ReproError,
    SimulationError,
    VerificationError,
)
from repro.isa.instructions import Instr, Kind
from repro.isa.masks import Mask
from repro.isa.program import Program, ThreadCtx
from repro.mem.image import ArrayView, MemoryImage
from repro.sim.config import CONFIG_NAMES, MachineConfig, named_config
from repro.sim.executor import Executor, RunSpec, Sweep, execute_spec
from repro.sim.machine import Machine
from repro.sim.stats import MachineStats, ThreadStats
from repro.sim.store import ResultStore
from repro.service.client import SweepClient

__version__ = "1.1.0"

__all__ = [
    "ArrayView",
    "CONFIG_NAMES",
    "ConfigError",
    "DeadlockError",
    "Executor",
    "Instr",
    "IsaError",
    "Kind",
    "Machine",
    "MachineConfig",
    "MachineStats",
    "Mask",
    "MemoryImage",
    "Program",
    "ProgramError",
    "ReproError",
    "ResultStore",
    "RunSpec",
    "SimulationError",
    "Sweep",
    "SweepClient",
    "ThreadCtx",
    "ThreadStats",
    "VerificationError",
    "execute_spec",
    "named_config",
    "__version__",
]
