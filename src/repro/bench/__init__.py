"""Regression observatory: bench suites, baselines, and drift gates.

Per-run observability (:mod:`repro.obs`) watches one simulation;
this package watches the *repository* across commits.  A fixed grid
of bench points (:mod:`repro.bench.suite`) is executed fresh and
repeatedly (:mod:`repro.bench.runner`, median + MAD over N repeats, in
the repeat-and-aggregate spirit of Schweizer et al.'s atomic-cost
methodology), the resulting document is archived as a
schema-versioned ``BENCH_<git-sha>.json`` and appended to a trajectory
(:mod:`repro.bench.baseline`), and a :class:`~repro.bench.compare.
Comparator` diffs every metric against the previous baseline and the
committed fidelity-reference bands distilled from the paper's
Figure 6/8 and Table 4 (:mod:`repro.bench.fidelity`) — classifying
each as ok / improved / regressed so CI can fail on silent drift.

Quickstart::

    python -m repro.harness bench run --suite smoke --repeats 1
    python -m repro.harness bench compare        # exit 1 on regression
    python -m repro.harness bench report         # markdown + sparklines

Three kinds of drift are caught:

* **hot-path regressions** — wall time per point vs the previous
  baseline, judged against median ± MAD noise bounds;
* **model drift** — simulated cycle counts are deterministic, so any
  change against the baseline is flagged;
* **fidelity drift** — GLSC/Base speedup ratios and Table-4 failure-
  cause mixes leaving the committed reference bands (the paper-shape
  gate) fail the comparison outright.
"""

from repro.bench.baseline import (
    BENCH_SCHEMA_VERSION,
    append_trajectory,
    bench_filename,
    current_git_sha,
    latest_bench_file,
    load_bench,
    load_trajectory,
    trajectory_entry,
    write_bench,
)
from repro.bench.compare import Comparator, Comparison, Verdict
from repro.bench.fidelity import distill_reference, fidelity_metrics
from repro.bench.report import render_markdown, sparkline
from repro.bench.runner import BenchRunner
from repro.bench.suite import BenchPoint, BenchSuite, SUITE_NAMES, get_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchPoint",
    "BenchRunner",
    "BenchSuite",
    "Comparator",
    "Comparison",
    "SUITE_NAMES",
    "Verdict",
    "append_trajectory",
    "bench_filename",
    "current_git_sha",
    "distill_reference",
    "fidelity_metrics",
    "get_suite",
    "latest_bench_file",
    "load_bench",
    "load_trajectory",
    "render_markdown",
    "sparkline",
    "trajectory_entry",
    "write_bench",
]
