"""Bench archive IO: ``BENCH_<sha>.json`` files and the trajectory.

Two artifacts live at the repo root, both committed:

* ``BENCH_<git-sha>.json`` — the full document of one bench run
  (every point's wall-time distribution, cycles, stats summary, and
  the fidelity metrics).  One file per archived run; the comparator
  reads these directly.
* ``BENCH_TRAJECTORY.jsonl`` — one compact line per archived run
  (headline numbers plus per-point medians), append-only.  This is
  what sparklines and "previous baseline" lookups read, so the
  history stays greppable even when old ``BENCH_*.json`` files are
  pruned.

Everything is schema-versioned (``BENCH_SCHEMA_VERSION``); loaders
reject documents from a different schema rather than mis-reading
them.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ConfigError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "TRAJECTORY_NAME",
    "REFERENCE_NAME",
    "append_trajectory",
    "bench_filename",
    "current_git_sha",
    "latest_bench_file",
    "load_bench",
    "load_reference",
    "load_trajectory",
    "previous_entry",
    "trajectory_entry",
    "write_bench",
]

#: Schema of bench documents and trajectory lines; bump on layout change.
BENCH_SCHEMA_VERSION = 1

#: Default artifact names at the repository root.
TRAJECTORY_NAME = "BENCH_TRAJECTORY.jsonl"
REFERENCE_NAME = "BENCH_REFERENCE.json"


def current_git_sha(root: Optional[Path] = None) -> str:
    """The short git sha naming a bench run.

    ``REPRO_BENCH_SHA`` overrides (tests, tarball builds); outside a
    git checkout the sha is ``"nogit"`` rather than an error — bench
    runs must work anywhere the simulator does.
    """
    override = os.environ.get("REPRO_BENCH_SHA")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "nogit"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "nogit"


def bench_filename(sha: str) -> str:
    return f"BENCH_{sha}.json"


def write_bench(doc: Mapping[str, Any], out_dir: Path) -> Path:
    """Write one bench document to ``out_dir`` (named by its sha)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / bench_filename(doc["git_sha"])
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_bench(path: Path) -> Dict[str, Any]:
    """Load and schema-check one bench document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "points" not in doc:
        raise ConfigError(f"{path} is not a bench document")
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ConfigError(
            f"{path} has bench schema {doc.get('schema_version')!r}, "
            f"this build reads {BENCH_SCHEMA_VERSION}"
        )
    return doc


def latest_bench_file(root: Path) -> Optional[Path]:
    """The most recently modified ``BENCH_*.json`` under ``root``."""
    candidates = [
        p for p in Path(root).glob("BENCH_*.json")
        if p.name != REFERENCE_NAME
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


# -- trajectory -----------------------------------------------------------

def trajectory_entry(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Condense a bench document into one trajectory line.

    Keeps everything the comparator and the sparkline renderer need:
    per-point wall medians / MADs / cycles, the fidelity metrics, and
    headline aggregates.
    """
    points = doc["points"]
    wall: Dict[str, Dict[str, float]] = {}
    cycles: Dict[str, int] = {}
    for point in points:
        wall[point["id"]] = {
            "median": point["wall_s"]["median"],
            "mad": point["wall_s"]["mad"],
        }
        cycles[point["id"]] = point["cycles"]
    total_wall = sum(w["median"] for w in wall.values())
    total_cycles = sum(cycles.values())
    total_instructions = sum(p.get("instructions", 0) for p in points)
    speedups = list(doc.get("fidelity", {}).get("speedup", {}).values())
    contention: Dict[str, Dict[str, Any]] = {
        point["id"]: point["contention"]
        for point in points
        if isinstance(point.get("contention"), dict)
    }
    entry_contention: Dict[str, Any] = {}
    if contention:
        entry_contention = {
            "points": contention,
            "kills": sum(c.get("kills", 0) for c in contention.values()),
            "failed_lanes": sum(
                c.get("failed_lanes", 0) for c in contention.values()
            ),
            "storms": sum(c.get("storms", 0) for c in contention.values()),
            "max_retry_depth": max(
                c.get("max_retry_depth", 0) for c in contention.values()
            ),
        }
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": doc["git_sha"],
        "created": doc["created"],
        "suite": doc["suite"],
        "repeats": doc["repeats"],
        # Which execution backend produced the walls ("solo" unless
        # the doc says otherwise) — batch walls are cycle-shares of a
        # shared loop, so cross-backend wall diffs are expected.
        "backend": doc.get("backend", "solo"),
        "headline": {
            "points": len(points),
            "total_wall_s": total_wall,
            "total_cycles": total_cycles,
            "total_instructions": total_instructions,
            "cyc_per_s": total_cycles / total_wall if total_wall else 0.0,
            "sim_khz": (
                total_cycles / total_wall / 1e3 if total_wall else 0.0
            ),
            "instr_per_sec": (
                total_instructions / total_wall if total_wall else 0.0
            ),
            "mean_speedup": (
                sum(speedups) / len(speedups) if speedups else 0.0
            ),
        },
        "wall": wall,
        "cycles": cycles,
        "fidelity": doc.get("fidelity", {}),
        **({"contention": entry_contention} if entry_contention else {}),
    }


def append_trajectory(
    doc: Mapping[str, Any], path: Path
) -> Dict[str, Any]:
    """Append ``doc``'s condensed entry to the trajectory file."""
    entry = trajectory_entry(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return entry


def load_trajectory(path: Path) -> List[Dict[str, Any]]:
    """Every parseable trajectory entry, oldest first."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if (
                isinstance(entry, dict)
                and entry.get("schema_version") == BENCH_SCHEMA_VERSION
            ):
                entries.append(entry)
    return entries


def previous_entry(
    trajectory: List[Dict[str, Any]],
    suite: str,
    exclude_sha: Optional[str] = None,
) -> Optional[Dict[str, Any]]:
    """The newest trajectory entry of ``suite`` (skipping one sha).

    ``exclude_sha`` is the run being compared, so re-running at the
    same commit still compares against the *previous* commit's point.
    If every entry has that sha, the newest one is used after all —
    comparing against yourself beats comparing against nothing.
    """
    matching = [e for e in trajectory if e.get("suite") == suite]
    if not matching:
        return None
    older = [e for e in matching if e.get("git_sha") != exclude_sha]
    return (older or matching)[-1]


def load_reference(path: Path) -> Optional[Dict[str, Any]]:
    """The fidelity-reference bands, or None when absent/unreadable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            reference = json.load(fh)
    except (OSError, ValueError):
        return None
    return reference if isinstance(reference, dict) else None


def stamp(timestamp: Optional[float] = None) -> str:
    """ISO-ish UTC stamp used in report headers."""
    return time.strftime(
        "%Y-%m-%d %H:%M:%S UTC", time.gmtime(timestamp or time.time())
    )
