"""Comparator: classify every bench metric as ok / improved / regressed.

Three gates, in increasing order of severity:

* **wall time** (per point) — compared against the previous baseline
  entry with a noise bound built from both runs' MADs plus a relative
  tolerance; only exceeding the bound *upward* is a regression.
  Wall-time verdicts are machine-local: comparing a laptop run
  against a CI baseline is noise, so the CLI can disable this gate
  (``--skip-perf``) while keeping the machine-independent ones.
* **cycles** (per point) — the simulator is deterministic, so any
  cycle-count change against the baseline is *drift*: reported as
  ``changed`` (not failing by default — legitimate model work changes
  cycles, and the fidelity bands below are the semantic gate).
* **fidelity bands** (per ratio / per GLSC point) — GLSC/Base speedup
  outside the committed reference band, a failure rate outside its
  band, or a flipped dominant failure cause is a hard ``regressed``:
  the reproduction no longer shows the paper's shape.

A fourth check reports aggregate simulator throughput — the noisy
wall-clock ``sim_khz`` and the deterministic cycles-per-instruction
proxy — against the previous trajectory entry.  By default it is
purely informational (``changed``/``improved``, never failing); with
``gate_throughput=True`` (CLI ``--gate-throughput``) a drop beyond the
tolerance becomes a failing ``regressed`` verdict, which is how the
perf-sensitive CI leg pins the batched backend's speed.

The CLI exits non-zero iff :attr:`Comparison.failed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["Comparator", "Comparison", "Verdict"]

#: Verdict labels, in report order.
VERDICTS = ("regressed", "changed", "missing", "new", "improved", "ok", "skipped")


@dataclass
class Verdict:
    """One metric's classification."""

    metric: str           # e.g. "wall:tms/A:4x4:w4:glsc"
    kind: str             # "perf" | "cycles" | "fidelity"
    verdict: str          # one of VERDICTS
    old: Optional[float] = None
    new: Optional[float] = None
    note: str = ""

    @property
    def delta_pct(self) -> Optional[float]:
        if self.old in (None, 0) or self.new is None:
            return None
        return 100.0 * (self.new - self.old) / self.old


@dataclass
class Comparison:
    """Every verdict of one comparator pass, plus the overall gate."""

    sha: str = ""
    baseline_sha: str = ""
    suite: str = ""
    verdicts: List[Verdict] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {v: 0 for v in VERDICTS}
        for verdict in self.verdicts:
            out[verdict.verdict] += 1
        return out

    @property
    def failed(self) -> bool:
        """Whether the gate fails (any ``regressed`` verdict)."""
        return any(v.verdict == "regressed" for v in self.verdicts)

    def by_verdict(self, name: str) -> List[Verdict]:
        return [v for v in self.verdicts if v.verdict == name]

    def render(self) -> str:
        """Plain-text verdict table (the CLI's compare output)."""
        lines = [
            f"bench compare: {self.sha} vs baseline "
            f"{self.baseline_sha or '(none)'} [suite {self.suite}]",
            f"{'metric':46s} {'old':>12s} {'new':>12s} "
            f"{'delta':>8s}  verdict",
        ]
        order = {name: i for i, name in enumerate(VERDICTS)}
        for v in sorted(
            self.verdicts, key=lambda v: (order[v.verdict], v.metric)
        ):
            if v.verdict == "ok":
                continue  # only exceptions make the table; counts below
            old = f"{v.old:.6g}" if v.old is not None else "-"
            new = f"{v.new:.6g}" if v.new is not None else "-"
            delta = (
                f"{v.delta_pct:+.1f}%" if v.delta_pct is not None else "-"
            )
            note = f"  ({v.note})" if v.note else ""
            lines.append(
                f"{v.metric[:46]:46s} {old:>12s} {new:>12s} "
                f"{delta:>8s}  {v.verdict}{note}"
            )
        counts = self.counts()
        summary = ", ".join(
            f"{counts[name]} {name}" for name in VERDICTS if counts[name]
        )
        lines.append(f"verdicts: {summary or 'none'}")
        lines.append(
            "GATE: " + ("REGRESSED" if self.failed else "ok")
        )
        return "\n".join(lines)


class Comparator:
    """Diffs a bench document against a baseline and reference bands.

    ``rel_tol`` is the minimum relative wall-time change considered
    meaningful; ``mad_mult`` scales the combined MAD noise estimate;
    ``abs_floor_s`` ignores absolute changes smaller than scheduling
    jitter.  A point regresses only when it exceeds *all three*.
    """

    def __init__(
        self,
        rel_tol: float = 0.15,
        mad_mult: float = 5.0,
        abs_floor_s: float = 0.02,
        check_perf: bool = True,
        check_cycles: bool = True,
        gate_throughput: bool = False,
    ) -> None:
        self.rel_tol = rel_tol
        self.mad_mult = mad_mult
        self.abs_floor_s = abs_floor_s
        self.check_perf = check_perf
        self.check_cycles = check_cycles
        #: When set, a throughput drop beyond the noise bound (aggregate
        #: sim_khz) or beyond ``rel_tol`` (the deterministic
        #: cycles-per-instruction proxy) becomes a failing ``regressed``
        #: verdict instead of an informational ``changed``.
        self.gate_throughput = gate_throughput

    # -- gates ------------------------------------------------------------

    def _perf_verdicts(
        self,
        current: Mapping[str, Any],
        baseline: Mapping[str, Any],
    ) -> List[Verdict]:
        out: List[Verdict] = []
        new_wall = {
            p["id"]: p["wall_s"] for p in current["points"]
        }
        old_wall: Dict[str, Dict[str, float]] = baseline.get("wall", {})
        for pid, new in new_wall.items():
            metric = f"wall:{pid}"
            old = old_wall.get(pid)
            if old is None:
                out.append(
                    Verdict(metric, "perf", "new", None, new["median"])
                )
                continue
            bound = max(
                self.rel_tol * old["median"],
                self.mad_mult * max(old.get("mad", 0.0), new.get("mad", 0.0)),
                self.abs_floor_s,
            )
            delta = new["median"] - old["median"]
            if delta > bound:
                verdict = "regressed"
            elif delta < -bound:
                verdict = "improved"
            else:
                verdict = "ok"
            out.append(
                Verdict(
                    metric, "perf", verdict, old["median"], new["median"],
                    note=f"bound ±{bound:.3f}s" if verdict != "ok" else "",
                )
            )
        for pid in old_wall:
            if pid not in new_wall:
                out.append(
                    Verdict(
                        f"wall:{pid}", "perf", "missing",
                        old_wall[pid]["median"], None,
                        note="point present in baseline, absent now",
                    )
                )
        return out

    def _throughput_verdicts(
        self,
        current: Mapping[str, Any],
        baseline: Mapping[str, Any],
    ) -> List[Verdict]:
        """Aggregate simulator throughput (sim_khz), informational only.

        Throughput is the *simulator's* speed, not the model's output:
        it moves with host load, interpreter version, and hot-path
        work, so it never gates.  A drop beyond the noise bound is
        reported as ``changed`` (visible in the table and the CI step
        summary), an equally large rise as ``improved``.
        """
        points = current.get("points", [])
        total_wall = sum(p["wall_s"]["median"] for p in points)
        total_cycles = sum(p["cycles"] for p in points)
        total_instr = sum(p.get("instructions", 0) for p in points)
        if total_wall <= 0.0:
            return []
        new_khz = total_cycles / total_wall / 1e3
        headline = baseline.get("headline", {})
        old_khz = headline.get("sim_khz")
        if old_khz is None:
            # Pre-sim_khz trajectory entries still carry cyc_per_s.
            old_cps = headline.get("cyc_per_s")
            old_khz = old_cps / 1e3 if old_cps else None
        if not old_khz:
            return [
                Verdict(
                    f"sim_khz:{current.get('suite', '?')}",
                    "throughput", "new", None, new_khz,
                    note="no throughput baseline",
                )
            ]
        # Noise bound: the wall-time MADs of the current run, scaled
        # the same way the per-point perf gate scales them, expressed
        # as a fraction of the total wall.
        total_mad = sum(p["wall_s"].get("mad", 0.0) for p in points)
        noise_frac = max(
            self.rel_tol, self.mad_mult * total_mad / total_wall
        )
        out: List[Verdict] = []
        if new_khz < old_khz * (1.0 - noise_frac):
            if self.gate_throughput:
                verdict, note = "regressed", (
                    f"simulator throughput down beyond noise "
                    f"(±{100 * noise_frac:.0f}%); --gate-throughput"
                )
            else:
                verdict, note = "changed", (
                    f"simulator throughput down beyond noise "
                    f"(±{100 * noise_frac:.0f}%); informational, not gating"
                )
        elif new_khz > old_khz * (1.0 + noise_frac):
            verdict, note = "improved", (
                f"simulator throughput up beyond noise "
                f"(±{100 * noise_frac:.0f}%)"
            )
        else:
            verdict, note = "ok", ""
        out.append(
            Verdict(
                f"sim_khz:{current.get('suite', '?')}",
                "throughput", verdict, old_khz, new_khz, note=note,
            )
        )
        old_ips = headline.get("instr_per_sec")
        if old_ips and total_instr:
            out.append(
                Verdict(
                    f"instr_per_sec:{current.get('suite', '?')}",
                    "throughput", "ok", old_ips,
                    total_instr / total_wall,
                )
            )
        return out

    def _proxy_verdicts(
        self,
        current: Mapping[str, Any],
        baseline: Mapping[str, Any],
    ) -> List[Verdict]:
        """The cycles-per-instruction throughput proxy.

        Unlike wall time, the proxy is deterministic (both numerator
        and denominator come out of the simulation), so it carries no
        noise bound — a drift beyond ``rel_tol`` means the *model*
        retires more cycles per instruction than the baseline did.
        It gates only under ``gate_throughput``; model work that
        legitimately shifts the ratio should refresh the baseline.
        """
        points = current.get("points", [])
        total_cycles = sum(p["cycles"] for p in points)
        total_instr = sum(p.get("instructions", 0) for p in points)
        if not total_instr:
            return []
        new_cpi = total_cycles / total_instr
        headline = baseline.get("headline", {})
        old_instr = headline.get("total_instructions")
        if not old_instr:
            # Older trajectory entries: derive instruction totals from
            # the archived rate and wall.
            ips = headline.get("instr_per_sec")
            wall = headline.get("total_wall_s")
            old_instr = ips * wall if ips and wall else None
        old_cycles = headline.get("total_cycles")
        if not old_instr or not old_cycles:
            return []
        old_cpi = old_cycles / old_instr
        metric = f"cyc_per_instr:{current.get('suite', '?')}"
        if new_cpi > old_cpi * (1.0 + self.rel_tol):
            if self.gate_throughput:
                verdict = "regressed"
                note = (
                    f"cycles/instruction up >{100 * self.rel_tol:.0f}% "
                    "(deterministic proxy); --gate-throughput"
                )
            else:
                verdict = "changed"
                note = (
                    f"cycles/instruction up >{100 * self.rel_tol:.0f}% "
                    "(deterministic proxy); informational, not gating"
                )
        elif new_cpi < old_cpi * (1.0 - self.rel_tol):
            verdict, note = "improved", "cycles/instruction down"
        else:
            verdict, note = "ok", ""
        return [
            Verdict(metric, "throughput", verdict, old_cpi, new_cpi,
                    note=note)
        ]

    def _cycle_verdicts(
        self,
        current: Mapping[str, Any],
        baseline: Mapping[str, Any],
    ) -> List[Verdict]:
        out: List[Verdict] = []
        old_cycles: Dict[str, int] = baseline.get("cycles", {})
        for point in current["points"]:
            pid = point["id"]
            if pid not in old_cycles:
                continue
            old, new = old_cycles[pid], point["cycles"]
            out.append(
                Verdict(
                    f"cycles:{pid}",
                    "cycles",
                    "ok" if new == old else "changed",
                    float(old),
                    float(new),
                    note="" if new == old else
                    "deterministic model output drifted; refresh the "
                    "baseline if intentional",
                )
            )
        return out

    def _fidelity_verdicts(
        self,
        current: Mapping[str, Any],
        reference: Mapping[str, Any],
    ) -> List[Verdict]:
        out: List[Verdict] = []
        fidelity = current.get("fidelity", {})
        bands: Mapping[str, Any] = reference.get("speedup_bands", {})
        for key, value in fidelity.get("speedup", {}).items():
            metric = f"speedup:{key}"
            band = bands.get(key)
            if band is None:
                out.append(
                    Verdict(metric, "fidelity", "skipped", None, value,
                            note="no reference band")
                )
                continue
            lo, hi = band
            if lo <= value <= hi:
                out.append(Verdict(metric, "fidelity", "ok", None, value))
            else:
                out.append(
                    Verdict(
                        metric, "fidelity", "regressed", None, value,
                        note=f"outside reference band [{lo}, {hi}]",
                    )
                )
        mix_bands: Mapping[str, Any] = reference.get("failure_mix", {})
        for pid, entry in fidelity.get("failure_mix", {}).items():
            band = mix_bands.get(pid)
            metric = f"failure_rate:{pid}"
            if band is None:
                out.append(
                    Verdict(metric, "fidelity", "skipped", None,
                            entry["rate"], note="no reference band")
                )
                continue
            lo, hi = band.get("rate_band", (0.0, 1.0))
            rate = entry["rate"]
            if not (lo <= rate <= hi):
                out.append(
                    Verdict(
                        metric, "fidelity", "regressed", None, rate,
                        note=f"failure rate outside band [{lo}, {hi}]",
                    )
                )
            else:
                out.append(Verdict(metric, "fidelity", "ok", None, rate))
            want = band.get("dominant")
            got = entry.get("dominant")
            if want is not None and got is not None and want != got:
                out.append(
                    Verdict(
                        f"failure_dominant:{pid}", "fidelity", "regressed",
                        note=(
                            f"dominant failure cause flipped: reference "
                            f"{want!r}, observed {got!r}"
                        ),
                    )
                )
        return out

    # -- entry point ------------------------------------------------------

    def compare(
        self,
        current: Mapping[str, Any],
        baseline: Optional[Mapping[str, Any]] = None,
        reference: Optional[Mapping[str, Any]] = None,
    ) -> Comparison:
        """Run every enabled gate; missing inputs skip their gate."""
        comparison = Comparison(
            sha=current.get("git_sha", "?"),
            baseline_sha=(baseline or {}).get("git_sha", ""),
            suite=current.get("suite", "?"),
        )
        if baseline is not None:
            if self.check_perf:
                comparison.verdicts.extend(
                    self._perf_verdicts(current, baseline)
                )
                comparison.verdicts.extend(
                    self._throughput_verdicts(current, baseline)
                )
            if self.check_cycles:
                comparison.verdicts.extend(
                    self._cycle_verdicts(current, baseline)
                )
                # The cycles-per-instruction proxy is deterministic
                # (machine-independent), so it rides with the cycle
                # gate, not the wall-time one: --skip-perf on a
                # foreign-baseline machine keeps it.
                comparison.verdicts.extend(
                    self._proxy_verdicts(current, baseline)
                )
        if reference is not None:
            comparison.verdicts.extend(
                self._fidelity_verdicts(current, reference)
            )
        return comparison
