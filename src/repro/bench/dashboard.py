"""Static HTML dashboard over the bench trajectory.

``repro bench report --html`` renders ``BENCH_TRAJECTORY.jsonl`` (see
:mod:`repro.bench.baseline`) into one self-contained HTML file:
headline series (total wall, simulated throughput, total cycles, mean
Base/GLSC ratio) and per-point cycles/wall charts across archived
commits.  Everything is inline SVG generated here — no JavaScript, no
external assets, no dependencies — so the file can be committed,
attached to CI artifacts, or opened from a tarball years later.
"""

from __future__ import annotations

import html
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["render_dashboard"]

_WIDTH = 640
_HEIGHT = 160
_PAD = 8

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.chart { margin: 0.8rem 0 1.6rem; }
.chart svg { background: #f7f7fb; border: 1px solid #ddd;
             border-radius: 4px; }
.meta { color: #666; font-size: 0.85rem; }
.range { color: #666; font-size: 0.8rem; margin-left: 0.6rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
td, th { border: 1px solid #ddd; padding: 0.25rem 0.6rem; }
"""


def _polyline(values: Sequence[float]) -> Tuple[str, float, float]:
    """SVG points string for ``values``, plus the (lo, hi) range."""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    points = []
    for i, value in enumerate(values):
        x = _PAD + (
            (_WIDTH - 2 * _PAD) * (i / (n - 1) if n > 1 else 0.5)
        )
        y = _HEIGHT - _PAD - (
            (_HEIGHT - 2 * _PAD) * ((value - lo) / span)
        )
        points.append(f"{x:.1f},{y:.1f}")
    return " ".join(points), lo, hi


def _chart(
    title: str,
    values: Sequence[float],
    labels: Sequence[str],
    fmt: str = "{:.3g}",
) -> str:
    """One titled SVG line chart (circles carry per-run tooltips)."""
    if not values:
        return ""
    points, lo, hi = _polyline(values)
    circles = []
    for pair, value, label in zip(points.split(" "), values, labels):
        x, y = pair.split(",")
        tip = html.escape(f"{label}: {fmt.format(value)}")
        circles.append(
            f'<circle cx="{x}" cy="{y}" r="3" fill="#4c6ef5">'
            f"<title>{tip}</title></circle>"
        )
    return (
        f'<div class="chart"><strong>{html.escape(title)}</strong>'
        f'<span class="range">min {fmt.format(lo)} · '
        f"max {fmt.format(hi)} · latest {fmt.format(values[-1])}"
        f"</span><br>"
        f'<svg width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}">'
        f'<polyline fill="none" stroke="#4c6ef5" stroke-width="1.5" '
        f'points="{points}"/>' + "".join(circles) + "</svg></div>"
    )


def _series(
    entries: List[Dict[str, Any]], *path: str
) -> List[float]:
    out = []
    for entry in entries:
        node: Any = entry
        for key in path:
            node = node.get(key, {}) if isinstance(node, dict) else {}
        out.append(float(node) if isinstance(node, (int, float)) else 0.0)
    return out


def _heat_cell(value: float, peak: float) -> str:
    """One table cell whose background encodes ``value / peak``."""
    intensity = value / peak if peak > 0 else 0.0
    # White -> warm red ramp; text stays readable at every level.
    alpha = min(max(intensity, 0.0), 1.0) * 0.8
    return (
        f'<td style="background: rgba(224, 49, 49, {alpha:.2f})">'
        f"{value:g}</td>"
    )


def _contention_panel(
    entries: List[Dict[str, Any]], shas: Sequence[str]
) -> str:
    """Trend charts + per-point heatmap from ``contention`` blocks.

    Older trajectory entries (written before the contention
    observatory existed) simply lack the block and are skipped — the
    panel renders from whatever subset carries it, or not at all.
    """
    with_block = [
        e for e in entries if isinstance(e.get("contention"), dict)
    ]
    if not with_block:
        return ""
    parts = ["<h2>Contention</h2>"]
    for key, title in (
        ("kills", "Reservation kills (suite total)"),
        ("failed_lanes", "Failed GLSC element lanes (suite total)"),
        ("storms", "Retry-storm windows (suite total)"),
    ):
        series = []
        labels = []
        for entry, sha in zip(entries, shas):
            block = entry.get("contention")
            if isinstance(block, dict):
                series.append(float(block.get(key, 0)))
                labels.append(sha)
        if any(series):
            parts.append(_chart(title, series, labels, "{:.0f}"))

    latest = with_block[-1]
    points = latest.get("contention", {}).get("points") or {}
    if points:
        peak_kills = max(
            (p.get("kills", 0) for p in points.values()), default=0
        )
        peak_lanes = max(
            (p.get("failed_lanes", 0) for p in points.values()), default=0
        )
        parts.append(
            f'<p class="meta">Per-point heatmap, latest run '
            f"(<code>{html.escape(str(latest.get('git_sha', '?')))}"
            f"</code>): cell shade scales with the column peak.</p>"
        )
        parts.append(
            "<table><tr><th>point</th><th>kills</th>"
            "<th>failed lanes</th><th>storms</th>"
            "<th>hottest line</th></tr>"
        )
        for pid in sorted(points):
            block = points[pid]
            hot = block.get("hot_line") or "—"
            parts.append(
                f"<tr><td><code>{html.escape(pid)}</code></td>"
                + _heat_cell(block.get("kills", 0), peak_kills)
                + _heat_cell(block.get("failed_lanes", 0), peak_lanes)
                + f"<td>{block.get('storms', 0)}</td>"
                + f"<td><code>{html.escape(str(hot))}</code> "
                  f"({block.get('hot_line_total', 0)})</td></tr>"
            )
        parts.append("</table>")
    return "".join(parts)


def render_dashboard(
    trajectory: List[Dict[str, Any]],
    suite: Optional[str] = None,
    history: int = 64,
) -> str:
    """The trajectory as one self-contained HTML document."""
    entries = [
        e for e in trajectory
        if suite is None or e.get("suite") == suite
    ][-history:]
    suites = sorted({e.get("suite", "?") for e in entries})
    shas = [str(e.get("git_sha", "?"))[:12] for e in entries]

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>Bench trajectory</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>Bench trajectory</h1>",
        f'<p class="meta">{len(entries)} archived runs'
        + (f" (suite <code>{html.escape(suite)}</code>)" if suite
           else f" across suites {', '.join(map(html.escape, suites))}")
        + f" · rendered {time.strftime('%Y-%m-%d %H:%M:%S')}</p>",
    ]
    if not entries:
        parts.append("<p>No trajectory entries yet — run "
                     "<code>repro bench run</code> first.</p>")
        parts.append("</body></html>")
        return "".join(parts)

    parts.append("<h2>Headline</h2>")
    for key, title, fmt in (
        ("total_wall_s", "Total wall time (s)", "{:.2f}"),
        ("sim_khz", "Simulated kHz", "{:.1f}"),
        ("total_cycles", "Total simulated cycles", "{:.0f}"),
        ("mean_speedup", "Mean Base/GLSC ratio", "{:.3f}"),
        ("instr_per_sec", "Instructions / second", "{:.0f}"),
    ):
        values = _series(entries, "headline", key)
        if any(values):
            parts.append(_chart(title, values, shas, fmt))

    parts.append(_contention_panel(entries, shas))

    point_ids = sorted({
        pid for e in entries for pid in (e.get("cycles") or {})
    })
    if point_ids:
        parts.append("<h2>Per-point simulated cycles</h2>")
        for pid in point_ids:
            values = _series(entries, "cycles", pid)
            if any(values):
                parts.append(_chart(pid, values, shas, "{:.0f}"))
        parts.append("<h2>Per-point wall time (median s)</h2>")
        for pid in point_ids:
            values = _series(entries, "wall", pid, "median")
            if any(values):
                parts.append(_chart(pid, values, shas, "{:.3f}"))

    parts.append("<h2>Runs</h2><table><tr><th>#</th><th>sha</th>"
                 "<th>suite</th><th>points</th><th>wall (s)</th></tr>")
    for i, entry in enumerate(entries):
        headline = entry.get("headline", {})
        parts.append(
            f"<tr><td>{i + 1}</td>"
            f"<td><code>{html.escape(str(entry.get('git_sha', '?')))}"
            f"</code></td>"
            f"<td>{html.escape(str(entry.get('suite', '?')))}</td>"
            f"<td>{headline.get('points', '?')}</td>"
            f"<td>{headline.get('total_wall_s', 0.0):.2f}</td></tr>"
        )
    parts.append("</table></body></html>")
    return "".join(parts)
