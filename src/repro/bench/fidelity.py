"""Fidelity metrics: the paper-shape numbers a bench run distills.

Computed from the :class:`~repro.sim.stats.MachineStats` the bench
runner already collected — never re-simulated ad hoc — so the
fidelity gate and the perf gate always describe the same runs.

Two metric families, mirroring what the paper's evaluation claims:

* **speedup** — Base/GLSC execution-time ratio per (kernel, dataset,
  topology, width) pair present in the suite.  Figure 6 (topology
  axis) and Figure 8 (width axis) are slices of this one mapping;
  the reference bands encode their trends (GLSC wins everywhere
  except alias-heavy HIP-A, TMS wins biggest, ratio grows with
  width).
* **failure_mix** — per GLSC point: the element failure *rate*
  (Table 4's headline column) and the normalized cause mix
  (alias / thread_conflict / link_stolen / eviction / miss_policy,
  Section 5.1's attribution), plus the dominant cause.

:func:`distill_reference` turns an observed bench document into a
fresh fidelity-reference file — the *intentional* refresh path when
the model legitimately changes (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.sim.stats import MachineStats

__all__ = ["fidelity_metrics", "distill_reference", "REFERENCE_SCHEMA_VERSION"]

#: Schema version of the fidelity-reference file.
REFERENCE_SCHEMA_VERSION = 1


def _ratio_key(pid: str) -> Optional[str]:
    """Collapse a point id to its variant-free ratio key, or None.

    ``tms/A:4x4:w4:glsc`` -> ``tms/A:4x4:w4``.
    """
    head, _, variant = pid.rpartition(":")
    if variant not in ("base", "glsc"):
        return None
    return head


def fidelity_metrics(
    stats_by_id: Mapping[str, MachineStats],
) -> Dict[str, Any]:
    """The fidelity section of a bench document.

    ``stats_by_id`` maps bench point ids to their verified stats; the
    result is plain JSON-able data::

        {"speedup": {"tms/A:4x4:w4": 1.91, ...},
         "failure_mix": {"tms/A:4x4:w4:glsc": {
             "rate": 0.083, "dominant": "alias",
             "mix": {"alias": 0.71, "thread_conflict": 0.22, ...}}}}
    """
    cycles: Dict[str, Dict[str, int]] = {}
    failure_mix: Dict[str, Dict[str, Any]] = {}
    for pid, stats in stats_by_id.items():
        key = _ratio_key(pid)
        if key is None:
            continue
        variant = pid.rpartition(":")[2]
        cycles.setdefault(key, {})[variant] = stats.cycles
        if variant != "glsc":
            continue
        total = stats.glsc_failures_total
        mix = {
            cause: (count / total if total else 0.0)
            for cause, count in sorted(stats.glsc_element_failures.items())
        }
        dominant = (
            max(stats.glsc_element_failures.items(), key=lambda kv: kv[1])[0]
            if total
            else None
        )
        failure_mix[pid] = {
            "rate": stats.glsc_failure_rate,
            "attempts": stats.glsc_element_attempts,
            "dominant": dominant,
            "mix": mix,
        }

    speedup = {
        key: pair["base"] / pair["glsc"]
        for key, pair in sorted(cycles.items())
        if "base" in pair and "glsc" in pair and pair["glsc"] > 0
    }
    return {"speedup": speedup, "failure_mix": failure_mix}


def distill_reference(
    doc: Mapping[str, Any],
    rel_band: float = 0.25,
    rate_band: float = 0.05,
    source: str = "",
) -> Dict[str, Any]:
    """Fidelity-reference bands distilled from an observed bench doc.

    Speedup bands are ``value * (1 -/+ rel_band)`` (floored at a width
    of ±0.02 so near-1.0 ratios keep headroom); failure-rate bands are
    ``rate ± max(rel_band * rate, rate_band)`` clamped to [0, 1]; the
    dominant cause is pinned whenever the point saw any failures.
    Hand-tighten the emitted bands where the paper makes a sharper
    claim (e.g. HIP-A's band should straddle 1.0 — Base wins there).
    """
    fidelity = doc.get("fidelity", {})
    speedup_bands = {}
    for key, value in fidelity.get("speedup", {}).items():
        half = max(rel_band * value, 0.02)
        speedup_bands[key] = [round(value - half, 4), round(value + half, 4)]
    failure_bands = {}
    for pid, entry in fidelity.get("failure_mix", {}).items():
        rate = entry["rate"]
        half = max(rel_band * rate, rate_band)
        failure_bands[pid] = {
            "rate_band": [
                round(max(rate - half, 0.0), 4),
                round(min(rate + half, 1.0), 4),
            ],
            "dominant": entry["dominant"],
        }
    return {
        "schema_version": REFERENCE_SCHEMA_VERSION,
        "source": source
        or (
            "distilled from bench run "
            f"{doc.get('git_sha', 'unknown')} (suite "
            f"{doc.get('suite', '?')}); trends per ISCA'08 Fig 6/8 + "
            "Table 4 — see EXPERIMENTS.md"
        ),
        "speedup_bands": speedup_bands,
        "failure_mix": failure_bands,
    }
