"""Per-phase cycle attribution for bench points.

A bench point's headline is one number (cycles), but the paper's
performance story is about *where* those cycles go: vector memory
operations issuing (gather/scatter occupancy), scalar compute between
them, retries after lost GLSC reservations (Section 4's contention
pathology), and stalls where a thread had nothing in flight.  This
module splits a point's thread-cycle capacity into those four phases
from event-bus data, with no new simulator instrumentation:

* ``gather``  — occupancy of sync (vector-atomic) instructions issued
  while the core was *not* recovering from a failed element — the
  first-attempt cost of gather-link/scatter-cond work;
* ``retry``   — sync-instruction occupancy while the core *was*
  recovering: some element of a previous attempt failed
  (:class:`~repro.obs.events.ElementOutcome` with ``ok=False``) and
  the GLSC loop is re-issuing.  A completed scatter-cond clears the
  flag — the paper's retry loop ends in a successful commit;
* ``compute`` — everything the non-sync instructions occupied;
* ``stall``   — the rest of the capacity: ``cycles x threads`` minus
  all recorded occupancy (threads blocked with nothing retired).

The attribution is a heuristic (the simulator does not tag each
instruction with "this is attempt N"), but it is deterministic, sums
exactly to capacity, and moves the right way under contention — the
property the bench report needs.  ``repro bench run`` collects it via
one extra *untimed* observed pass per point (so the timed samples
stay sinkless and unperturbed), asserting the observed pass retires
identical cycles.
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.obs.bus import Sink

__all__ = ["PhaseSink", "PHASE_NAMES"]

#: Attribution buckets, in render order.
PHASE_NAMES = ("gather", "compute", "retry", "stall")


class PhaseSink(Sink):
    """Accumulates per-phase thread-cycle occupancy from one run."""

    categories = ("instr", "glsc")

    def __init__(self) -> None:
        self.gather = 0
        self.compute = 0
        self.retry = 0
        self._threads: Set[int] = set()
        self._retrying: Dict[int, bool] = {}  # core -> in retry loop

    def on_event(self, event: Any) -> None:
        if event.category == "glsc":
            ok = getattr(event, "ok", None)
            if ok is None:
                return  # LineCombine: no success/failure signal
            if not ok:
                self._retrying[event.core] = True
            elif event.op == "scattercond":
                # The retry loop ends when the scatter-cond commits.
                self._retrying[event.core] = False
            return
        # instr: one retired instruction's occupancy
        self._threads.add(event.thread)
        latency = event.latency
        if event.sync:
            if self._retrying.get(event.core, False):
                self.retry += latency
            else:
                self.gather += latency
        else:
            self.compute += latency

    @property
    def threads(self) -> int:
        """Distinct threads that retired at least one instruction."""
        return len(self._threads)

    def breakdown(self, cycles: int) -> Dict[str, Any]:
        """Split ``cycles`` of machine time into the four phases.

        Capacity is ``cycles x threads`` thread-cycles; the phases sum
        to it exactly (``stall`` absorbs the unrecorded remainder, and
        is clamped at zero if rounding in the latency model ever
        over-attributes).
        """
        threads = max(self.threads, 1)
        capacity = cycles * threads
        busy = self.gather + self.compute + self.retry
        stall = max(capacity - busy, 0)
        out: Dict[str, Any] = {
            "threads": threads,
            "capacity": capacity,
            "gather": self.gather,
            "compute": self.compute,
            "retry": self.retry,
            "stall": stall,
        }
        total = max(busy + stall, 1)
        out["fractions"] = {
            name: out[name] / total for name in PHASE_NAMES
        }
        return out
