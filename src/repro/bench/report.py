"""Markdown rendering of a comparison plus the trajectory history.

The report is what a human reads after CI flags a bench run: the
verdict table (exceptions first), headline aggregates, and
sparkline-style deltas over the archived trajectory so a slow leak —
each commit 2% slower, never tripping the per-commit bound — is
visible at a glance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.bench.baseline import stamp
from repro.bench.compare import VERDICTS, Comparison

__all__ = ["render_markdown", "sparkline"]

#: Eight-level block ramp for sparklines.
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of ``values`` (empty string for no data)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _BLOCKS[0] * len(values)
    span = hi - lo
    return "".join(
        _BLOCKS[min(int((v - lo) / span * len(_BLOCKS)), len(_BLOCKS) - 1)]
        for v in values
    )


def _headline_series(
    trajectory: List[Dict[str, Any]], suite: str, key: str, limit: int
) -> List[float]:
    series = [
        e["headline"].get(key, 0.0)
        for e in trajectory
        if e.get("suite") == suite and "headline" in e
    ]
    return series[-limit:]


def render_markdown(
    comparison: Comparison,
    trajectory: Optional[List[Dict[str, Any]]] = None,
    doc: Optional[Mapping[str, Any]] = None,
    history: int = 16,
) -> str:
    """The full markdown report for one comparison."""
    lines = [
        f"# Bench report — `{comparison.sha}` "
        f"(suite `{comparison.suite}`)",
        "",
        f"Generated {stamp()}; baseline "
        f"`{comparison.baseline_sha or 'none'}`.",
        "",
        "**Gate: " + ("REGRESSED ❌" if comparison.failed else "ok ✅")
        + "**",
        "",
    ]

    counts = comparison.counts()
    lines.append(
        "| verdict | count |\n|---|---|\n"
        + "\n".join(
            f"| {name} | {counts[name]} |"
            for name in VERDICTS
            if counts[name]
        )
    )
    lines.append("")

    exceptions = [v for v in comparison.verdicts if v.verdict != "ok"]
    if exceptions:
        lines.append("## Exceptions")
        lines.append("")
        lines.append("| metric | old | new | delta | verdict | note |")
        lines.append("|---|---|---|---|---|---|")
        order = {name: i for i, name in enumerate(VERDICTS)}
        for v in sorted(
            exceptions, key=lambda v: (order[v.verdict], v.metric)
        ):
            old = f"{v.old:.6g}" if v.old is not None else "—"
            new = f"{v.new:.6g}" if v.new is not None else "—"
            delta = (
                f"{v.delta_pct:+.1f}%" if v.delta_pct is not None else "—"
            )
            lines.append(
                f"| `{v.metric}` | {old} | {new} | {delta} "
                f"| **{v.verdict}** | {v.note or ''} |"
            )
        lines.append("")
    else:
        lines.append("Every metric within bounds.")
        lines.append("")

    if doc is not None:
        fidelity = doc.get("fidelity", {})
        speedups = fidelity.get("speedup", {})
        if speedups:
            lines.append("## Fidelity snapshot (GLSC speedups)")
            lines.append("")
            lines.append("| point | Base/GLSC ratio |")
            lines.append("|---|---|")
            for key in sorted(speedups):
                lines.append(f"| `{key}` | {speedups[key]:.3f} |")
            lines.append("")

        phased = [
            p for p in doc.get("points", ())
            if isinstance(p, dict) and p.get("phases")
        ]
        if phased:
            lines.append("## Phase attribution")
            lines.append("")
            lines.append(
                "Thread-cycle capacity split per point "
                "(gather = first-attempt vector-atomic occupancy, "
                "retry = re-issue after a failed element)."
            )
            lines.append("")
            lines.append(
                "| point | gather | compute | retry | stall |"
            )
            lines.append("|---|---|---|---|---|")
            for point in phased:
                fractions = point["phases"].get("fractions", {})
                cells = " | ".join(
                    f"{fractions.get(name, 0.0) * 100:.1f}%"
                    for name in ("gather", "compute", "retry", "stall")
                )
                lines.append(f"| `{point.get('id', '?')}` | {cells} |")
            lines.append("")

        contended = [
            p for p in doc.get("points", ())
            if isinstance(p, dict) and isinstance(p.get("contention"), dict)
        ]
        if contended:
            lines.append("## Contention")
            lines.append("")
            lines.append(
                "Reservation kills, failed GLSC element lanes, and the "
                "hottest line per point (from the contention "
                "observatory's untimed observed pass)."
            )
            lines.append("")
            lines.append(
                "| point | kills | failed lanes | storms | "
                "hottest line | depth |"
            )
            lines.append("|---|---|---|---|---|---|")
            for point in contended:
                block = point["contention"]
                hot = block.get("hot_line") or "—"
                lines.append(
                    f"| `{point.get('id', '?')}` "
                    f"| {block.get('kills', 0)} "
                    f"| {block.get('failed_lanes', 0)} "
                    f"| {block.get('storms', 0)} "
                    f"| `{hot}` ({block.get('hot_line_total', 0)}) "
                    f"| {block.get('max_retry_depth', 0)} |"
                )
            lines.append("")

    if trajectory:
        lines.append(f"## Trajectory (last {history} runs)")
        lines.append("")
        entries = [
            e for e in trajectory if e.get("suite") == comparison.suite
        ][-history:]
        shas = " → ".join(e.get("git_sha", "?") for e in entries)
        lines.append(f"Runs: {shas}")
        lines.append("")
        lines.append("| headline | trend | latest |")
        lines.append("|---|---|---|")
        for key, label, fmt in (
            ("total_wall_s", "total wall (s)", "{:.2f}"),
            ("cyc_per_s", "simulated cycles/s", "{:.0f}"),
            ("mean_speedup", "mean Base/GLSC ratio", "{:.3f}"),
            ("total_cycles", "total simulated cycles", "{:.0f}"),
        ):
            series = _headline_series(
                trajectory, comparison.suite, key, history
            )
            if not series:
                continue
            lines.append(
                f"| {label} | `{sparkline(series)}` "
                f"| {fmt.format(series[-1])} |"
            )
        lines.append("")

    return "\n".join(lines)
