"""BenchRunner: execute a suite fresh, N times, and aggregate.

Single-sample wall times lie — a page-cache hiccup or a turbo step
makes one run 30% off.  Following the repeat-and-aggregate
methodology of Schweizer et al.'s atomic-operation cost study, every
point is simulated ``repeats`` times and summarized as median + MAD
(median absolute deviation), which the comparator later uses as the
point's noise bound.

Every repeat is a *fresh* simulation: the runner drives the executor
through the observed-run path (an empty :class:`~repro.obs.bus.
EventBus` — no sinks, so zero event overhead), which by contract
bypasses the memo and the on-disk store and simulates in-process.
That is exactly the property a benchmark needs, reused instead of
re-implemented.

Simulated cycle counts are deterministic, so the runner also asserts
every repeat of a point returns identical cycles — a free
bitwise-reproducibility check on every bench run.

With ``backend="batch"`` the timed repeats instead run through the
executor's batched backend (:class:`~repro.sim.batch.BatchRunner` —
one process, shared interned inputs, one merged event heap).  Cycles
and stats are bitwise identical to solo mode; only the wall times
change.  Per-point walls are then cycle-proportional shares of each
batch's wall, so individual points' ``sim_khz`` are synthetic — the
honest headline is the *aggregate* (total cycles over total wall),
which is exactly what the trajectory records.

With ``phases=True`` (the default) the runner adds one *untimed*
observed pass per point after the timed repeats, attributing each
point's cycles to gather/compute/retry/stall via
:class:`~repro.bench.phases.PhaseSink` — the timed samples stay
sinkless, and the observed pass must retire identical cycles (another
determinism check, this time sinkless-vs-observed).  The same pass
carries a :class:`~repro.obs.contention.ContentionSink`, so each point
also gets a compact ``contention`` block (kill counts by cause, the
hottest line, storm windows) at no extra simulation cost.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict, List, Optional

from repro.errors import VerificationError
from repro.obs.bus import EventBus
from repro.obs.telemetry import run_provenance
from repro.sim.executor import Executor, execute_spec
from repro.sim.stats import MachineStats

from repro.bench.baseline import BENCH_SCHEMA_VERSION, current_git_sha
from repro.bench.fidelity import fidelity_metrics
from repro.bench.phases import PhaseSink
from repro.bench.suite import BenchSuite

__all__ = ["BenchRunner", "mad"]


def mad(samples: List[float]) -> float:
    """Median absolute deviation — the robust noise scale."""
    if len(samples) < 2:
        return 0.0
    center = statistics.median(samples)
    return statistics.median(abs(s - center) for s in samples)


class BenchRunner:
    """Runs a :class:`~repro.bench.suite.BenchSuite` into a bench doc."""

    def __init__(
        self,
        suite: BenchSuite,
        repeats: int = 3,
        git_sha: Optional[str] = None,
        progress=None,
        phases: bool = True,
        backend: str = "solo",
        batch_size: int = 16,
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        if backend not in ("solo", "batch"):
            raise ValueError(
                f"backend must be 'solo' or 'batch', got {backend!r}"
            )
        self.suite = suite
        self.repeats = repeats
        self.git_sha = git_sha or current_git_sha()
        self._progress = progress  # callable(str) or None
        self.phases = phases
        self.backend = backend
        self.batch_size = batch_size
        #: Stats per point id from the last :meth:`run` (repeat 0).
        self.stats_by_id: Dict[str, MachineStats] = {}

    def _note(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def run(self) -> Dict[str, Any]:
        """Execute the suite and return the bench document (JSON-able)."""
        specs = self.suite.specs()
        ids = self.suite.ids()
        wall_samples: Dict[str, List[float]] = {pid: [] for pid in ids}
        cycles_seen: Dict[str, int] = {}
        self.stats_by_id = {}

        started = time.perf_counter()
        batched = self.backend == "batch"
        for repeat in range(self.repeats):
            if batched:
                # The batch backend needs no observer trick: a fresh
                # executor per repeat has an empty memo and no store,
                # so every point simulates fresh through BatchRunner.
                # Per-point walls are the runner's cycle-proportional
                # shares of each batch wall, so their sum (and hence
                # the aggregate sim_khz) reflects real elapsed time.
                executor = Executor(
                    backend="batch", batch_size=self.batch_size
                )
                results = executor.run_sweep(specs)
            else:
                # A sinkless bus keeps every wants_* flag False (no
                # event overhead) while still forcing the executor's
                # observed path: fresh in-process simulation, no
                # memo/store reads.
                executor = Executor()
                results = executor.run_sweep(specs, obs=EventBus())
            by_label = {
                t.label: t for t in executor.telemetry
                if t.source in ("simulated", "batch")
            }
            for pid, spec in zip(ids, specs):
                stats = results[spec]
                telemetry = by_label[spec.label()]
                wall_samples[pid].append(telemetry.wall_time_s)
                if repeat == 0:
                    self.stats_by_id[pid] = stats
                    cycles_seen[pid] = stats.cycles
                elif stats.cycles != cycles_seen[pid]:
                    raise VerificationError(
                        f"bench point {pid} is non-deterministic: "
                        f"{cycles_seen[pid]} cycles on repeat 0, "
                        f"{stats.cycles} on repeat {repeat}"
                    )
            self._note(
                f"repeat {repeat + 1}/{self.repeats}: "
                f"{len(specs)} points in "
                f"{time.perf_counter() - started:.1f}s total"
            )

        phases_by_id: Dict[str, Dict[str, Any]] = {}
        contention_by_id: Dict[str, Dict[str, Any]] = {}
        if self.phases:
            from repro.obs.contention import ContentionSink

            for pid, spec in zip(ids, specs):
                bus = EventBus()
                sink = bus.attach(PhaseSink())
                contention = bus.attach(
                    ContentionSink(n_cores=spec.config().n_cores)
                )
                captured: Dict[str, Any] = {}

                def _capture(machine, captured=captured) -> None:
                    captured["regions"] = machine.image.regions

                stats = execute_spec(spec, obs=bus, on_machine=_capture)
                bus.close()
                if stats.cycles != cycles_seen[pid]:
                    raise VerificationError(
                        f"bench point {pid} diverges under observation: "
                        f"{cycles_seen[pid]} cycles sinkless, "
                        f"{stats.cycles} with the phase sink attached"
                    )
                phases_by_id[pid] = sink.breakdown(stats.cycles)
                contention_by_id[pid] = contention.summary(
                    regions=captured.get("regions"), stats=stats
                ).compact()
            self._note(
                f"phase attribution: {len(specs)} observed passes in "
                f"{time.perf_counter() - started:.1f}s total"
            )

        points = []
        for pid, spec in zip(ids, specs):
            samples = wall_samples[pid]
            wall_median = statistics.median(samples)
            stats = self.stats_by_id[pid]
            points.append(
                {
                    "id": pid,
                    "spec": spec.to_dict(),
                    "cycles": stats.cycles,
                    "instructions": stats.total_instructions,
                    "wall_s": {
                        "median": wall_median,
                        "mad": mad(samples),
                        "min": min(samples),
                        "samples": samples,
                    },
                    "cyc_per_s": (
                        stats.cycles / wall_median if wall_median > 0 else 0.0
                    ),
                    "sim_khz": (
                        stats.cycles / wall_median / 1e3
                        if wall_median > 0 else 0.0
                    ),
                    "instr_per_sec": (
                        stats.total_instructions / wall_median
                        if wall_median > 0 else 0.0
                    ),
                    # Wall-free throughput proxy: simulated cycles per
                    # simulated instruction.  Deterministic, so the
                    # comparator can gate on it without noise bounds —
                    # it moves only when the *model* (not the host)
                    # changes speed.
                    "cyc_per_instr": (
                        stats.cycles / stats.total_instructions
                        if stats.total_instructions else 0.0
                    ),
                    "summary": stats.summary(),
                    **(
                        {"phases": phases_by_id[pid]}
                        if pid in phases_by_id else {}
                    ),
                    **(
                        {"contention": contention_by_id[pid]}
                        if pid in contention_by_id else {}
                    ),
                }
            )

        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "git_sha": self.git_sha,
            "created": time.time(),
            "suite": self.suite.name,
            "repeats": self.repeats,
            "backend": self.backend,
            **(
                {"batch_size": self.batch_size}
                if self.backend == "batch" else {}
            ),
            "deterministic": True,  # enforced above, repeat-vs-repeat
            "provenance": run_provenance(time.perf_counter() - started),
            "points": points,
            "fidelity": fidelity_metrics(self.stats_by_id),
        }
