"""Bench suites: the fixed grids of RunSpecs the observatory watches.

A suite is deliberately *declared*, not discovered: the grid is part
of the contract with the trajectory and the fidelity reference, so a
point silently disappearing is itself a reportable event (the
comparator flags ids present in the baseline but missing from a new
run).  Spatter's gather/scatter suite works the same way — a fixed,
named set of patterns whose archived results stay comparable across
machines and commits.

Two registered suites:

* ``full`` — every paper kernel x SIMD width {1, 4, 16} x topology
  {1x1, 4x4} x variant {base, glsc} on dataset A: 84 points, the grid
  behind Figures 6/8 and Table 4;
* ``smoke`` — two kernels (one alias-heavy, one not) on the tiny
  dataset at widths {1, 4}: 16 points, fast enough for a CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.kernels.registry import KERNEL_ORDER
from repro.sim.executor import RunSpec

__all__ = ["BenchPoint", "BenchSuite", "SUITE_NAMES", "get_suite"]

#: The SIMD widths and topologies the full grid sweeps (paper Fig 6/8).
FULL_WIDTHS: Tuple[int, ...] = (1, 4, 16)
FULL_TOPOLOGIES: Tuple[str, ...] = ("1x1", "4x4")
VARIANTS: Tuple[str, ...] = ("base", "glsc")


def point_id(spec: RunSpec) -> str:
    """Stable identity of a bench point across runs and files.

    ``kernel/dataset:topology:wW:variant`` — every character is legal
    in JSON keys and shell arguments, and the id round-trips through
    :func:`spec_from_id`.
    """
    return (
        f"{spec.kernel}/{spec.dataset}:{spec.topology}"
        f":w{spec.simd_width}:{spec.variant}"
    )


def spec_from_id(pid: str) -> RunSpec:
    """Inverse of :func:`point_id` (bench points carry no overrides)."""
    try:
        # rsplit: microbenchmark kernels ("micro:A") contain a colon.
        kernel_dataset, topology, width, variant = pid.rsplit(":", 3)
        kernel, dataset = kernel_dataset.rsplit("/", 1)
        if not width.startswith("w"):
            raise ValueError(pid)
        spec = RunSpec(kernel, dataset, topology, int(width[1:]), variant)
    except ValueError as exc:
        raise ConfigError(f"malformed bench point id {pid!r}") from exc
    if spec.is_micro:
        return RunSpec.micro(
            spec.kernel.split(":", 1)[1], topology, spec.simd_width, variant
        )
    return spec


@dataclass(frozen=True)
class BenchPoint:
    """One cell of a suite's grid: a spec plus its stable id."""

    spec: RunSpec

    @property
    def id(self) -> str:
        return point_id(self.spec)


class BenchSuite:
    """A named, ordered, duplicate-free grid of bench points."""

    def __init__(self, name: str, specs: Sequence[RunSpec]) -> None:
        self.name = name
        self.points: List[BenchPoint] = []
        seen: Dict[str, RunSpec] = {}
        for spec in specs:
            pid = point_id(spec)
            if pid in seen:
                raise ConfigError(
                    f"suite {name!r} declares point {pid!r} twice"
                )
            seen[pid] = spec
            self.points.append(BenchPoint(spec))

    # -- construction -----------------------------------------------------

    @classmethod
    def grid(
        cls,
        name: str,
        kernels: Sequence[str],
        dataset: str,
        topologies: Sequence[str] = FULL_TOPOLOGIES,
        widths: Sequence[int] = FULL_WIDTHS,
        variants: Sequence[str] = VARIANTS,
    ) -> "BenchSuite":
        """The Cartesian grid suite over the given axes."""
        return cls(
            name,
            [
                RunSpec(kernel, dataset, topology, width, variant)
                for kernel in kernels
                for topology in topologies
                for width in widths
                for variant in variants
            ],
        )

    @classmethod
    def full(cls) -> "BenchSuite":
        """Every kernel x {1,4,16}-wide x {1x1,4x4} x {base,glsc}, dataset A."""
        return cls.grid("full", KERNEL_ORDER, "A")

    @classmethod
    def smoke(cls) -> "BenchSuite":
        """Reduced CI grid: tms (alias-heavy) + hip (Base-competitive)."""
        return cls.grid("smoke", ("tms", "hip"), "tiny", widths=(1, 4))

    # -- access -----------------------------------------------------------

    def ids(self) -> List[str]:
        return [point.id for point in self.points]

    def specs(self) -> List[RunSpec]:
        return [point.spec for point in self.points]

    def __iter__(self) -> Iterator[BenchPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return f"BenchSuite({self.name!r}, {len(self.points)} points)"


#: Registered suite names, in documentation order.
SUITE_NAMES: Tuple[str, ...] = ("full", "smoke")


def get_suite(name: str) -> BenchSuite:
    """Look a registered suite up by name."""
    if name == "full":
        return BenchSuite.full()
    if name == "smoke":
        return BenchSuite.smoke()
    raise ConfigError(f"unknown bench suite {name!r}; known: {SUITE_NAMES}")
