"""Bench suites: the fixed grids of RunSpecs the observatory watches.

A suite is deliberately *declared*, not discovered: the grid is part
of the contract with the trajectory and the fidelity reference, so a
point silently disappearing is itself a reportable event (the
comparator flags ids present in the baseline but missing from a new
run).  Spatter's gather/scatter suite works the same way — a fixed,
named set of patterns whose archived results stay comparable across
machines and commits.

Three registered suites:

* ``full`` — every paper kernel x SIMD width {1, 4, 16} x topology
  {1x1, 4x4} x variant {base, glsc} on dataset A: 84 points, the grid
  behind Figures 6/8 and Table 4;
* ``smoke`` — two kernels (one alias-heavy, one not) on the tiny
  dataset at widths {1, 4}: 16 points, fast enough for a CI gate;
* ``ablations`` — the Section 3.2/3.3 design-freedom flips (combining
  off, alias-at-gather, fail-on-miss, eviction-tolerant links, GLSC
  buffer sizes, prefetcher off) as override-carrying points next to
  their plain base/glsc baselines, so the policy trade-offs the paper
  *discusses* are gated by ``bench compare`` like the grids the paper
  *plots*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.kernels.registry import KERNEL_ORDER
from repro.sim.executor import RunSpec

__all__ = ["BenchPoint", "BenchSuite", "SUITE_NAMES", "get_suite"]

#: The SIMD widths and topologies the full grid sweeps (paper Fig 6/8).
FULL_WIDTHS: Tuple[int, ...] = (1, 4, 16)
FULL_TOPOLOGIES: Tuple[str, ...] = ("1x1", "4x4")
VARIANTS: Tuple[str, ...] = ("base", "glsc")


def _override_token(value: Any) -> str:
    """One override value as an id token (inverse: :func:`_parse_token`)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse_token(token: str) -> Any:
    """Recover an override value's type from its id token."""
    if token == "true":
        return True
    if token == "false":
        return False
    for parse in (int, float):
        try:
            return parse(token)
        except ValueError:
            continue
    return token


def point_id(spec: RunSpec) -> str:
    """Stable identity of a bench point across runs and files.

    ``kernel/dataset:topology:wW:variant`` — every character is legal
    in JSON keys and shell arguments, and the id round-trips through
    :func:`spec_from_id`.  A spec carrying config overrides (the
    ablation points, protocol-matrix runs) appends one more segment,
    ``:k=v,k2=v2``, in the overrides' canonical sorted order.
    """
    base = (
        f"{spec.kernel}/{spec.dataset}:{spec.topology}"
        f":w{spec.simd_width}:{spec.variant}"
    )
    if not spec.overrides:
        return base
    extra = ",".join(
        f"{name}={_override_token(value)}" for name, value in spec.overrides
    )
    return f"{base}:{extra}"


def spec_from_id(pid: str) -> RunSpec:
    """Inverse of :func:`point_id`, overrides segment included."""
    overrides: Dict[str, Any] = {}
    head = pid
    maybe_head, _, last = pid.rpartition(":")
    if maybe_head and "=" in last:
        head = maybe_head
        try:
            for pair in last.split(","):
                name, _, token = pair.partition("=")
                if not name or not token:
                    raise ValueError(pid)
                overrides[name] = _parse_token(token)
        except ValueError as exc:
            raise ConfigError(f"malformed bench point id {pid!r}") from exc
    try:
        # rsplit: microbenchmark kernels ("micro:A") contain a colon.
        kernel_dataset, topology, width, variant = head.rsplit(":", 3)
        kernel, dataset = kernel_dataset.rsplit("/", 1)
        if not width.startswith("w"):
            raise ValueError(pid)
        spec = RunSpec(kernel, dataset, topology, int(width[1:]), variant,
                       overrides=overrides)
    except ValueError as exc:
        raise ConfigError(f"malformed bench point id {pid!r}") from exc
    if spec.is_micro:
        return RunSpec.micro(
            spec.kernel.split(":", 1)[1], topology, spec.simd_width, variant,
            overrides=overrides or None,
        )
    return spec


@dataclass(frozen=True)
class BenchPoint:
    """One cell of a suite's grid: a spec plus its stable id."""

    spec: RunSpec

    @property
    def id(self) -> str:
        return point_id(self.spec)


class BenchSuite:
    """A named, ordered, duplicate-free grid of bench points."""

    def __init__(self, name: str, specs: Sequence[RunSpec]) -> None:
        self.name = name
        self.points: List[BenchPoint] = []
        seen: Dict[str, RunSpec] = {}
        for spec in specs:
            pid = point_id(spec)
            if pid in seen:
                raise ConfigError(
                    f"suite {name!r} declares point {pid!r} twice"
                )
            seen[pid] = spec
            self.points.append(BenchPoint(spec))

    # -- construction -----------------------------------------------------

    @classmethod
    def grid(
        cls,
        name: str,
        kernels: Sequence[str],
        dataset: str,
        topologies: Sequence[str] = FULL_TOPOLOGIES,
        widths: Sequence[int] = FULL_WIDTHS,
        variants: Sequence[str] = VARIANTS,
    ) -> "BenchSuite":
        """The Cartesian grid suite over the given axes."""
        return cls(
            name,
            [
                RunSpec(kernel, dataset, topology, width, variant)
                for kernel in kernels
                for topology in topologies
                for width in widths
                for variant in variants
            ],
        )

    @classmethod
    def full(cls) -> "BenchSuite":
        """Every kernel x {1,4,16}-wide x {1x1,4x4} x {base,glsc}, dataset A."""
        return cls.grid("full", KERNEL_ORDER, "A")

    @classmethod
    def smoke(cls) -> "BenchSuite":
        """Reduced CI grid: tms (alias-heavy) + hip (Base-competitive)."""
        return cls.grid("smoke", ("tms", "hip"), "tiny", widths=(1, 4))

    @classmethod
    def ablations(cls) -> "BenchSuite":
        """The Section 3.2/3.3 failure-policy and design-freedom flips.

        Mirrors ``benchmarks/test_ablations.py`` as archived bench
        points: each policy flip is an override-carrying GLSC point on
        the 4x4 W4 dataset-A cell, accompanied by the plain base/glsc
        baselines of the same cell so the fidelity metrics still get
        their speedup pairing.
        """

        def cell(kernel: str, variant: str = "glsc",
                 **overrides: Any) -> RunSpec:
            return RunSpec(kernel, "A", "4x4", 4, variant,
                           overrides=overrides)

        specs = [
            # plain baselines: base/glsc pairs for the fidelity ratios
            cell("tms", "base"), cell("tms"),
            cell("gbc", "base"), cell("gbc"),
            cell("hip", "base"), cell("hip"),
            # same-line combining off (benefit source #3)
            cell("tms", gsu_combine_lines=False),
            cell("gbc", gsu_combine_lines=False),
            cell("hip", gsu_combine_lines=False),
            # alias resolution at gather-link time (Section 3.1)
            cell("hip", glsc_alias_in_gather=True),
            # fail-on-miss link policy (Section 3.2c)
            cell("tms", glsc_fail_on_miss=True),
            # links tolerate eviction instead of dying (Section 3.2b)
            cell("tms", glsc_fail_on_link_eviction=False),
            # GLSC entries in a small buffer vs the L1 tags (Section 3.3)
            cell("gbc", glsc_buffer_entries=4),
            cell("gbc", glsc_buffer_entries=64),
            # the stride prefetcher's contribution to the Base variant
            cell("tms", "base", prefetch_enabled=False),
        ]
        return cls("ablations", specs)

    def with_protocol(self, protocol: str) -> "BenchSuite":
        """This grid re-run under a non-default coherence protocol.

        Every point gains a ``protocol`` override (so ids and digests
        differ from the default-protocol run) and the suite is renamed
        ``<name>@<protocol>`` — trajectory baselines therefore never
        mix protocols.  Asking for the default protocol returns the
        suite unchanged.
        """
        from repro.mem.protocol import DEFAULT_PROTOCOL

        if protocol == DEFAULT_PROTOCOL:
            return self
        return BenchSuite(
            f"{self.name}@{protocol}",
            [spec.with_overrides(protocol=protocol)
             for spec in self.specs()],
        )

    # -- access -----------------------------------------------------------

    def ids(self) -> List[str]:
        return [point.id for point in self.points]

    def specs(self) -> List[RunSpec]:
        return [point.spec for point in self.points]

    def __iter__(self) -> Iterator[BenchPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return f"BenchSuite({self.name!r}, {len(self.points)} points)"


#: Registered suite names, in documentation order.
SUITE_NAMES: Tuple[str, ...] = ("full", "smoke", "ablations")


def get_suite(name: str, protocol: Optional[str] = None) -> BenchSuite:
    """Look a registered suite up by name.

    ``protocol`` (when given and non-default) rewrites the grid via
    :meth:`BenchSuite.with_protocol`.
    """
    if name == "full":
        suite = BenchSuite.full()
    elif name == "smoke":
        suite = BenchSuite.smoke()
    elif name == "ablations":
        suite = BenchSuite.ablations()
    else:
        raise ConfigError(
            f"unknown bench suite {name!r}; known: {SUITE_NAMES}"
        )
    if protocol is not None:
        suite = suite.with_protocol(protocol)
    return suite
