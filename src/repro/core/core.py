"""In-order SMT core model.

Each core executes up to ``threads_per_core`` thread programs with a
shared issue bandwidth of ``issue_width`` instructions per cycle,
picking among ready threads round-robin — the standard fine-grained
SMT policy, and what lets the paper's 1x4 configuration hide memory
latency.

Instruction execution is dispatched through a per-thread *handler
table* compiled when the thread is attached: one bound callable per
:class:`~repro.isa.instructions.Kind`, closing over the LSU/GSU and
the thread's SMT slot.  Issuing an instruction is then a single
indexed call — no per-issue chain of kind comparisons.  ALU/VALU work
costs one cycle per operation.  A thread blocks on its own memory
instruction until the unit reports the completion cycle;
gather/scatter instructions are blocking per the paper (Section 2.2).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ProgramError, SimulationError
from repro.core.gsu import Gsu
from repro.core.lsu import Lsu
from repro.core.ports import L1Port
from repro.isa.instructions import Instr, Kind, N_KINDS
from repro.isa.program import Program, ThreadCtx
from repro.mem.coherence import CoherenceSystem
from repro.mem.image import MemoryImage
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats, ThreadStats
from repro.sim.trace import TraceEvent

__all__ = ["HwThread", "Core"]

#: Thread lifecycle states.
T_READY = "ready"
T_BARRIER = "barrier"
T_DONE = "done"

_OP_BARRIER = int(Kind.BARRIER)

#: Type of one compiled instruction handler: (instr, now) -> (completion,
#: architectural result).
Handler = Callable[[Instr, int], Tuple[int, Any]]


class HwThread:
    """Runtime state of one hardware thread context."""

    __slots__ = (
        "global_tid",
        "slot",
        "core_id",
        "ctx",
        "stats",
        "state",
        "ready_at",
        "barrier_group",
        "barrier_since",
        "handlers",
        "_pending_result",
        "_send",
    )

    def __init__(
        self,
        global_tid: int,
        slot: int,
        program: Program,
        ctx: ThreadCtx,
        stats: ThreadStats,
    ) -> None:
        self.global_tid = global_tid
        self.slot = slot
        self.core_id = -1  # assigned by Core.add_thread
        self.ctx = ctx
        self.stats = stats
        self.state = T_READY
        self.ready_at = 0
        self.barrier_group: Optional[str] = None
        self.barrier_since = 0
        self.handlers: List[Handler] = []
        self._pending_result: Any = None
        # send(None) on a fresh generator is next(): no "started" flag.
        self._send = program(ctx).send

    def runnable_at(self, now: int) -> bool:
        """Whether this thread can issue an instruction at ``now``."""
        return self.state == T_READY and self.ready_at <= now

    def next_instr(self) -> Optional[Instr]:
        """Advance the program generator by one instruction.

        Returns None when the program has finished.
        """
        try:
            instr = self._send(self._pending_result)
        except StopIteration:
            return None
        if type(instr) is not Instr:
            raise ProgramError(
                f"thread {self.global_tid} yielded {type(instr).__name__}, "
                f"expected Instr"
            )
        return instr

    def deliver(self, result: Any) -> None:
        """Stage the architectural result for the next generator resume."""
        self._pending_result = result


class Core:
    """One in-order SMT core with private L1 port, LSU, and GSU."""

    __slots__ = (
        "core_id",
        "config",
        "port",
        "lsu",
        "gsu",
        "threads",
        "tracer",
        "obs",
        "done_events",
        "barrier_arrivals",
        "_rr",
        "_last_it",
        "_next_ready",
        "_issue_width",
        "_maybe_observed",
    )

    def __init__(
        self,
        core_id: int,
        config: MachineConfig,
        coherence: CoherenceSystem,
        image: MemoryImage,
        stats: MachineStats,
        tracer=None,
        obs=None,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.port = L1Port()
        self.lsu = Lsu(core_id, config, coherence, image, stats, self.port)
        self.gsu = Gsu(
            core_id, config, coherence, image, stats, self.port, obs=obs
        )
        self.threads: List[HwThread] = []
        self.tracer = tracer
        self.obs = obs
        # Threads that finished / hit a barrier during the last tick(s).
        # The machine loop replaces these with shared lists so it learns
        # of lifecycle changes without rescanning every thread.
        self.done_events: List[HwThread] = []
        self.barrier_arrivals: List[HwThread] = []
        self._rr = 0
        # Machine-loop iteration this core last ticked at; idle ticks
        # are skipped and their round-robin advances applied lazily.
        self._last_it = -1
        # The machine's cached next_ready_cycle() for this core (used
        # to validate wakeup-heap entries).
        self._next_ready: Optional[int] = None
        self._issue_width = config.issue_width
        self._maybe_observed = tracer is not None or obs is not None

    def add_thread(self, thread: HwThread) -> None:
        """Attach a hardware thread to this core."""
        if len(self.threads) >= self.config.threads_per_core:
            raise SimulationError(
                f"core {self.core_id} already has "
                f"{self.config.threads_per_core} threads"
            )
        thread.core_id = self.core_id
        thread.handlers = self._compile_handlers(thread.slot, thread.stats)
        self.threads.append(thread)

    # -- scheduling --------------------------------------------------------

    def tick(self, now: int, it: Optional[int] = None) -> Optional[int]:
        """Issue up to ``issue_width`` instructions at cycle ``now``.

        ``it`` is the machine loop's iteration counter.  The reference
        loop ticked every core every iteration, advancing the
        round-robin pointer even on idle ticks; the event-driven loop
        only ticks cores with runnable threads, so the skipped
        advances are applied here in one step to keep the arbitration
        sequence bit-identical.

        Returns the post-tick :meth:`next_ready_cycle` value, computed
        in the same pass so the machine loop never rescans the threads.
        """
        threads = self.threads
        n = len(threads)
        if n == 0:
            return None
        if it is None:
            it = self._last_it + 1
        if n == 1:
            # Single-thread core: no arbitration.  The round-robin
            # pointer is identically 0 and the issue loop visits one
            # thread, so the general path below reduces to exactly
            # this (same issue condition, same bookkeeping).
            self._last_it = it
            thread = threads[0]
            if thread.state == T_READY and thread.ready_at <= now:
                try:
                    instr = thread._send(thread._pending_result)
                except StopIteration:
                    thread.state = T_DONE
                    thread.stats.finish_cycle = now
                    self.done_events.append(thread)
                    return None
                if type(instr) is not Instr:
                    raise ProgramError(
                        f"thread {thread.global_tid} yielded "
                        f"{type(instr).__name__}, expected Instr"
                    )
                kind = instr.kind
                completion, result = thread.handlers[kind](instr, now)
                if self._maybe_observed:
                    self._observe(thread, instr, now, completion)
                thread._pending_result = result
                if kind == _OP_BARRIER:
                    thread.state = T_BARRIER
                    thread.barrier_group = instr.group
                    thread.barrier_since = now
                    self.barrier_arrivals.append(thread)
                    return None
                thread.ready_at = completion
                return completion
            return thread.ready_at if thread.state == T_READY else None
        rr = self._rr + (it - self._last_it - 1)
        self._last_it = it
        issued = 0
        width = self._issue_width
        maybe_observed = self._maybe_observed
        next_ready: Optional[int] = None
        for i in range(n):
            thread = threads[(rr + i) % n]
            if (
                issued < width
                and thread.state == T_READY
                and thread.ready_at <= now
            ):
                # -- issue path, inlined (the hottest loop in the sim) --
                try:
                    instr = thread._send(thread._pending_result)
                except StopIteration:
                    thread.state = T_DONE
                    thread.stats.finish_cycle = now
                    self.done_events.append(thread)
                else:
                    if type(instr) is not Instr:
                        raise ProgramError(
                            f"thread {thread.global_tid} yielded "
                            f"{type(instr).__name__}, expected Instr"
                        )
                    kind = instr.kind
                    completion, result = thread.handlers[kind](instr, now)
                    if maybe_observed:
                        self._observe(thread, instr, now, completion)
                    thread._pending_result = result
                    if kind == _OP_BARRIER:
                        thread.state = T_BARRIER
                        thread.barrier_group = instr.group
                        thread.barrier_since = now
                        self.barrier_arrivals.append(thread)
                    else:
                        thread.ready_at = completion
                issued += 1
            if thread.state == T_READY:
                r = thread.ready_at
                if next_ready is None or r < next_ready:
                    next_ready = r
        self._rr = (rr + 1) % n
        return next_ready

    def next_ready_cycle(self) -> Optional[int]:
        """Earliest cycle any thread here can issue, or None if none can."""
        best: Optional[int] = None
        for t in self.threads:
            if t.state == T_READY:
                r = t.ready_at
                if best is None or r < best:
                    best = r
        return best

    def all_done(self) -> bool:
        """Whether every thread on this core has finished."""
        return all(t.state == T_DONE for t in self.threads)

    # -- execution -----------------------------------------------------------

    def _observe(
        self, thread: HwThread, instr: Instr, now: int, completion: int
    ) -> None:
        obs = self.obs
        wants_instr = obs is not None and obs.wants_instr
        if self.tracer is None and not wants_instr:
            return
        event = TraceEvent(
            cycle=now,
            completion=completion,
            thread=thread.global_tid,
            core=self.core_id,
            kind=instr.kind,
            sync=instr.sync,
        )
        if self.tracer is not None:
            self.tracer.record(event)
        if wants_instr:
            obs.emit(event)

    def _execute(self, thread: HwThread, instr: Instr, now: int):
        """Execute one instruction; returns (completion cycle, result)."""
        return thread.handlers[instr.kind](instr, now)

    # -- dispatch compilation ----------------------------------------------

    def _compile_handlers(self, slot: int, stats: ThreadStats) -> List[Handler]:
        """Bind one handler per instruction kind for SMT slot ``slot``.

        Each handler closes over the unit method, the slot, and the
        thread's stats, so the issue path pays one list index + one
        call instead of a dispatch chain; operand decode is just
        attribute loads off the Instr.  The per-instruction stats
        accounting lives *inside* each handler: a handler knows
        statically whether its kind is a compute op (retires ``count``
        operations) or a memory op (counts a memory instruction and
        stall cycles), so the generic table lookups and branches the
        issue loop used to pay per instruction are resolved at compile
        time.  Every handler must keep the accounting identical to::

            icount = instr.count if IS_COMPUTE_OP[kind] else 1
            busy = max(completion - now, 1)
            stats.instructions += icount
            stats.busy_cycles += busy
            if IS_MEMORY_OP[kind]:
                stats.mem_instructions += 1
                stats.mem_stall_cycles += busy - 1 if busy > 1 else 0
            if instr.sync:
                stats.sync_instructions += icount
                stats.sync_cycles += busy
        """
        lsu = self.lsu
        gsu = self.gsu
        load, store = lsu.load, lsu.store
        ll, sc = lsu.ll, lsu.sc
        vload, vstore = lsu.vload, lsu.vstore
        gather, scatter = gsu.gather, gsu.scatter

        def h_alu(instr: Instr, now: int):
            count = instr.count  # busy == count: 1 cycle/op, count >= 1
            stats.instructions += count
            stats.busy_cycles += count
            if instr.sync:
                stats.sync_instructions += count
                stats.sync_cycles += count
            return now + count, None

        def h_valu(instr: Instr, now: int):
            result = instr.fn()
            count = instr.count
            stats.instructions += count
            stats.busy_cycles += count
            if instr.sync:
                stats.sync_instructions += count
                stats.sync_cycles += count
            return now + count, result

        def h_load(instr: Instr, now: int):
            value, completion = load(slot, instr.addr, now, sync=instr.sync)
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, value

        def h_store(instr: Instr, now: int):
            completion = store(
                slot, instr.addr, instr.value, now, sync=instr.sync
            )
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, None

        def h_ll(instr: Instr, now: int):
            value, completion = ll(slot, instr.addr, now)
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, value

        def h_sc(instr: Instr, now: int):
            success, completion = sc(slot, instr.addr, instr.value, now)
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, success

        def h_vload(instr: Instr, now: int):
            values, completion = vload(
                slot, instr.addr, instr.count, now, sync=instr.sync
            )
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, values

        def h_vstore(instr: Instr, now: int):
            completion = vstore(
                slot, instr.addr, instr.values, instr.mask, now,
                sync=instr.sync,
            )
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, None

        def h_vgather(instr: Instr, now: int):
            (values, _), completion = gather(
                slot, instr.base, instr.indices, instr.mask, now,
                linked=False, sync=instr.sync,
            )
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, values

        def h_vgatherlink(instr: Instr, now: int):
            result, completion = gather(
                slot, instr.base, instr.indices, instr.mask, now,
                linked=True,
            )
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, result

        def h_vscatter(instr: Instr, now: int):
            _, completion = scatter(
                slot, instr.base, instr.indices, instr.values, instr.mask,
                now, conditional=False, sync=instr.sync,
            )
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, None

        def h_vscattercond(instr: Instr, now: int):
            out_mask, completion = scatter(
                slot, instr.base, instr.indices, instr.values, instr.mask,
                now, conditional=True,
            )
            busy = completion - now
            if busy < 1:
                busy = 1
            stats.instructions += 1
            stats.busy_cycles += busy
            stats.mem_instructions += 1
            if busy > 1:
                stats.mem_stall_cycles += busy - 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += busy
            return completion, out_mask

        def h_barrier(instr: Instr, now: int):
            stats.instructions += 1  # busy is identically 1
            stats.busy_cycles += 1
            if instr.sync:
                stats.sync_instructions += 1
                stats.sync_cycles += 1
            return now + 1, None

        def h_unhandled(instr: Instr, now: int):
            raise SimulationError(
                f"unhandled instruction kind {instr.kind}"
            )

        table: List[Handler] = [h_unhandled] * N_KINDS
        table[Kind.ALU] = h_alu
        table[Kind.VALU] = h_valu
        table[Kind.LOAD] = h_load
        table[Kind.STORE] = h_store
        table[Kind.LL] = h_ll
        table[Kind.SC] = h_sc
        table[Kind.VLOAD] = h_vload
        table[Kind.VSTORE] = h_vstore
        table[Kind.VGATHER] = h_vgather
        table[Kind.VGATHERLINK] = h_vgatherlink
        table[Kind.VSCATTER] = h_vscatter
        table[Kind.VSCATTERCOND] = h_vscattercond
        table[Kind.BARRIER] = h_barrier
        return table
