"""In-order SMT core model.

Each core executes up to ``threads_per_core`` thread programs with a
shared issue bandwidth of ``issue_width`` instructions per cycle,
picking among ready threads round-robin — the standard fine-grained
SMT policy, and what lets the paper's 1x4 configuration hide memory
latency.

Instruction execution is dispatched to the LSU (scalar + contiguous
SIMD) and the GSU (indexed SIMD, including the GLSC instructions).
ALU/VALU work costs one cycle per operation.  A thread blocks on its
own memory instruction until the unit reports the completion cycle;
gather/scatter instructions are blocking per the paper (Section 2.2).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ProgramError, SimulationError
from repro.core.gsu import Gsu
from repro.core.lsu import Lsu
from repro.core.ports import L1Port
from repro.isa.instructions import Instr, Kind, MEMORY_KINDS
from repro.isa.program import Program, ThreadCtx
from repro.mem.coherence import CoherenceSystem
from repro.mem.image import MemoryImage
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats, ThreadStats

__all__ = ["HwThread", "Core"]

#: Thread lifecycle states.
T_READY = "ready"
T_BARRIER = "barrier"
T_DONE = "done"


class HwThread:
    """Runtime state of one hardware thread context."""

    def __init__(
        self,
        global_tid: int,
        slot: int,
        program: Program,
        ctx: ThreadCtx,
        stats: ThreadStats,
    ) -> None:
        self.global_tid = global_tid
        self.slot = slot
        self.ctx = ctx
        self.stats = stats
        self.state = T_READY
        self.ready_at = 0
        self.barrier_group: Optional[str] = None
        self.barrier_since = 0
        self._pending_result: Any = None
        self._started = False
        self._gen = program(ctx)

    def runnable_at(self, now: int) -> bool:
        """Whether this thread can issue an instruction at ``now``."""
        return self.state == T_READY and self.ready_at <= now

    def next_instr(self) -> Optional[Instr]:
        """Advance the program generator by one instruction.

        Returns None when the program has finished.
        """
        try:
            if not self._started:
                self._started = True
                instr = next(self._gen)
            else:
                instr = self._gen.send(self._pending_result)
        except StopIteration:
            return None
        if not isinstance(instr, Instr):
            raise ProgramError(
                f"thread {self.global_tid} yielded {type(instr).__name__}, "
                f"expected Instr"
            )
        return instr

    def deliver(self, result: Any) -> None:
        """Stage the architectural result for the next generator resume."""
        self._pending_result = result


class Core:
    """One in-order SMT core with private L1 port, LSU, and GSU."""

    def __init__(
        self,
        core_id: int,
        config: MachineConfig,
        coherence: CoherenceSystem,
        image: MemoryImage,
        stats: MachineStats,
        tracer=None,
        obs=None,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.port = L1Port()
        self.lsu = Lsu(core_id, config, coherence, image, stats, self.port)
        self.gsu = Gsu(
            core_id, config, coherence, image, stats, self.port, obs=obs
        )
        self.threads: List[HwThread] = []
        self.tracer = tracer
        self.obs = obs
        self._rr = 0

    def add_thread(self, thread: HwThread) -> None:
        """Attach a hardware thread to this core."""
        if len(self.threads) >= self.config.threads_per_core:
            raise SimulationError(
                f"core {self.core_id} already has "
                f"{self.config.threads_per_core} threads"
            )
        self.threads.append(thread)

    # -- scheduling --------------------------------------------------------

    def tick(self, now: int) -> None:
        """Issue up to ``issue_width`` instructions at cycle ``now``."""
        n = len(self.threads)
        if n == 0:
            return
        issued = 0
        for i in range(n):
            if issued >= self.config.issue_width:
                break
            thread = self.threads[(self._rr + i) % n]
            if not thread.runnable_at(now):
                continue
            self._issue_one(thread, now)
            issued += 1
        self._rr = (self._rr + 1) % n

    def next_ready_cycle(self) -> Optional[int]:
        """Earliest cycle any thread here can issue, or None if none can."""
        candidates = [
            t.ready_at for t in self.threads if t.state == T_READY
        ]
        return min(candidates) if candidates else None

    def all_done(self) -> bool:
        """Whether every thread on this core has finished."""
        return all(t.state == T_DONE for t in self.threads)

    # -- execution -----------------------------------------------------------

    def _issue_one(self, thread: HwThread, now: int) -> None:
        instr = thread.next_instr()
        if instr is None:
            thread.state = T_DONE
            thread.stats.finish_cycle = now
            return
        completion, result = self._execute(thread, instr, now)
        obs = self.obs
        wants_instr = obs is not None and obs.wants_instr
        if self.tracer is not None or wants_instr:
            from repro.sim.trace import TraceEvent

            event = TraceEvent(
                cycle=now,
                completion=completion,
                thread=thread.global_tid,
                core=self.core_id,
                kind=instr.kind,
                sync=instr.sync,
            )
            if self.tracer is not None:
                self.tracer.record(event)
            if wants_instr:
                obs.emit(event)
        icount = instr.count if instr.kind in (Kind.ALU, Kind.VALU) else 1
        thread.stats.instructions += icount
        thread.stats.busy_cycles += max(completion - now, 1)
        if instr.kind in MEMORY_KINDS:
            thread.stats.mem_instructions += 1
            thread.stats.mem_stall_cycles += max(completion - now - 1, 0)
        if instr.sync:
            thread.stats.sync_instructions += icount
            thread.stats.sync_cycles += max(completion - now, 1)
        thread.deliver(result)
        if instr.kind == Kind.BARRIER:
            thread.state = T_BARRIER
            thread.barrier_group = instr.group
            thread.barrier_since = now
        else:
            thread.ready_at = completion

    def _execute(self, thread: HwThread, instr: Instr, now: int):
        """Execute one instruction; returns (completion cycle, result)."""
        kind = instr.kind
        slot = thread.slot
        if kind == Kind.ALU:
            return now + instr.count, None
        if kind == Kind.VALU:
            return now + instr.count, instr.fn()
        if kind == Kind.LOAD:
            value, completion = self.lsu.load(
                slot, instr.addr, now, sync=instr.sync
            )
            return completion, value
        if kind == Kind.STORE:
            completion = self.lsu.store(
                slot, instr.addr, instr.value, now, sync=instr.sync
            )
            return completion, None
        if kind == Kind.LL:
            value, completion = self.lsu.ll(slot, instr.addr, now)
            return completion, value
        if kind == Kind.SC:
            success, completion = self.lsu.sc(
                slot, instr.addr, instr.value, now
            )
            return completion, success
        if kind == Kind.VLOAD:
            values, completion = self.lsu.vload(
                slot, instr.addr, instr.count, now, sync=instr.sync
            )
            return completion, values
        if kind == Kind.VSTORE:
            completion = self.lsu.vstore(
                slot, instr.addr, instr.values, instr.mask, now,
                sync=instr.sync,
            )
            return completion, None
        if kind == Kind.VGATHER:
            (values, _), completion = self.gsu.gather(
                slot, instr.base, instr.indices, instr.mask, now,
                linked=False, sync=instr.sync,
            )
            return completion, values
        if kind == Kind.VGATHERLINK:
            result, completion = self.gsu.gather(
                slot, instr.base, instr.indices, instr.mask, now,
                linked=True,
            )
            return completion, result
        if kind == Kind.VSCATTER:
            _, completion = self.gsu.scatter(
                slot, instr.base, instr.indices, instr.values, instr.mask,
                now, conditional=False, sync=instr.sync,
            )
            return completion, None
        if kind == Kind.VSCATTERCOND:
            out_mask, completion = self.gsu.scatter(
                slot, instr.base, instr.indices, instr.values, instr.mask,
                now, conditional=True,
            )
            return completion, out_mask
        if kind == Kind.BARRIER:
            return now + 1, None
        raise SimulationError(f"unhandled instruction kind {kind}")
