"""GLSC reservation tracking — the heart of the paper's proposal.

Section 3.3 proposes two hardware homes for GLSC entries:

1. **Tag extension** (:class:`TagGlscTracker`): each L1 line grows a
   {valid bit, SMT-thread id} pair — (1 + log2(threads)) bits per line.
   Reservations die with the line: eviction or invalidation clears
   them for free.

2. **Fully-associative buffer** (:class:`BufferGlscTracker`): a small
   per-core buffer of (line tag, thread id) entries, sized anywhere
   from one entry to SIMD-width x SMT-threads.  Overflow silently drops
   the oldest reservation — legal under the best-effort model.

Both implement the same protocol so the coherence controller and GSU
do not care which is configured (``MachineConfig.glsc_buffer_entries``).

Semantics shared by both (Sections 3.3-3.4):

* ``link`` records a reservation for (core, thread, line); a line holds
  at most one reservation per core, so linking steals nothing — the GSU
  *fails* the lane instead when another thread holds the line.
* ``check`` is true iff the entry is valid and the thread id matches.
* Any store to the line (including a successful scatter-conditional,
  which consumes the entry), any invalidation, and any eviction clears
  the entry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.mem.cache import L1Cache

__all__ = ["GlscTracker", "TagGlscTracker", "BufferGlscTracker", "make_tracker"]


class GlscTracker:
    """Protocol for GLSC reservation storage (see module docstring)."""

    def link(self, core_id: int, slot: int, line_addr: int) -> None:
        """Record a gather-link reservation."""
        raise NotImplementedError

    def holder(self, core_id: int, line_addr: int) -> Optional[int]:
        """SMT slot holding a reservation on this line, or None."""
        raise NotImplementedError

    def check(self, core_id: int, slot: int, line_addr: int) -> bool:
        """Whether ``slot`` still holds the reservation on this line."""
        return self.holder(core_id, line_addr) == slot

    def clear(self, core_id: int, line_addr: int) -> None:
        """Drop any reservation on this line at this core.

        Called on stores (normal and conditional), invalidations, and
        evictions.
        """
        raise NotImplementedError

    def take(self, core_id: int, line_addr: int) -> Optional[int]:
        """``holder`` + ``clear`` in one lookup (hot write path).

        Returns the slot that held the reservation, or None.  Not
        suitable for conditional consumption (``write_conditional``
        keeps the entry intact on a failed check).
        """
        holder = self.holder(core_id, line_addr)
        if holder is not None:
            self.clear(core_id, line_addr)
        return holder

    def live_entries(self) -> List[Tuple[int, int]]:
        """All live (core, line) reservations (failure-injection hook)."""
        raise NotImplementedError


class TagGlscTracker(GlscTracker):
    """GLSC entries in the L1 tag array (primary design, Section 3.3)."""

    def __init__(self, l1s: Dict[int, L1Cache]) -> None:
        self._l1s = l1s

    def link(self, core_id: int, slot: int, line_addr: int) -> None:
        line = self._l1s[core_id].lookup(line_addr)
        if line is None:
            # The GSU only links lines it has just brought into the L1;
            # a vanished line means the reservation is simply not taken,
            # which the best-effort model allows.
            return
        line.glsc_valid = True
        line.glsc_tid = slot

    def holder(self, core_id: int, line_addr: int) -> Optional[int]:
        line = self._l1s[core_id].lookup(line_addr)
        if line is None or not line.glsc_valid:
            return None
        return line.glsc_tid

    def clear(self, core_id: int, line_addr: int) -> None:
        line = self._l1s[core_id].lookup(line_addr)
        if line is not None:
            line.clear_glsc()

    def take(self, core_id: int, line_addr: int) -> Optional[int]:
        line = self._l1s[core_id].lookup(line_addr)
        if line is None or not line.glsc_valid:
            return None
        holder = line.glsc_tid
        line.clear_glsc()
        return holder

    def live_entries(self) -> List[Tuple[int, int]]:
        return [
            (core_id, line.line_addr)
            for core_id, l1 in self._l1s.items()
            for line in l1.resident_lines()
            if line.glsc_valid
        ]


class BufferGlscTracker(GlscTracker):
    """GLSC entries in a small fully-associative per-core buffer.

    The buffer replaces entries FIFO on overflow; a dropped entry just
    means that lane's scatter-conditional will fail and retry.
    """

    def __init__(self, n_cores: int, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(
                f"GLSC buffer capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.overflow_drops = 0
        self._buffers: Dict[int, "OrderedDict[int, int]"] = {
            core: OrderedDict() for core in range(n_cores)
        }

    def link(self, core_id: int, slot: int, line_addr: int) -> None:
        buffer = self._buffers[core_id]
        if line_addr in buffer:
            buffer.pop(line_addr)
        elif len(buffer) >= self.capacity:
            buffer.popitem(last=False)
            self.overflow_drops += 1
        buffer[line_addr] = slot

    def holder(self, core_id: int, line_addr: int) -> Optional[int]:
        return self._buffers[core_id].get(line_addr)

    def clear(self, core_id: int, line_addr: int) -> None:
        self._buffers[core_id].pop(line_addr, None)

    def take(self, core_id: int, line_addr: int) -> Optional[int]:
        return self._buffers[core_id].pop(line_addr, None)

    def live_entries(self) -> List[Tuple[int, int]]:
        return [
            (core_id, line_addr)
            for core_id, buffer in self._buffers.items()
            for line_addr in buffer
        ]

    def occupancy(self, core_id: int) -> int:
        """Live entries at one core (test hook)."""
        return len(self._buffers[core_id])


def make_tracker(
    l1s: Dict[int, L1Cache], n_cores: int, buffer_entries: int
) -> GlscTracker:
    """Build the tracker selected by ``MachineConfig.glsc_buffer_entries``."""
    if buffer_entries > 0:
        return BufferGlscTracker(n_cores, buffer_entries)
    return TagGlscTracker(l1s)
