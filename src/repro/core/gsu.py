"""Gather/scatter unit with GLSC support.

This unit implements the paper's four indexed SIMD memory instructions
(`vgather`, `vscatter`, `vgatherlink`, `vscattercond`) with the timing
model of Section 4.1:

* address generation produces **one element address per cycle**, so a
  SIMD-width instruction needs SIMD-width generation cycles; the
  generator is a per-core resource, so another SMT thread's
  gather/scatter queues behind it (GSU instruction buffer);
* requests from one instruction that fall on the **same cache line are
  combined** into a single L1 access (Section 2.2) — this is one of
  the paper's three GLSC benefit sources;
* element accesses **overlap**: each line request is dispatched as its
  address is generated, and the instruction completes at the latest
  element completion (plus result assembly), so two L1 misses overlap
  their latencies — the paper's second benefit source;
* the minimum latency works out to (4 + SIMD-width) cycles, matching
  Table 1.

Element-aliasing resolution (two lanes addressing the same *word*) is
well-defined for the GLSC instructions: exactly one lane wins.  The
paper allows the detection in either instruction; the config knob
``glsc_alias_in_gather`` selects the side, defaulting to
scatter-conditional time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.ports import L1Port
from repro.isa.masks import Mask
from repro.mem.coherence import CoherenceSystem
from repro.mem.image import MemoryImage
from repro.mem.layout import WORD_BYTES
from repro.obs.events import CacheHit, ElementOutcome, LineCombine
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats

__all__ = ["Gsu"]


#: One active lane of an indexed SIMD memory instruction, as the tuple
#: ``(lane, order, addr, line_addr)`` — plain tuples keep the per-lane
#: cost on the hot paths to one allocation.  ``order`` is the lane's
#: position in the address-generation sequence.
_LANE = 0
_ORDER = 1
_ADDR = 2
_LINE = 3
_LaneRequest = Tuple[int, int, int, int]


class Gsu:
    """Per-core gather/scatter unit."""

    def __init__(
        self,
        core_id: int,
        config: MachineConfig,
        coherence: CoherenceSystem,
        image: MemoryImage,
        stats: MachineStats,
        port: L1Port,
        obs=None,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.coherence = coherence
        self.image = image
        self.stats = stats
        self.port = port
        self.obs = obs
        self._gen_free = 0  # when the address generator is next available
        self._line_bytes = config.geometry.line_bytes
        self._assembly_cycles = config.gsu_assembly_cycles
        self._combine_lines = config.gsu_combine_lines
        self._hit_latency = config.l1_hit_latency
        self._alias_in_gather = config.glsc_alias_in_gather

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------

    def _lane_requests(
        self, base: int, indices: Sequence[int], mask: Mask
    ) -> Tuple[List[_LaneRequest], "Dict[int, List[_LaneRequest]]"]:
        """Active-lane requests plus their by-line grouping, in one pass.

        The grouping matches :meth:`_group_by_line` of the same list;
        callers that filter the requests (alias resolution) must
        regroup the survivors — but only when lanes were actually
        dropped, which the hot paths test for.
        """
        line_bytes = self._line_bytes
        requests = []
        groups: Dict[int, List[_LaneRequest]] = {}
        order = 0
        bits = mask._bits
        while bits:
            lane = (bits & -bits).bit_length() - 1  # lowest set bit
            bits &= bits - 1
            addr = base + indices[lane] * WORD_BYTES
            line_addr = addr - addr % line_bytes
            req = (lane, order, addr, line_addr)
            requests.append(req)
            group = groups.get(line_addr)
            if group is None:
                groups[line_addr] = [req]
            else:
                group.append(req)
            order += 1
        return requests, groups

    def _start_generation(self, now: int, n_active: int) -> int:
        """Claim the address generator; returns the start cycle."""
        free = self._gen_free
        start = now if now > free else free
        self._gen_free = start + (n_active if n_active > 1 else 1)
        return start

    def _group_by_line(
        self, requests: List[_LaneRequest]
    ) -> "Dict[int, List[_LaneRequest]]":
        groups: Dict[int, List[_LaneRequest]] = {}
        for req in requests:
            line_addr = req[_LINE]
            group = groups.get(line_addr)
            if group is None:
                groups[line_addr] = [req]
            else:
                group.append(req)
        return groups

    def _resolve_aliases(
        self, requests: List[_LaneRequest]
    ) -> Tuple[List[_LaneRequest], List[_LaneRequest]]:
        """Split requests into per-word winners and alias losers.

        The lowest-ordered lane for each distinct word address wins;
        every other lane aliasing that word fails with cause 'alias'.
        """
        seen = set()
        winners: List[_LaneRequest] = []
        losers: List[_LaneRequest] = []
        for req in requests:
            addr = req[_ADDR]
            if addr in seen:
                losers.append(req)
            else:
                seen.add(addr)
                winners.append(req)
        return winners, losers

    def _charge_combined_lanes(
        self,
        group: List[_LaneRequest],
        slot: int,
        op: str,
        start: int,
        sync: bool,
        completion: int,
    ) -> int:
        """Account for lanes beyond the first in a same-line group.

        With combining enabled they are free (and counted as saved
        atomic-op accesses when the instruction is a sync op); with
        combining disabled each costs its own port slot and L1 access.
        """
        extra = len(group) - 1
        if extra <= 0:
            return completion
        obs = self.obs
        if self._combine_lines:
            if sync:
                self.stats.l1_accesses_saved_by_combining += extra
            if obs is not None and obs.wants_glsc:
                obs.emit(
                    LineCombine(
                        start, self.core_id, slot, group[0][_LINE],
                        op, extra, sync,
                    )
                )
            return completion
        wants_cache = obs is not None and obs.wants_cache
        for req in group[1:]:
            acc_start = self.port.book(start + req[_ORDER] + 1)
            self.stats.l1_accesses += 1
            self.stats.l1_hits += 1
            if sync:
                self.stats.l1_sync_accesses += 1
            if wants_cache:
                obs.emit(
                    CacheHit(
                        acc_start, self.core_id, slot, req[_LINE],
                        "L1", "write" if op == "scatter" else "read",
                    )
                )
            completion = max(
                completion, acc_start + self._hit_latency
            )
        return completion

    # ------------------------------------------------------------------
    # gathers
    # ------------------------------------------------------------------

    def gather(
        self,
        slot: int,
        base: int,
        indices: Sequence[int],
        mask: Mask,
        now: int,
        linked: bool,
        sync: bool = False,
    ) -> Tuple[Tuple[Tuple, Mask], int]:
        """Execute ``vgather`` (linked=False) or ``vgatherlink``.

        Returns ``((values, out_mask), completion_cycle)``.  For plain
        gathers the out mask simply echoes the input mask.
        """
        width = mask.width
        requests, groups = self._lane_requests(base, indices, mask)
        start = self._start_generation(now, len(requests))
        values: List = [0] * width
        out_bits = 0
        sync = sync or linked
        obs = self.obs
        wants_glsc = obs is not None and obs.wants_glsc

        if linked:
            self.stats.gatherlink_count += 1
            self.stats.gatherlink_elements += len(requests)

        if linked and self._alias_in_gather:
            link_candidates, alias_losers = self._resolve_aliases(requests)
            if alias_losers:
                groups = self._group_by_line(link_candidates)
                for req in alias_losers:
                    self.stats.record_glsc_failure("alias")
                    if wants_glsc:
                        obs.emit(
                            ElementOutcome(
                                start, self.core_id, slot, req[_LINE],
                                "gatherlink", 1, False, "alias",
                            )
                        )

        # Pipeline floor: setup/assembly overhead plus one
        # address-generation cycle per active lane gives exactly the
        # (4 + SIMD-width) minimum of Table 1 when everything hits.
        completion = start + self._assembly_cycles + len(requests)
        book = self.port.book
        for line_addr, group in groups.items():
            first = group[0]
            acc_start = book(start + first[_ORDER] + 1)
            if linked:
                access, ok, cause = self.coherence.read_linked(
                    self.core_id, slot, first[_ADDR], acc_start
                )
                if ok:
                    for req in group:
                        out_bits |= 1 << req[_LANE]
                else:
                    self.stats.record_glsc_failure(cause, len(group))
                if wants_glsc:
                    obs.emit(
                        ElementOutcome(
                            acc_start, self.core_id, slot, line_addr,
                            "gatherlink", len(group), ok, cause,
                        )
                    )
            else:
                access = self.coherence.read(
                    self.core_id, slot, first[_ADDR], acc_start, sync=sync
                )
                for req in group:
                    out_bits |= 1 << req[_LANE]
            acc_end = acc_start + access.latency
            if acc_end > completion:
                completion = acc_end
            if len(group) > 1:
                completion = self._charge_combined_lanes(
                    group, slot, "gather", start, sync, completion
                )

        # Every active lane observes the gathered value, even alias
        # losers and link failures (their out-mask bit is simply clear).
        load_word = self.image.load_word
        for req in requests:
            values[req[_LANE]] = load_word(req[_ADDR])

        return (tuple(values), Mask._raw(out_bits, width)), completion

    # ------------------------------------------------------------------
    # scatters
    # ------------------------------------------------------------------

    def scatter(
        self,
        slot: int,
        base: int,
        indices: Sequence[int],
        values: Sequence,
        mask: Mask,
        now: int,
        conditional: bool,
        sync: bool = False,
    ) -> Tuple[Mask, int]:
        """Execute ``vscatter`` (conditional=False) or ``vscattercond``.

        Returns ``(out_mask, completion_cycle)``.  For plain scatters
        the out mask echoes the input mask and aliased lanes resolve
        highest-lane-wins (undefined in the paper's ISA).
        """
        width = mask.width
        requests, groups = self._lane_requests(base, indices, mask)
        start = self._start_generation(now, len(requests))
        out_bits = 0
        sync = sync or conditional
        completion = start + self._assembly_cycles + len(requests)
        obs = self.obs
        wants_glsc = obs is not None and obs.wants_glsc

        store_word = self.image.store_word
        book = self.port.book
        if conditional:
            self.stats.scattercond_count += 1
            self.stats.scattercond_elements += len(requests)
            if not self._alias_in_gather:
                survivors, losers = self._resolve_aliases(requests)
                if losers:
                    groups = self._group_by_line(survivors)
                    for req in losers:
                        self.stats.record_glsc_failure("alias")
                        if wants_glsc:
                            obs.emit(
                                ElementOutcome(
                                    start, self.core_id, slot, req[_LINE],
                                    "scattercond", 1, False, "alias",
                                )
                            )
            for line_addr, group in groups.items():
                first = group[0]
                acc_start = book(start + first[_ORDER] + 1)
                access, ok, cause = self.coherence.write_conditional(
                    self.core_id, slot, first[_ADDR], acc_start
                )
                if ok:
                    for req in group:
                        store_word(req[_ADDR], values[req[_LANE]])
                        out_bits |= 1 << req[_LANE]
                    self.stats.scattercond_successes += len(group)
                else:
                    self.stats.record_glsc_failure(cause, len(group))
                if wants_glsc:
                    obs.emit(
                        ElementOutcome(
                            acc_start, self.core_id, slot, line_addr,
                            "scattercond", len(group), ok, cause,
                        )
                    )
                acc_end = acc_start + access.latency
                if acc_end > completion:
                    completion = acc_end
                if len(group) > 1:
                    completion = self._charge_combined_lanes(
                        group, slot, "scatter", start, sync, completion
                    )
        else:
            for line_addr, group in groups.items():
                first = group[0]
                acc_start = book(start + first[_ORDER] + 1)
                access = self.coherence.write(
                    self.core_id, slot, first[_ADDR], acc_start, sync=sync
                )
                for req in group:
                    store_word(req[_ADDR], values[req[_LANE]])
                    out_bits |= 1 << req[_LANE]
                acc_end = acc_start + access.latency
                if acc_end > completion:
                    completion = acc_end
                if len(group) > 1:
                    completion = self._charge_combined_lanes(
                        group, slot, "scatter", start, sync, completion
                    )

        return Mask._raw(out_bits, width), completion
