"""Load/store unit.

Executes the scalar memory instructions and the *contiguous* SIMD
loads/stores (``vload``/``vstore``), which touch at most a couple of
cache lines and therefore never need the GSU's address-generation
pipeline.

Timing conventions:

* loads (and ``ll``) block the thread for the full access latency —
  the in-order core needs the value;
* stores retire through the write buffer (Figure 1 of the paper), so
  the thread only waits for the port slot, while the coherence state
  change is applied immediately;
* ``sc`` blocks for the full latency — its success flag is a result.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.ports import L1Port
from repro.isa.masks import Mask
from repro.mem.coherence import CoherenceSystem
from repro.mem.image import MemoryImage
from repro.mem.layout import WORD_BYTES
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats

__all__ = ["Lsu"]


class Lsu:
    """Per-core load/store unit."""

    def __init__(
        self,
        core_id: int,
        config: MachineConfig,
        coherence: CoherenceSystem,
        image: MemoryImage,
        stats: MachineStats,
        port: L1Port,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.coherence = coherence
        self.image = image
        self.stats = stats
        self.port = port
        self._line_bytes = config.geometry.line_bytes

    # -- scalar ------------------------------------------------------------

    def load(
        self, slot: int, addr: int, now: int, sync: bool = False
    ) -> Tuple[float, int]:
        """Scalar load; returns (value, completion cycle)."""
        start = self.port.book(now)
        access = self.coherence.read(
            self.core_id, slot, addr, start, sync=sync
        )
        value = self.image.load_word(addr)
        return value, start + access.latency

    def store(
        self, slot: int, addr: int, value, now: int, sync: bool = False
    ) -> int:
        """Scalar store; returns completion cycle (write-buffered)."""
        start = self.port.book(now)
        self.coherence.write(self.core_id, slot, addr, start, sync=sync)
        self.image.store_word(addr, value)
        return start + 1

    def ll(self, slot: int, addr: int, now: int) -> Tuple[float, int]:
        """Load-linked; returns (value, completion cycle)."""
        start = self.port.book(now)
        access = self.coherence.scalar_ll(self.core_id, slot, addr, start)
        value = self.image.load_word(addr)
        self.stats.ll_count += 1
        return value, start + access.latency

    def sc(self, slot: int, addr: int, value, now: int) -> Tuple[bool, int]:
        """Store-conditional; returns (success, completion cycle)."""
        start = self.port.book(now)
        access, success = self.coherence.scalar_sc(
            self.core_id, slot, addr, start
        )
        if success:
            self.image.store_word(addr, value)
        else:
            self.stats.sc_failures += 1
        self.stats.sc_count += 1
        return success, start + access.latency

    # -- contiguous SIMD -----------------------------------------------------

    def vload(
        self, slot: int, addr: int, width: int, now: int, sync: bool = False
    ) -> Tuple[Tuple[float, ...], int]:
        """Contiguous SIMD load; returns (values, completion cycle)."""
        nbytes = width * WORD_BYTES
        line_bytes = self._line_bytes
        completion = now
        line = addr - addr % line_bytes
        end = addr + nbytes - 1
        last_line = end - end % line_bytes
        offset = 0
        book = self.port.book
        read = self.coherence.read
        core_id = self.core_id
        while line <= last_line:
            start = book(now + offset)
            access = read(
                core_id, slot, line if line > addr else addr, start, sync=sync
            )
            acc_end = start + access.latency
            if acc_end > completion:
                completion = acc_end
            line += line_bytes
            offset += 1
        values = tuple(self.image.load_words(addr, width))
        return values, completion

    def vstore(
        self,
        slot: int,
        addr: int,
        values: Sequence,
        mask: Optional[Mask],
        now: int,
        sync: bool = False,
    ) -> int:
        """Contiguous SIMD store under mask; write-buffered."""
        line_bytes = self._line_bytes
        width = len(values)
        if mask is None:
            mask = Mask.all_ones(width)
        active = mask.active_lanes()
        if not active:
            return now + 1
        touched_lines = []
        for lane in active:
            lane_addr = addr + lane * WORD_BYTES
            line = lane_addr - lane_addr % line_bytes
            if line not in touched_lines:
                touched_lines.append(line)
        completion = now
        for offset, line in enumerate(touched_lines):
            start = self.port.book(now + offset)
            self.coherence.write(
                self.core_id, slot, line, start, sync=sync
            )
            completion = max(completion, start + 1)
        for lane in active:
            self.image.store_word(addr + lane * WORD_BYTES, values[lane])
        return completion
