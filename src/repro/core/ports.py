"""L1 cache port arbitration.

The paper's GSU shares the L1 cache ports with the LSU (Section 2.2),
and the L1 arbitrates between them with LSU priority (Section 4.1).
With the simulator's synchronous transactions, contention reduces to a
booking problem: each access occupies the port for one cycle, and an
access wanting the port at cycle *t* actually starts at the first free
cycle >= *t*.

LSU priority is approximated by booking order: the core issues LSU
instructions before resuming GSU address generation for the same cycle,
so LSU requests grab earlier slots.
"""

from __future__ import annotations

__all__ = ["L1Port"]


class L1Port:
    """Single-cycle-occupancy port shared by the LSU and GSU of a core."""

    __slots__ = ("_next_free", "busy_cycles")

    def __init__(self) -> None:
        self._next_free = 0
        self.busy_cycles = 0

    def book(self, earliest: int) -> int:
        """Reserve the port at the first free cycle >= ``earliest``."""
        free = self._next_free
        start = earliest if earliest > free else free
        self._next_free = start + 1
        self.busy_cycles += 1
        return start

    @property
    def next_free(self) -> int:
        """First cycle at which the port is currently unbooked."""
        return self._next_free
