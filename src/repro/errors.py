"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing genuine Python bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A machine or workload configuration is invalid or inconsistent."""


class MemoryError_(ReproError):
    """An access to the simulated memory image is invalid.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class AlignmentError(MemoryError_):
    """A simulated address violates an alignment requirement."""


class AllocationError(MemoryError_):
    """The simulated memory image cannot satisfy an allocation request."""


class IsaError(ReproError):
    """An instruction was constructed or executed with invalid operands."""


class ProgramError(ReproError):
    """A thread program misbehaved (e.g. yielded a non-instruction)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class DeadlockError(SimulationError):
    """No thread can make progress and the machine is not finished."""


class VerificationError(ReproError):
    """A kernel's simulated result does not match its oracle."""
