"""Command-line harness: regenerate any table or figure of the paper.

Usage::

    python -m repro.harness table1
    python -m repro.harness fig6 --kernels hip tms --datasets A
    python -m repro.harness all --jobs 4
    python -m repro.harness fig8 --no-cache

(Installed as the ``glsc-harness`` console script.)

Runs go through the :class:`~repro.sim.executor.Executor`:
``--jobs N`` fans independent simulations out over N worker
processes, and results persist in an on-disk store (default
``.glsc-cache/``; change with ``--cache-dir`` or disable with
``--no-cache``), so repeating an invocation re-simulates nothing.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.harness import experiments, report
from repro.kernels.registry import KERNEL_ORDER
from repro.sim.executor import Executor
from repro.sim.store import ResultStore, default_cache_dir

__all__ = ["main"]

EXPERIMENTS = ("table1", "table3", "fig5a", "fig5b", "fig6", "fig7",
               "fig8", "table4")
EXTENSIONS = ("width-sweep", "latency-sweep", "resilience")


def _render_extension(name: str, kernels, executor: Executor) -> str:
    from repro.harness import extensions as ext

    lines = []
    if name == "width-sweep":
        lines.append("Extension: Base/GLSC ratio across SIMD widths (4x4)")
        for kernel in kernels:
            row = ext.width_sweep(kernel, executor=executor)
            series = ", ".join(
                f"W{w}={r:.2f}" for w, r in sorted(row.ratios.items())
            )
            crossover = row.crossover_width()
            lines.append(
                f"  {kernel.upper():4s} A: {series}  "
                f"(crossover: {'W%d' % crossover if crossover else 'none'})"
            )
    elif name == "latency-sweep":
        lines.append(
            "Extension: Base/GLSC ratio vs main-memory latency (4x4, 4-wide)"
        )
        for kernel in kernels:
            row = ext.latency_sensitivity(kernel, executor=executor)
            series = ", ".join(
                f"{l}cyc={r:.2f}" for l, r in sorted(row.ratios.items())
            )
            lines.append(f"  {kernel.upper():4s} A: {series}")
    elif name == "resilience":
        lines.append(
            "Extension: GLSC under injected reservation loss (4x4, 4-wide)"
        )
        for kernel in kernels:
            for row in ext.failure_resilience(kernel, executor=executor):
                lines.append(
                    f"  {kernel.upper():4s} A loss={row.loss:4.2f}: "
                    f"cycles={row.cycles} failure={row.failure_rate:.3f} "
                    f"slowdown={row.slowdown_vs_clean:.2f}x"
                )
    return "\n".join(lines)


def _render(name: str, executor: Executor, kernels, datasets) -> str:
    if name == "table1":
        return report.render_table1(experiments.table1())
    if name == "table3":
        return report.render_table3(experiments.table3(kernels))
    if name == "fig5a":
        return report.render_fig5a(
            experiments.fig5a(kernels, datasets, executor=executor)
        )
    if name == "fig5b":
        return report.render_fig5b(
            experiments.fig5b(kernels, datasets, executor=executor)
        )
    if name == "fig6":
        return report.render_fig6(
            experiments.fig6(kernels, datasets, executor=executor)
        )
    if name == "fig7":
        return report.render_fig7(experiments.fig7(executor=executor))
    if name == "fig8":
        return report.render_fig8(
            experiments.fig8(kernels, datasets, executor=executor)
        )
    if name == "table4":
        return report.render_table4(
            experiments.table4(kernels, datasets, executor=executor)
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.harness`` / ``glsc-harness``."""
    parser = argparse.ArgumentParser(
        prog="glsc-harness",
        description=(
            "Regenerate the evaluation of 'Atomic Vector Operations on "
            "Chip Multiprocessors' (ISCA 2008) on the repro simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + EXTENSIONS + ("all",),
        help="which table/figure (or extension experiment) to regenerate",
    )
    parser.add_argument(
        "--kernels",
        nargs="+",
        default=list(KERNEL_ORDER),
        choices=list(KERNEL_ORDER),
        help="subset of benchmarks (default: all seven)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=["A", "B"],
        choices=["A", "B", "random", "tiny"],
        help="datasets to sweep (default: A B)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent simulations (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "result-store directory (default: $REPRO_CACHE_DIR or "
            f"{default_cache_dir()})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result store",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    store = None
    if not args.no_cache:
        store = ResultStore(args.cache_dir)
        if store.root.exists() and not store.root.is_dir():
            parser.error(
                f"--cache-dir {store.root} exists and is not a directory"
            )
    executor = Executor(jobs=args.jobs, store=store)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    started = time.time()
    for name in names:
        if name in EXTENSIONS:
            print(_render_extension(name, tuple(args.kernels), executor))
        else:
            print(_render(name, executor, tuple(args.kernels),
                          tuple(args.datasets)))
        print()
    elapsed = time.time() - started
    print(
        f"[{executor.simulations} simulations, "
        f"{executor.store_hits} from store, {elapsed:.1f}s]",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
