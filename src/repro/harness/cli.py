"""Command-line harness: regenerate any table or figure of the paper.

Usage::

    python -m repro.harness table1
    python -m repro.harness fig6 --kernels hip tms --datasets A
    python -m repro.harness all --jobs 4 --telemetry
    python -m repro.harness fig8 --no-cache

plus six non-experiment subcommands::

    python -m repro.harness trace hip --dataset A --out hip.trace.json
    python -m repro.harness profile tms --variant glsc
    python -m repro.harness contend tms --dataset tiny --json
    python -m repro.harness bench run --suite smoke --repeats 1
    python -m repro.harness cache stats
    python -m repro.harness serve --queue queue://.glsc-queue
    python -m repro.harness worker queue://.glsc-queue --exit-when-empty

``trace`` runs one kernel with the full event bus attached and writes
a Chrome trace-event JSON file — open it at https://ui.perfetto.dev to
see every thread's instructions and the memory-hierarchy events on a
cycle timeline.  ``profile`` runs one kernel with an instruction trace
and metrics aggregation and prints the latency/attribution report.
``contend`` runs one kernel with the contention observatory attached
and prints the who-kills-whom kill matrix, hot-line table, retry-storm
timeline, and retry-depth histogram (``--json`` for machines).
``bench`` is the regression observatory (see :mod:`repro.bench`):
``bench run`` archives a ``BENCH_<git-sha>.json`` + trajectory point,
``bench compare`` gates it against the previous baseline and the
committed fidelity-reference bands (exit 1 on a regression), ``bench
report`` renders the markdown verdict/trajectory report, and ``bench
reference`` distills fresh reference bands from an archived run.
``cache`` inspects and maintains the on-disk result store
(``ls`` / ``stats`` / ``prune``).  ``serve`` and ``worker`` are the
sweep service (:mod:`repro.service`): ``serve`` answers spec-digest
queries over HTTP from the store and enqueues misses; ``worker``
drains a ``queue://`` work queue into the shared store.

Shared flags are defined once as argparse *parent* parsers
(:func:`_cache_parent`, :func:`_jobs_parent`, :func:`_protocol_parent`,
:func:`_telemetry_parent`), so ``--jobs``/``--cache-dir``/
``--protocol``/``--telemetry`` are spelled, typed, and defaulted
identically across every verb that accepts them.

(Installed as the ``glsc-harness`` console script.)

Runs go through the :class:`~repro.sim.executor.Executor`:
``--jobs N`` fans independent simulations out over N worker
processes, and results persist in an on-disk store (default
``.glsc-cache/``; change with ``--cache-dir`` or disable with
``--no-cache``), so repeating an invocation re-simulates nothing.
``--telemetry`` prints a per-spec table of wall time, simulated
cycles/second, worker pid, and result source after the experiments.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.harness import experiments, report
from repro.kernels.registry import KERNEL_ORDER
from repro.mem.protocol import DEFAULT_PROTOCOL, protocol_names
from repro.sim.executor import Executor, RunSpec
from repro.sim.store import ResultStore, default_cache_dir

__all__ = ["main"]

EXPERIMENTS = ("table1", "table3", "fig5a", "fig5b", "fig6", "fig7",
               "fig8", "table4")
EXTENSIONS = ("width-sweep", "latency-sweep", "resilience")
DATASETS = ("A", "B", "random", "tiny")
VARIANTS = ("base", "glsc")


# ---------------------------------------------------------------------------
# Shared parent parsers: one definition per cross-cutting flag, so
# every verb spells, types, and defaults it identically.
# ---------------------------------------------------------------------------

def _cache_parent() -> argparse.ArgumentParser:
    """``--cache-dir`` exactly as every store-touching verb takes it."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--cache-dir", type=Path, default=None, metavar="PATH",
        help=(
            "result-store directory (default: $REPRO_CACHE_DIR or "
            f"{default_cache_dir()})"
        ),
    )
    return parent


def _jobs_parent() -> argparse.ArgumentParser:
    """``--jobs`` exactly as every executor-running verb takes it."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent simulations (default: 1)",
    )
    return parent


def _protocol_parent() -> argparse.ArgumentParser:
    """``--protocol`` exactly as every simulating verb takes it."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--protocol", default=None, choices=list(protocol_names()),
        help=(
            "coherence protocol the memory hierarchy runs "
            f"(default: {DEFAULT_PROTOCOL})"
        ),
    )
    return parent


def _telemetry_parent() -> argparse.ArgumentParser:
    """``--telemetry`` exactly as every sweep-running verb takes it."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--telemetry", action="store_true",
        help="print per-spec wall time / cycles-per-second / source "
             "after the run",
    )
    return parent


def _render_extension(name: str, kernels, executor: Executor) -> str:
    from repro.harness import extensions as ext

    lines = []
    if name == "width-sweep":
        lines.append("Extension: Base/GLSC ratio across SIMD widths (4x4)")
        for kernel in kernels:
            row = ext.width_sweep(kernel, executor=executor)
            series = ", ".join(
                f"W{w}={r:.2f}" for w, r in sorted(row.ratios.items())
            )
            crossover = row.crossover_width()
            lines.append(
                f"  {kernel.upper():4s} A: {series}  "
                f"(crossover: {'W%d' % crossover if crossover else 'none'})"
            )
    elif name == "latency-sweep":
        lines.append(
            "Extension: Base/GLSC ratio vs main-memory latency (4x4, 4-wide)"
        )
        for kernel in kernels:
            row = ext.latency_sensitivity(kernel, executor=executor)
            series = ", ".join(
                f"{l}cyc={r:.2f}" for l, r in sorted(row.ratios.items())
            )
            lines.append(f"  {kernel.upper():4s} A: {series}")
    elif name == "resilience":
        lines.append(
            "Extension: GLSC under injected reservation loss (4x4, 4-wide)"
        )
        for kernel in kernels:
            for row in ext.failure_resilience(kernel, executor=executor):
                lines.append(
                    f"  {kernel.upper():4s} A loss={row.loss:4.2f}: "
                    f"cycles={row.cycles} failure={row.failure_rate:.3f} "
                    f"slowdown={row.slowdown_vs_clean:.2f}x"
                )
    return "\n".join(lines)


def _render(name: str, executor: Executor, kernels, datasets) -> str:
    if name == "table1":
        return report.render_table1(experiments.table1())
    if name == "table3":
        return report.render_table3(experiments.table3(kernels))
    if name == "fig5a":
        return report.render_fig5a(
            experiments.fig5a(kernels, datasets, executor=executor)
        )
    if name == "fig5b":
        return report.render_fig5b(
            experiments.fig5b(kernels, datasets, executor=executor)
        )
    if name == "fig6":
        return report.render_fig6(
            experiments.fig6(kernels, datasets, executor=executor)
        )
    if name == "fig7":
        return report.render_fig7(experiments.fig7(executor=executor))
    if name == "fig8":
        return report.render_fig8(
            experiments.fig8(kernels, datasets, executor=executor)
        )
    if name == "table4":
        return report.render_table4(
            experiments.table4(kernels, datasets, executor=executor)
        )
    raise ValueError(f"unknown experiment {name!r}")


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared kernel-spec flags of the ``trace``/``profile`` subcommands."""
    parser.add_argument(
        "kernel",
        help=(
            "kernel to run: one of "
            + ", ".join(KERNEL_ORDER)
            + ", or micro:<scenario> for a Section 5.2 microbenchmark"
        ),
    )
    parser.add_argument("--dataset", default="A", choices=list(DATASETS))
    parser.add_argument(
        "--topology", default="4x4", metavar="CxT",
        help="cores x SMT threads (default: 4x4)",
    )
    parser.add_argument("--width", type=int, default=4, metavar="W",
                        help="SIMD width (default: 4)")
    parser.add_argument("--variant", default="glsc", choices=list(VARIANTS))
    parser.add_argument("--warm", action="store_true",
                        help="warm the caches before measuring")


def _protocol_overrides(protocol: Optional[str]):
    """A non-default ``--protocol`` as a config-override dict (or None).

    The default protocol is deliberately *not* spelled out as an
    override: ``--protocol msi`` must digest (and cache) identically
    to not passing the flag at all.
    """
    if protocol is None or protocol == DEFAULT_PROTOCOL:
        return None
    return {"protocol": protocol}


def _spec_from_args(args: argparse.Namespace) -> RunSpec:
    overrides = _protocol_overrides(args.protocol)
    if args.kernel.startswith("micro:"):
        return RunSpec.micro(
            args.kernel.split(":", 1)[1],
            topology=args.topology,
            simd_width=args.width,
            variant=args.variant,
            overrides=overrides,
        )
    return RunSpec(
        kernel=args.kernel,
        dataset=args.dataset,
        topology=args.topology,
        simd_width=args.width,
        variant=args.variant,
        overrides=overrides or (),
        warm=args.warm,
    )


def _main_trace(argv: List[str]) -> int:
    """``trace``: one observed run, exported as Chrome trace-event JSON."""
    from repro.obs import EventBus, JsonlSink, MetricsSink, PerfettoSink

    parser = argparse.ArgumentParser(
        prog="glsc-harness trace",
        parents=[_protocol_parent()],
        description=(
            "Run one kernel with the observability bus attached and "
            "write a Perfetto/Chrome trace-event timeline."
        ),
    )
    _add_spec_arguments(parser)
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="trace-event JSON path (default: <kernel>-<variant>."
             "trace.json)",
    )
    parser.add_argument(
        "--include-hits", action="store_true",
        help="also draw an instant per L1/L2 hit (large traces)",
    )
    parser.add_argument(
        "--jsonl", type=Path, default=None, metavar="FILE",
        help="additionally dump the raw event stream as JSONL",
    )
    parser.add_argument(
        "--jsonl-limit", type=int, default=None, metavar="N",
        help="cap the JSONL dump at N events",
    )
    parser.add_argument(
        "--telemetry-out", type=Path, default=None, metavar="FILE",
        help="write the run's telemetry record as JSON",
    )
    args = parser.parse_args(argv)
    spec = _spec_from_args(args)
    out = args.out or Path(
        f"{spec.kernel.replace(':', '-')}-{spec.variant}.trace.json"
    )

    bus = EventBus()
    perfetto = bus.attach(PerfettoSink(include_hits=args.include_hits))
    metrics = bus.attach(MetricsSink())
    jsonl = None
    if args.jsonl is not None:
        jsonl = bus.attach(JsonlSink(str(args.jsonl), limit=args.jsonl_limit))
    executor = Executor()
    stats = executor.run(spec, obs=bus)
    bus.close()

    perfetto.write(str(out))
    telemetry = executor.telemetry[-1]
    print(f"{spec.label()}: {stats.cycles} cycles, "
          f"{len(perfetto)} trace events -> {out}")
    if jsonl is not None:
        print(f"{jsonl.summary()} -> {args.jsonl}")
    print(metrics.render())
    print(f"[{telemetry.wall_time_s:.2f}s wall, "
          f"{telemetry.cycles_per_second:.0f} cyc/s]")
    print(f"open {out} at https://ui.perfetto.dev (or "
          f"chrome://tracing) to view the timeline")
    if args.telemetry_out is not None:
        with open(args.telemetry_out, "w", encoding="utf-8") as fh:
            json.dump(telemetry.to_dict(), fh, indent=2, sort_keys=True)
        print(f"telemetry -> {args.telemetry_out}")
    return 0


def _main_contend(argv: List[str]) -> int:
    """``contend``: one observed run, reported as contention attribution."""
    from repro.obs import ContentionSink, EventBus
    from repro.sim.executor import execute_spec

    parser = argparse.ArgumentParser(
        prog="glsc-harness contend",
        parents=[_protocol_parent()],
        description=(
            "Run one kernel with the contention observatory attached "
            "and print the who-kills-whom report: thread x thread kill "
            "matrix, hot-line table (symbolized through the kernel's "
            "named memory regions), retry-storm timeline, and retry-"
            "depth histogram."
        ),
    )
    _add_spec_arguments(parser)
    parser.add_argument(
        "--json", action="store_true",
        help="print the full summary as JSON instead of markdown",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows in the hot-line table (default: 10)",
    )
    parser.add_argument(
        "--window", type=int, default=2048, metavar="CYC",
        help="timeline window width in cycles (default: 2048)",
    )
    parser.add_argument(
        "--storm-threshold", type=int, default=64, metavar="N",
        help="failed lanes per window that flag a retry storm "
             "(default: 64)",
    )
    args = parser.parse_args(argv)
    spec = _spec_from_args(args)
    config = spec.config()

    bus = EventBus()
    sink = bus.attach(ContentionSink(
        n_cores=config.n_cores,
        window=args.window,
        top_k=args.top,
        storm_threshold=args.storm_threshold,
    ))
    captured = {}

    def _capture(machine) -> None:
        captured["regions"] = machine.image.regions

    stats = execute_spec(spec, obs=bus, on_machine=_capture)
    bus.close()
    summary = sink.summary(regions=captured.get("regions"), stats=stats)

    if args.json:
        doc = summary.to_dict()
        doc["spec"] = spec.to_dict()
        doc["cycles"] = stats.cycles
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(f"{spec.label()}: {stats.cycles} cycles")
        print()
        print(summary.render())
    return 0


def _main_profile(argv: List[str]) -> int:
    """``profile``: one observed run, reported as text tables."""
    from repro.obs import EventBus, MetricsSink
    from repro.sim.trace import InstructionTrace

    parser = argparse.ArgumentParser(
        prog="glsc-harness profile",
        parents=[_protocol_parent()],
        description=(
            "Run one kernel with instruction tracing + metrics "
            "aggregation and print the latency/attribution report."
        ),
    )
    _add_spec_arguments(parser)
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows in the per-kind latency table (default: 10)",
    )
    parser.add_argument(
        "--limit", type=int, default=200_000, metavar="N",
        help="cap on retained instruction events (default: 200000)",
    )
    args = parser.parse_args(argv)
    spec = _spec_from_args(args)

    bus = EventBus()
    trace = bus.attach(InstructionTrace(limit=args.limit))
    metrics = bus.attach(MetricsSink())
    executor = Executor()
    stats = executor.run(spec, obs=bus)
    bus.close()

    telemetry = executor.telemetry[-1]
    print(f"{spec.label()}: {stats.cycles} cycles, "
          f"{stats.total_instructions} instructions")
    print()
    print(trace.render(top=args.top))
    if trace.dropped:
        print(f"({trace.dropped} instruction events beyond --limit "
              f"dropped; the table above is still exact)")
    print()
    print(metrics.render())
    print(f"sync share of occupancy: {trace.sync_share():.3f}")
    print(f"[{telemetry.wall_time_s:.2f}s wall, "
          f"{telemetry.cycles_per_second:.0f} cyc/s]")
    return 0


def _main_bench(argv: List[str]) -> int:
    """``bench``: the regression observatory (run/compare/report/reference)."""
    from repro.bench import (
        BenchRunner,
        Comparator,
        append_trajectory,
        current_git_sha,
        get_suite,
        latest_bench_file,
        load_bench,
        load_trajectory,
        render_markdown,
        trajectory_entry,
        write_bench,
    )
    from repro.bench.baseline import (
        REFERENCE_NAME,
        TRAJECTORY_NAME,
        load_reference,
        previous_entry,
    )
    from repro.bench.fidelity import distill_reference
    from repro.bench.suite import SUITE_NAMES

    parser = argparse.ArgumentParser(
        prog="glsc-harness bench",
        description=(
            "Performance & fidelity regression observatory: archive a "
            "bench run, gate it against the previous baseline and the "
            "paper-shape reference bands, and render trend reports."
        ),
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    def _add_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dir", type=Path, default=Path("."), metavar="PATH",
            help="artifact directory holding BENCH_*.json, the "
                 "trajectory, and the reference (default: .)",
        )

    p_run = sub.add_parser(
        "run", help="execute a suite and archive it",
        parents=[_protocol_parent()],
        description=(
            "Execute a bench suite and archive it.  A non-default "
            "--protocol renames the suite to <suite>@<protocol> so "
            "baselines never mix protocols."
        ),
    )
    _add_dir(p_run)
    p_run.add_argument("--suite", default="full", choices=list(SUITE_NAMES))
    p_run.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="fresh simulations per point (default: 3)",
    )
    p_run.add_argument(
        "--no-trajectory", action="store_true",
        help="write the BENCH file only; do not append the trajectory",
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="run under cProfile; writes profile_<sha>.pstats next to "
             "the BENCH file and prints the top 20 functions by "
             "cumulative time",
    )
    p_run.add_argument(
        "--no-phases", action="store_true",
        help="skip the per-point gather/compute/retry/stall "
             "attribution pass (halves bench wall time)",
    )
    p_run.add_argument(
        "--backend", default="solo", choices=("solo", "batch"),
        help="how timed repeats simulate: one machine at a time "
             "(solo, default) or many per process through the "
             "batched backend (batch)",
    )
    p_run.add_argument(
        "--batch-size", type=int, default=16, metavar="N",
        help="specs per batch with --backend batch (default: 16)",
    )

    for verb, help_text in (
        ("compare", "gate the newest run; exit 1 on a regression"),
        ("report", "render the markdown verdict + trajectory report"),
    ):
        p = sub.add_parser(verb, help=help_text)
        _add_dir(p)
        p.add_argument(
            "--bench", type=Path, default=None, metavar="FILE",
            help="bench document (default: newest BENCH_*.json in --dir)",
        )
        p.add_argument(
            "--reference", type=Path, default=None, metavar="FILE",
            help=f"fidelity-reference bands (default: --dir/{REFERENCE_NAME})",
        )
        p.add_argument(
            "--skip-perf", action="store_true",
            help="skip wall-time verdicts (baseline from another machine)",
        )
        p.add_argument(
            "--skip-cycles", action="store_true",
            help="skip deterministic cycle-drift verdicts",
        )
        p.add_argument(
            "--rel-tol", type=float, default=0.15, metavar="F",
            help="relative wall-time tolerance (default: 0.15)",
        )
        p.add_argument(
            "--gate-throughput", action="store_true",
            help="escalate the (normally informational) aggregate "
                 "sim_khz and cycles-per-instruction checks to "
                 "failing verdicts at --rel-tol",
        )
        if verb == "report":
            p.add_argument(
                "--out", type=Path, default=None, metavar="FILE",
                help="write markdown here instead of stdout",
            )
            p.add_argument(
                "--html", action="store_true",
                help="render the trajectory dashboard as static HTML "
                     "instead of the markdown report (--out defaults "
                     "to --dir/bench_dashboard.html)",
            )

    p_ref = sub.add_parser(
        "reference", help="distill fresh fidelity bands from a bench run"
    )
    _add_dir(p_ref)
    p_ref.add_argument("--bench", type=Path, default=None, metavar="FILE")
    p_ref.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help=f"output path (default: --dir/{REFERENCE_NAME})",
    )
    p_ref.add_argument(
        "--rel-band", type=float, default=0.25, metavar="F",
        help="half-width of the emitted bands, relative (default: 0.25)",
    )
    p_ref.add_argument(
        "--fresh", action="store_true",
        help="overwrite instead of merging into an existing reference "
             "(merging keeps bands for points this run did not cover, "
             "e.g. the smoke suite's)",
    )

    args = parser.parse_args(argv)
    trajectory_path = args.dir / TRAJECTORY_NAME

    if args.verb == "run":
        suite = get_suite(args.suite, protocol=args.protocol)
        sha = current_git_sha(args.dir)
        backend_note = (
            f", batched x{args.batch_size}"
            if args.backend == "batch" else ""
        )
        print(
            f"bench run: suite {suite.name} ({len(suite)} points), "
            f"{args.repeats} repeat(s), sha {sha}{backend_note}"
        )
        runner = BenchRunner(
            suite, repeats=args.repeats, git_sha=sha,
            progress=lambda msg: print(f"  {msg}"),
            phases=not args.no_phases,
            backend=args.backend, batch_size=args.batch_size,
        )
        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            doc = runner.run()
            profiler.disable()
        else:
            doc = runner.run()
        path = write_bench(doc, args.dir)
        entry = trajectory_entry(doc)
        headline = entry["headline"]
        if not args.no_trajectory:
            append_trajectory(doc, trajectory_path)
        print(
            f"archived {path} "
            f"({headline['points']} points, "
            f"{headline['total_wall_s']:.2f}s median wall, "
            f"{headline['sim_khz']:.1f} sim_khz, "
            f"{headline['instr_per_sec']:.0f} instr/s, "
            f"mean Base/GLSC {headline['mean_speedup']:.3f})"
            + ("" if args.no_trajectory else f"; trajectory -> {trajectory_path}")
        )
        if args.profile:
            pstats_path = args.dir / f"profile_{sha}.pstats"
            profiler.dump_stats(pstats_path)
            print(f"profile -> {pstats_path}")
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(20)
        return 0

    # compare / report / reference share the bench-document lookup.
    bench_path = args.bench or latest_bench_file(args.dir)
    if bench_path is None:
        print(
            f"no BENCH_*.json under {args.dir}; run `bench run` first",
            file=sys.stderr,
        )
        return 2
    doc = load_bench(bench_path)

    if args.verb == "reference":
        out = args.out or (args.dir / REFERENCE_NAME)
        reference = distill_reference(doc, rel_band=args.rel_band)
        existing = None if args.fresh else load_reference(out)
        if existing is not None:
            merged = dict(existing)
            merged["source"] = reference["source"]
            merged["speedup_bands"] = dict(
                existing.get("speedup_bands", {}),
                **reference["speedup_bands"],
            )
            merged["failure_mix"] = dict(
                existing.get("failure_mix", {}),
                **reference["failure_mix"],
            )
            reference = merged
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(reference, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(
            f"reference bands from {bench_path.name} "
            f"{'->' if existing is None else 'merged into'} {out} "
            f"({len(reference['speedup_bands'])} speedup bands, "
            f"{len(reference['failure_mix'])} failure-mix bands)"
        )
        return 0

    trajectory = load_trajectory(trajectory_path)

    if args.verb == "report" and args.html:
        from repro.bench.dashboard import render_dashboard

        out = args.out or (args.dir / "bench_dashboard.html")
        html_text = render_dashboard(
            trajectory, suite=doc.get("suite")
        )
        out.write_text(html_text, encoding="utf-8")
        print(
            f"dashboard -> {out} "
            f"({len(trajectory)} trajectory entries)"
        )
        return 0

    baseline = previous_entry(
        trajectory, doc.get("suite", "?"), exclude_sha=doc.get("git_sha")
    )
    reference = load_reference(args.reference or (args.dir / REFERENCE_NAME))
    comparator = Comparator(
        rel_tol=args.rel_tol,
        check_perf=not args.skip_perf,
        check_cycles=not args.skip_cycles,
        gate_throughput=args.gate_throughput,
    )
    comparison = comparator.compare(doc, baseline, reference)

    if args.verb == "report":
        markdown = render_markdown(comparison, trajectory, doc=doc)
        if args.out is not None:
            args.out.write_text(markdown, encoding="utf-8")
            print(f"report -> {args.out}")
        else:
            print(markdown)
        return 0

    print(comparison.render())
    if baseline is None and reference is None:
        print(
            "warning: neither a baseline trajectory entry nor a "
            "reference file was found; nothing was actually gated",
            file=sys.stderr,
        )
    return 1 if comparison.failed else 0


def _main_cache(argv: List[str]) -> int:
    """``cache``: inspect and maintain the on-disk result store."""
    parser = argparse.ArgumentParser(
        prog="glsc-harness cache",
        description=(
            "Inspect/maintain the persistent result store: list "
            "entries, aggregate stats (incl. hit/miss totals), and "
            "prune entries stranded by config-schema changes."
        ),
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    for verb, help_text in (
        ("ls", "list stored results"),
        ("stats", "aggregate store statistics"),
        ("prune", "delete stale/corrupt entries"),
    ):
        p = sub.add_parser(verb, help=help_text,
                           parents=[_cache_parent()])
        if verb == "ls":
            p.add_argument(
                "--kernel", default=None, metavar="NAME",
                help="only entries of this kernel",
            )
        if verb == "prune":
            p.add_argument(
                "--dry-run", action="store_true",
                help="report what would be removed without deleting",
            )
    args = parser.parse_args(argv)
    store = ResultStore(args.cache_dir)

    if args.verb == "ls":
        count = 0
        print(f"{'digest':12s}  {'spec':44s} {'cycles':>10s}  created")
        for digest, record in store.records():
            spec_dict = record.get("spec") or {}
            if args.kernel and spec_dict.get("kernel") != args.kernel:
                continue
            try:
                label = RunSpec.from_dict(spec_dict).label() if spec_dict \
                    else "(no spec recorded)"
            except Exception:
                label = "(unreadable spec)"
            cycles = (record.get("stats") or {}).get("cycles", 0)
            created = time.strftime(
                "%Y-%m-%d %H:%M",
                time.localtime(record.get("created", 0)),
            )
            print(f"{digest[:12]:12s}  {label[:44]:44s} "
                  f"{cycles:>10d}  {created}")
            count += 1
        print(f"{count} entries in {store.root}")
        return 0

    if args.verb == "stats":
        info = store.describe()
        print(f"store: {info['root']}")
        print(
            f"  {info['entries']} entries, "
            f"{info['size_bytes'] / 1024:.1f} KiB, "
            f"{info['stale']} stale"
        )
        print(
            f"  served {info['hits']} hits / {info['misses']} misses "
            "(persistent tally)"
        )
        print(
            f"  {info['simulated_wall_s']:.2f}s of simulation represented "
            "(sum of record provenance wall times)"
        )
        if info["by_kernel"]:
            per = ", ".join(
                f"{k}={n}" for k, n in sorted(info["by_kernel"].items())
            )
            print(f"  by kernel: {per}")
        return 0

    # prune
    stale = store.prune(dry_run=args.dry_run)
    action = "would remove" if args.dry_run else "removed"
    print(f"{action} {len(stale)} stale entries from {store.root}")
    for digest in stale:
        print(f"  {digest[:12]}")
    return 0


def _main_serve(argv: List[str]) -> int:
    """``serve``: the asyncio HTTP frontend over the result store."""
    import asyncio

    from repro.obs.log import StructLogger
    from repro.service.queue import DEFAULT_LEASE_S, WorkQueue
    from repro.service.server import SweepServer

    parser = argparse.ArgumentParser(
        prog="glsc-harness serve",
        parents=[_cache_parent()],
        description=(
            "Serve spec-digest queries from the result store over "
            "HTTP, enqueue misses onto a queue:// work queue for "
            "`worker` processes to drain, and stream batched results."
        ),
    )
    parser.add_argument(
        "--queue", default=None, metavar="URL",
        help="work queue for misses (queue://<dir>); without it the "
             "server answers from the store only",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_S, metavar="S",
        help=f"queue lease seconds before a claimed task is requeued "
             f"(default: {DEFAULT_LEASE_S:.0f})",
    )
    parser.add_argument(
        "--batch", type=int, default=256, metavar="N",
        help="records per flushed chunk when streaming results "
             "(default: 256)",
    )
    parser.add_argument(
        "--log", type=Path, default=None, metavar="FILE",
        help="append timestamped server log lines here (default: stderr)",
    )
    parser.add_argument(
        "--log-format", default="text", choices=("text", "json"),
        help="log line format: human text or structured JSON "
             "(default: text)",
    )
    args = parser.parse_args(argv)

    store = ResultStore(args.cache_dir)
    stream = open(args.log, "a", encoding="utf-8") if args.log else None
    logger = StructLogger(
        stream=stream or sys.stderr, component="server",
        fmt=args.log_format,
    )
    queue = (
        WorkQueue.from_url(args.queue, lease_s=args.lease, logger=logger)
        if args.queue else None
    )
    server = SweepServer(
        store, queue, host=args.host, port=args.port, batch=args.batch,
        log=logger,
    )
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        pass
    finally:
        if stream is not None:
            stream.close()
    return 0


def _main_worker(argv: List[str]) -> int:
    """``worker``: drain a queue:// work queue into the shared store."""
    from repro.obs.log import StructLogger
    from repro.service.queue import DEFAULT_LEASE_S, WorkQueue
    from repro.service.worker import worker_loop

    parser = argparse.ArgumentParser(
        prog="glsc-harness worker",
        parents=[_cache_parent()],
        description=(
            "Claim tasks from a queue:// work queue, simulate them, "
            "and persist the results to the shared result store.  Run "
            "N of these (any host sharing the filesystem) to drain "
            "one sweep; expired leases are requeued automatically."
        ),
    )
    parser.add_argument(
        "queue", metavar="URL", help="the work queue (queue://<dir>)"
    )
    parser.add_argument(
        "--worker-id", default=None, metavar="NAME",
        help="identity recorded in lease stamps and result provenance "
             "(default: <host>-<pid>)",
    )
    parser.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_S, metavar="S",
        help=f"lease seconds on claimed tasks (default: "
             f"{DEFAULT_LEASE_S:.0f})",
    )
    parser.add_argument(
        "--poll", type=float, default=0.2, metavar="S",
        help="sleep between claim attempts when idle (default: 0.2)",
    )
    parser.add_argument(
        "--exit-when-empty", action="store_true",
        help="return once the queue has no pending or leased tasks",
    )
    parser.add_argument(
        "--idle-exit", type=float, default=None, metavar="S",
        help="return after this many seconds without claiming a task",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="return after executing N tasks",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-task log lines",
    )
    parser.add_argument(
        "--log-format", default="text", choices=("text", "json"),
        help="log line format: human text or structured JSON "
             "(default: text)",
    )
    args = parser.parse_args(argv)

    logger = (
        None if args.quiet
        else StructLogger(
            stream=sys.stderr, component="worker", fmt=args.log_format
        )
    )
    queue = WorkQueue.from_url(
        args.queue, lease_s=args.lease, logger=logger
    )
    store = ResultStore(args.cache_dir)
    summary = worker_loop(
        queue,
        store,
        worker_id=args.worker_id,
        poll_s=args.poll,
        exit_when_empty=args.exit_when_empty,
        idle_exit_s=args.idle_exit,
        max_tasks=args.max_tasks,
        log=logger,
    )
    print(
        f"worker {summary.worker_id}: {summary.executed} executed, "
        f"{summary.skipped} skipped, {summary.failed} failed, "
        f"{summary.requeued} requeued in {summary.wall_time_s:.2f}s"
    )
    return 1 if summary.failed else 0


def _main_status(argv: List[str]) -> int:
    """``status``: one scrape of a running service's telemetry."""
    from repro.service.client import ServiceError, SweepClient

    parser = argparse.ArgumentParser(
        prog="glsc-harness status",
        description=(
            "Scrape a running `serve` instance's /v1/metrics and "
            "render a live service summary: queue depths, task "
            "counters, per-worker heartbeats, HTTP traffic."
        ),
    )
    parser.add_argument(
        "url", nargs="?", default="http://127.0.0.1:8787",
        help="service base URL (default: http://127.0.0.1:8787)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw JSON metrics document instead of the table",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="ask the server to cross-check queue depths against a "
             "directory scan",
    )
    args = parser.parse_args(argv)

    client = SweepClient(args.url)
    path = "/v1/metrics?format=json" + ("&verify=1" if args.verify else "")
    try:
        doc = client._request_json("GET", path)[1]
    except ServiceError as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 2
    verify = doc.get("queue_verify")
    verify_failed = bool(
        args.verify and verify is not None and not verify.get("match")
    )
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 1 if verify_failed else 0

    metrics = doc.get("metrics", {})

    def counter_total(name: str) -> float:
        samples = (metrics.get(name) or {}).get("samples", [])
        return sum(s.get("value", 0.0) for s in samples)

    queue = doc.get("queue")
    if queue:
        print(
            f"queue {queue.get('root', '?')}: "
            f"{queue.get('pending', 0)} pending, "
            f"{queue.get('leased', 0)} leased "
            f"(lease {queue.get('lease_s', 0.0):.0f}s)"
        )
    tasks = metrics.get("queue_tasks_total") or {}
    ops = {
        (s.get("labels") or {}).get("op", "?"): s.get("value", 0)
        for s in tasks.get("samples", [])
    }
    if ops:
        print(
            "tasks: " + ", ".join(
                f"{int(ops[op])} {op}" for op in sorted(ops)
            )
        )
    print(
        f"store: {int(counter_total('store_puts_total'))} puts; "
        f"http: {doc.get('requests', 0)} requests, "
        f"{int(counter_total('records_streamed_total'))} records streamed"
    )
    workers = doc.get("workers", [])
    if workers:
        print(f"workers ({len(workers)} heartbeat(s)):")
        for beat in workers:
            print(
                f"  {beat.get('worker_id', '?')}: "
                f"{beat.get('claims', 0)} claims, "
                f"{beat.get('executed', 0)} executed, "
                f"{beat.get('skipped', 0)} skipped, "
                f"{beat.get('failed', 0)} failed, "
                f"{beat.get('sim_wall_s', 0.0):.2f}s simulating "
                f"(heartbeat {beat.get('age_s', 0.0):.1f}s ago)"
            )
        lanes = sum(
            beat.get("contention_failed_lanes", 0) for beat in workers
        )
        sc_failed = sum(
            beat.get("contention_sc_failures", 0) for beat in workers
        )
        if lanes or sc_failed:
            print(
                f"contention: {int(lanes)} failed GLSC lanes, "
                f"{int(sc_failed)} sc failures across workers"
            )
    if verify is not None:
        verdict = "match" if verify.get("match") else "MISMATCH"
        print(
            f"depth cross-check: {verdict} "
            f"(scan {verify.get('scan')}, tracked {verify.get('tracked')})"
        )
    return 1 if verify_failed else 0


def _main_sweep_trace(argv: List[str]) -> int:
    """``sweep-trace``: export a drain's spans as one Perfetto trace."""
    from repro.obs.perfetto import SweepTraceExporter
    from repro.obs.sweeptrace import collect_spans
    from repro.service.queue import parse_queue_url

    parser = argparse.ArgumentParser(
        prog="glsc-harness sweep-trace",
        description=(
            "Merge the span sidecars a traced sweep left under a "
            "queue:// directory (server submit/stream, worker "
            "claim/simulate/save) into one Chrome trace-event file — "
            "open it in https://ui.perfetto.dev to see the whole "
            "multi-worker drain, workers as process tracks."
        ),
    )
    parser.add_argument(
        "queue", metavar="URL", help="the drained queue (queue://<dir>)"
    )
    parser.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="restrict to one sweep's trace id (default: every span)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("sweep.trace.json"),
        metavar="FILE",
        help="output trace path (default: sweep.trace.json)",
    )
    args = parser.parse_args(argv)

    root = parse_queue_url(args.queue)
    spans = collect_spans(root, trace_id=args.trace_id)
    if not spans:
        print(
            f"no spans under {root}/spans"
            + (f" for trace {args.trace_id}" if args.trace_id else "")
            + " — was the sweep submitted through the service?",
            file=sys.stderr,
        )
        return 2
    exporter = SweepTraceExporter.from_spans(spans)
    exporter.write(args.out)
    actors = sorted({s.get("actor", "?") for s in spans})
    digests = {s.get("digest") for s in spans if s.get("digest")}
    print(
        f"{len(spans)} spans, {len(digests)} spec(s), "
        f"{len(actors)} actor(s) ({', '.join(actors)}) -> {args.out}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.harness`` / ``glsc-harness``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Subcommand dispatch: the experiment names stay positional for
    # back-compat, so only the non-experiment verbs are special.
    if argv and argv[0] == "trace":
        return _main_trace(argv[1:])
    if argv and argv[0] == "profile":
        return _main_profile(argv[1:])
    if argv and argv[0] == "contend":
        return _main_contend(argv[1:])
    if argv and argv[0] == "bench":
        return _main_bench(argv[1:])
    if argv and argv[0] == "cache":
        return _main_cache(argv[1:])
    if argv and argv[0] == "serve":
        return _main_serve(argv[1:])
    if argv and argv[0] == "worker":
        return _main_worker(argv[1:])
    if argv and argv[0] == "status":
        return _main_status(argv[1:])
    if argv and argv[0] == "sweep-trace":
        return _main_sweep_trace(argv[1:])
    parser = argparse.ArgumentParser(
        prog="glsc-harness",
        parents=[_cache_parent(), _jobs_parent(), _protocol_parent(),
                 _telemetry_parent()],
        description=(
            "Regenerate the evaluation of 'Atomic Vector Operations on "
            "Chip Multiprocessors' (ISCA 2008) on the repro simulator. "
            "See also the 'trace', 'profile', 'contend', 'bench', "
            "'cache', 'serve', 'worker', 'status', and 'sweep-trace' "
            "subcommands (--help on each)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + EXTENSIONS + ("all",),
        help="which table/figure (or extension experiment) to regenerate",
    )
    parser.add_argument(
        "--kernels",
        nargs="+",
        default=list(KERNEL_ORDER),
        choices=list(KERNEL_ORDER),
        help="subset of benchmarks (default: all seven)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=["A", "B"],
        choices=["A", "B", "random", "tiny"],
        help="datasets to sweep (default: A B)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result store",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="URL",
        help="run simulations via a work-queue backend (queue://<dir>) "
             "drained by `worker` processes instead of locally",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    store = None
    if not args.no_cache:
        store = ResultStore(args.cache_dir)
        if store.root.exists() and not store.root.is_dir():
            parser.error(
                f"--cache-dir {store.root} exists and is not a directory"
            )
    if args.backend and store is None:
        parser.error("--backend requires the store (drop --no-cache)")
    executor = Executor(
        jobs=args.jobs,
        store=store,
        backend=args.backend,
        **(_protocol_overrides(args.protocol) or {}),
    )
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    started = time.time()
    for name in names:
        if name in EXTENSIONS:
            print(_render_extension(name, tuple(args.kernels), executor))
        else:
            print(_render(name, executor, tuple(args.kernels),
                          tuple(args.datasets)))
        print()
    elapsed = time.time() - started
    if args.telemetry and executor.telemetry:
        from repro.obs.telemetry import render_telemetry

        print(render_telemetry(executor.telemetry))
        print()
    queued = (
        f", {executor.counters.queued} via workers"
        if executor.counters.queued else ""
    )
    print(
        f"[{executor.simulations} simulations, "
        f"{executor.store_hits} from store{queued}, {elapsed:.1f}s]",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
