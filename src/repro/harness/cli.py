"""Command-line harness: regenerate any table or figure of the paper.

Usage::

    python -m repro.harness table1
    python -m repro.harness fig6 --kernels hip tms --datasets A
    python -m repro.harness all

(Installed as the ``glsc-harness`` console script.)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness import experiments, report
from repro.harness.session import Session
from repro.kernels.registry import KERNEL_ORDER

__all__ = ["main"]

EXPERIMENTS = ("table1", "table3", "fig5a", "fig5b", "fig6", "fig7",
               "fig8", "table4")
EXTENSIONS = ("width-sweep", "latency-sweep", "resilience")


def _render_extension(name: str, kernels) -> str:
    from repro.harness import extensions as ext

    lines = []
    if name == "width-sweep":
        lines.append("Extension: Base/GLSC ratio across SIMD widths (4x4)")
        for kernel in kernels:
            row = ext.width_sweep(kernel)
            series = ", ".join(
                f"W{w}={r:.2f}" for w, r in sorted(row.ratios.items())
            )
            crossover = row.crossover_width()
            lines.append(
                f"  {kernel.upper():4s} A: {series}  "
                f"(crossover: {'W%d' % crossover if crossover else 'none'})"
            )
    elif name == "latency-sweep":
        lines.append(
            "Extension: Base/GLSC ratio vs main-memory latency (4x4, 4-wide)"
        )
        for kernel in kernels:
            row = ext.latency_sensitivity(kernel)
            series = ", ".join(
                f"{l}cyc={r:.2f}" for l, r in sorted(row.ratios.items())
            )
            lines.append(f"  {kernel.upper():4s} A: {series}")
    elif name == "resilience":
        lines.append(
            "Extension: GLSC under injected reservation loss (4x4, 4-wide)"
        )
        for kernel in kernels:
            for row in ext.failure_resilience(kernel):
                lines.append(
                    f"  {kernel.upper():4s} A loss={row.loss:4.2f}: "
                    f"cycles={row.cycles} failure={row.failure_rate:.3f} "
                    f"slowdown={row.slowdown_vs_clean:.2f}x"
                )
    return "\n".join(lines)


def _render(name: str, session: Session, kernels, datasets) -> str:
    if name == "table1":
        return report.render_table1(experiments.table1())
    if name == "table3":
        return report.render_table3(experiments.table3(kernels))
    if name == "fig5a":
        return report.render_fig5a(
            experiments.fig5a(kernels, datasets, session)
        )
    if name == "fig5b":
        return report.render_fig5b(
            experiments.fig5b(kernels, datasets, session)
        )
    if name == "fig6":
        return report.render_fig6(
            experiments.fig6(kernels, datasets, session=session)
        )
    if name == "fig7":
        return report.render_fig7(experiments.fig7(session=session))
    if name == "fig8":
        return report.render_fig8(
            experiments.fig8(kernels, datasets, session=session)
        )
    if name == "table4":
        return report.render_table4(
            experiments.table4(kernels, datasets, session=session)
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.harness`` / ``glsc-harness``."""
    parser = argparse.ArgumentParser(
        prog="glsc-harness",
        description=(
            "Regenerate the evaluation of 'Atomic Vector Operations on "
            "Chip Multiprocessors' (ISCA 2008) on the repro simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + EXTENSIONS + ("all",),
        help="which table/figure (or extension experiment) to regenerate",
    )
    parser.add_argument(
        "--kernels",
        nargs="+",
        default=list(KERNEL_ORDER),
        choices=list(KERNEL_ORDER),
        help="subset of benchmarks (default: all seven)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=["A", "B"],
        choices=["A", "B", "random", "tiny"],
        help="datasets to sweep (default: A B)",
    )
    args = parser.parse_args(argv)

    session = Session()
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    started = time.time()
    for name in names:
        if name in EXTENSIONS:
            print(_render_extension(name, tuple(args.kernels)))
        else:
            print(_render(name, session, tuple(args.kernels),
                          tuple(args.datasets)))
        print()
    elapsed = time.time() - started
    print(
        f"[{session.cached_runs()} simulations, {elapsed:.1f}s]",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
