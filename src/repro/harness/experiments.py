"""One entry point per table/figure of the paper's evaluation.

Each function returns plain data structures (lists of row dataclasses
or nested dicts) so tests can assert on them and
:mod:`repro.harness.report` can format them like the paper.  Every
number comes from a *verified* simulation.

Experiments are written in two halves:

1. a ``sweep_*`` builder that *declares* the figure's complete set of
   runs as a :class:`~repro.sim.executor.Sweep` of
   :class:`~repro.sim.executor.RunSpec` values, and
2. the figure function, which executes the sweep through a shared
   :class:`~repro.sim.executor.Executor` (dedup + parallel dispatch +
   persistent store) and assembles rows from the resulting
   ``{spec: stats}`` mapping.

Because the executor deduplicates by content digest across calls, a
full ``fig6`` + ``fig8`` + ``table4`` invocation simulates each
distinct (kernel, dataset, topology, width, variant) point exactly
once — in parallel the first time, from the store thereafter.

Paper mapping:

* :func:`table1` — simulated system parameters.
* :func:`table3` — benchmark/dataset characteristics.
* :func:`fig5a` — % of execution time in synchronization ops
  (1x1, 1-wide SIMD, GLSC).
* :func:`fig5b` — SIMD efficiency: 4- and 16-wide speedup over 1-wide
  (GLSC, 1x1).
* :func:`fig6`  — Base vs GLSC, 4-wide SIMD, topologies
  1x1/1x4/4x1/4x4, normalized to the 1x1 GLSC time.
* :func:`table4` — instruction/memory-stall/L1-access reductions and
  GLSC element failure rates.
* :func:`fig7`  — microbenchmark scenarios A-D, Base/GLSC time ratio.
* :func:`fig8`  — Base/GLSC time ratio for 1/4/16-wide SIMD at 4x4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.micro import SCENARIOS
from repro.kernels.registry import KERNEL_ORDER, KERNELS
from repro.sim.config import CONFIG_NAMES, MachineConfig
from repro.sim.executor import Executor, RunSpec, Sweep
from repro.workloads.datasets import TABLE3_ROWS

__all__ = [
    "DATASETS",
    "Fig5Row",
    "Fig6Row",
    "Fig7Row",
    "Fig8Row",
    "Table4Row",
    "table1",
    "table3",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "fig8",
    "table4",
    "sweep_fig5a",
    "sweep_fig5b",
    "sweep_fig6",
    "sweep_fig7",
    "sweep_fig8",
    "sweep_table4",
]

#: The two datasets every figure sweeps.
DATASETS = ("A", "B")

#: The SIMD widths Figures 5(b) and 8 sweep.
WIDTHS = (1, 4, 16)


def _executor(executor: Optional[Executor] = None) -> Executor:
    """The executor to run on: the caller's, or a fresh single-job one."""
    return executor if executor is not None else Executor()


# ---------------------------------------------------------------------------
# Tables 1 and 3 (configuration reproductions)
# ---------------------------------------------------------------------------

def table1(config: Optional[MachineConfig] = None) -> Dict[str, object]:
    """Table 1: the simulated system parameters."""
    return (config or MachineConfig()).describe()


def table3(
    kernels: Sequence[str] = KERNEL_ORDER,
) -> List[Dict[str, str]]:
    """Table 3: benchmark characteristics and datasets (ours vs paper)."""
    rows = []
    for kernel in kernels:
        cls = KERNELS[kernel]
        for dataset in DATASETS:
            ours, paper = TABLE3_ROWS[(kernel, dataset)]
            rows.append(
                {
                    "benchmark": kernel.upper(),
                    "atomic_op": cls.atomic_op,
                    "dataset": dataset,
                    "ours": ours,
                    "paper": paper,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------

@dataclass
class Fig5Row:
    """One benchmark x dataset point of Figure 5."""

    kernel: str
    dataset: str
    sync_percent: float = 0.0          # Fig 5a
    speedup_4wide: float = 0.0         # Fig 5b
    speedup_16wide: float = 0.0        # Fig 5b


def sweep_fig5a(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
) -> Sweep:
    """Figure 5(a)'s runs: every kernel x dataset, 1x1, 1-wide GLSC."""
    return Sweep.product(kernels, datasets, ("1x1",), (1,), ("glsc",))


def fig5a(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    executor: Optional[Executor] = None,
) -> List[Fig5Row]:
    """Figure 5(a): % of time in synchronization, 1x1, 1-wide GLSC."""
    stats = _executor(executor).run_sweep(
        sweep_fig5a(kernels, datasets)
    )
    return [
        Fig5Row(
            kernel,
            dataset,
            sync_percent=100
            * stats[RunSpec(kernel, dataset, "1x1", 1, "glsc")].sync_fraction,
        )
        for kernel in kernels
        for dataset in datasets
    ]


def sweep_fig5b(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    widths: Sequence[int] = WIDTHS,
) -> Sweep:
    """Figure 5(b)'s runs: the GLSC binaries at 1x1 across widths."""
    return Sweep.product(kernels, datasets, ("1x1",), widths, ("glsc",))


def fig5b(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    executor: Optional[Executor] = None,
) -> List[Fig5Row]:
    """Figure 5(b): SIMD efficiency of the GLSC binaries at 1x1."""
    stats = _executor(executor).run_sweep(
        sweep_fig5b(kernels, datasets)
    )

    def cycles(kernel: str, dataset: str, width: int) -> int:
        return stats[RunSpec(kernel, dataset, "1x1", width, "glsc")].cycles

    return [
        Fig5Row(
            kernel,
            dataset,
            speedup_4wide=cycles(kernel, dataset, 1)
            / cycles(kernel, dataset, 4),
            speedup_16wide=cycles(kernel, dataset, 1)
            / cycles(kernel, dataset, 16),
        )
        for kernel in kernels
        for dataset in datasets
    ]


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

@dataclass
class Fig6Row:
    """One benchmark x dataset panel of Figure 6 (4-wide SIMD).

    ``base`` and ``glsc`` map topology name -> speedup normalized to
    the 1x1 GLSC execution time of the same dataset, exactly the
    figure's normalization.
    """

    kernel: str
    dataset: str
    base: Dict[str, float] = field(default_factory=dict)
    glsc: Dict[str, float] = field(default_factory=dict)

    def ratio(self, topology: str) -> float:
        """Base/GLSC execution-time ratio at one topology."""
        return self.glsc[topology] / self.base[topology]


def sweep_fig6(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    topologies: Sequence[str] = CONFIG_NAMES,
    simd_width: int = 4,
) -> Sweep:
    """Figure 6's runs: both variants over every topology, plus the
    1x1 GLSC reference every bar is normalized to."""
    sweep = Sweep.product(
        kernels, datasets, ("1x1",), (simd_width,), ("glsc",)
    )
    return sweep + Sweep.product(
        kernels, datasets, topologies, (simd_width,), ("base", "glsc")
    )


def fig6(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    topologies: Sequence[str] = CONFIG_NAMES,
    simd_width: int = 4,
    executor: Optional[Executor] = None,
) -> List[Fig6Row]:
    """Figure 6: Base vs GLSC speedups over 1x1 GLSC, 4-wide SIMD."""
    stats = _executor(executor).run_sweep(
        sweep_fig6(kernels, datasets, topologies, simd_width)
    )
    rows = []
    for kernel in kernels:
        for dataset in datasets:
            reference = stats[
                RunSpec(kernel, dataset, "1x1", simd_width, "glsc")
            ].cycles
            row = Fig6Row(kernel, dataset)
            for topology in topologies:
                for variant, into in (("base", row.base), ("glsc", row.glsc)):
                    cycles = stats[
                        RunSpec(kernel, dataset, topology, simd_width, variant)
                    ].cycles
                    into[topology] = reference / cycles
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------

@dataclass
class Table4Row:
    """One benchmark x dataset row of Table 4 (4-wide SIMD, 4x4)."""

    kernel: str
    dataset: str
    instruction_reduction: float       # % fewer dynamic instructions
    mem_stall_reduction: float         # % fewer memory stall cycles
    l1_combining_reduction: float      # % of atomic L1 accesses combined away
    l1_sync_share: float               # % of L1 accesses due to atomics
    failure_rate_1x1: float            # GLSC element failure rate, 1x1
    failure_rate_4x4: float            # GLSC element failure rate, 4x4


def sweep_table4(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    simd_width: int = 4,
) -> Sweep:
    """Table 4's runs: 4x4 Base+GLSC plus the 1x1 GLSC solo runs."""
    sweep = Sweep.product(
        kernels, datasets, ("4x4",), (simd_width,), ("base", "glsc")
    )
    return sweep + Sweep.product(
        kernels, datasets, ("1x1",), (simd_width,), ("glsc",)
    )


def table4(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    simd_width: int = 4,
    executor: Optional[Executor] = None,
) -> List[Table4Row]:
    """Table 4: where GLSC's benefit comes from, plus failure rates."""
    stats = _executor(executor).run_sweep(
        sweep_table4(kernels, datasets, simd_width)
    )
    rows = []
    for kernel in kernels:
        for dataset in datasets:
            base = stats[RunSpec(kernel, dataset, "4x4", simd_width, "base")]
            glsc = stats[RunSpec(kernel, dataset, "4x4", simd_width, "glsc")]
            solo = stats[RunSpec(kernel, dataset, "1x1", simd_width, "glsc")]
            instr_red = 100 * (
                1 - glsc.total_instructions / max(base.total_instructions, 1)
            )
            stall_red = 100 * (
                1
                - glsc.total_mem_stall_cycles
                / max(base.total_mem_stall_cycles, 1)
            )
            rows.append(
                Table4Row(
                    kernel=kernel,
                    dataset=dataset,
                    instruction_reduction=instr_red,
                    mem_stall_reduction=stall_red,
                    l1_combining_reduction=100 * glsc.combining_reduction,
                    l1_sync_share=100 * glsc.l1_sync_fraction,
                    failure_rate_1x1=100 * solo.glsc_failure_rate,
                    failure_rate_4x4=100 * glsc.glsc_failure_rate,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 7 (microbenchmark)
# ---------------------------------------------------------------------------

@dataclass
class Fig7Row:
    """One scenario bar pair of Figure 7 (Base/GLSC time ratio, 4x4)."""

    scenario: str
    ratio_4wide: float
    ratio_16wide: float


def sweep_fig7(
    scenarios: Sequence[str] = SCENARIOS,
    widths: Tuple[int, int] = (4, 16),
) -> Sweep:
    """Figure 7's runs: warm microbenchmark scenarios, both variants."""
    return Sweep(
        RunSpec.micro(scenario, "4x4", width, variant)
        for scenario in scenarios
        for width in widths
        for variant in ("base", "glsc")
    )


def fig7(
    scenarios: Sequence[str] = SCENARIOS,
    widths: Tuple[int, int] = (4, 16),
    executor: Optional[Executor] = None,
) -> List[Fig7Row]:
    """Figure 7: microbenchmark Base/GLSC ratios for scenarios A-D."""
    stats = _executor(executor).run_sweep(
        sweep_fig7(scenarios, widths)
    )

    def ratio(scenario: str, width: int) -> float:
        base = stats[RunSpec.micro(scenario, "4x4", width, "base")].cycles
        glsc = stats[RunSpec.micro(scenario, "4x4", width, "glsc")].cycles
        return base / glsc

    return [
        Fig7Row(scenario, ratio(scenario, widths[0]), ratio(scenario, widths[1]))
        for scenario in scenarios
    ]


# ---------------------------------------------------------------------------
# Figure 8
# ---------------------------------------------------------------------------

@dataclass
class Fig8Row:
    """One benchmark x dataset bar group of Figure 8 (4x4 topology)."""

    kernel: str
    dataset: str
    ratios: Dict[int, float] = field(default_factory=dict)  # width -> ratio


def sweep_fig8(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    widths: Sequence[int] = WIDTHS,
) -> Sweep:
    """Figure 8's runs: both variants at 4x4 across SIMD widths."""
    return Sweep.product(
        kernels, datasets, ("4x4",), widths, ("base", "glsc")
    )


def fig8(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    widths: Sequence[int] = WIDTHS,
    executor: Optional[Executor] = None,
) -> List[Fig8Row]:
    """Figure 8: Base/GLSC ratio vs SIMD width at 4x4."""
    stats = _executor(executor).run_sweep(
        sweep_fig8(kernels, datasets, widths)
    )
    rows = []
    for kernel in kernels:
        for dataset in datasets:
            row = Fig8Row(kernel, dataset)
            for width in widths:
                base = stats[RunSpec(kernel, dataset, "4x4", width, "base")]
                glsc = stats[RunSpec(kernel, dataset, "4x4", width, "glsc")]
                row.ratios[width] = base.cycles / glsc.cycles
            rows.append(row)
    return rows
