"""One entry point per table/figure of the paper's evaluation.

Each function returns plain data structures (lists of row dataclasses
or nested dicts) so tests can assert on them and
:mod:`repro.harness.report` can format them like the paper.  Every
number comes from a *verified* simulation via the shared
:class:`~repro.harness.session.Session`.

Paper mapping:

* :func:`table1` — simulated system parameters.
* :func:`table3` — benchmark/dataset characteristics.
* :func:`fig5a` — % of execution time in synchronization ops
  (1x1, 1-wide SIMD, GLSC).
* :func:`fig5b` — SIMD efficiency: 4- and 16-wide speedup over 1-wide
  (GLSC, 1x1).
* :func:`fig6`  — Base vs GLSC, 4-wide SIMD, topologies
  1x1/1x4/4x1/4x4, normalized to the 1x1 GLSC time.
* :func:`table4` — instruction/memory-stall/L1-access reductions and
  GLSC element failure rates.
* :func:`fig7`  — microbenchmark scenarios A-D, Base/GLSC time ratio.
* :func:`fig8`  — Base/GLSC time ratio for 1/4/16-wide SIMD at 4x4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.session import Session
from repro.kernels.micro import SCENARIOS
from repro.kernels.registry import KERNEL_ORDER, KERNELS
from repro.sim.config import CONFIG_NAMES, MachineConfig
from repro.workloads.datasets import TABLE3_ROWS

__all__ = [
    "DATASETS",
    "Fig5Row",
    "Fig6Row",
    "Fig7Row",
    "Fig8Row",
    "Table4Row",
    "table1",
    "table3",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "fig8",
    "table4",
]

#: The two datasets every figure sweeps.
DATASETS = ("A", "B")


def _session(session: Optional[Session]) -> Session:
    return session if session is not None else Session()


# ---------------------------------------------------------------------------
# Tables 1 and 3 (configuration reproductions)
# ---------------------------------------------------------------------------

def table1(config: Optional[MachineConfig] = None) -> Dict[str, object]:
    """Table 1: the simulated system parameters."""
    return (config or MachineConfig()).describe()


def table3(
    kernels: Sequence[str] = KERNEL_ORDER,
) -> List[Dict[str, str]]:
    """Table 3: benchmark characteristics and datasets (ours vs paper)."""
    rows = []
    for kernel in kernels:
        cls = KERNELS[kernel]
        for dataset in DATASETS:
            ours, paper = TABLE3_ROWS[(kernel, dataset)]
            rows.append(
                {
                    "benchmark": kernel.upper(),
                    "atomic_op": cls.atomic_op,
                    "dataset": dataset,
                    "ours": ours,
                    "paper": paper,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------

@dataclass
class Fig5Row:
    """One benchmark x dataset point of Figure 5."""

    kernel: str
    dataset: str
    sync_percent: float = 0.0          # Fig 5a
    speedup_4wide: float = 0.0         # Fig 5b
    speedup_16wide: float = 0.0        # Fig 5b


def fig5a(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    session: Optional[Session] = None,
) -> List[Fig5Row]:
    """Figure 5(a): % of time in synchronization, 1x1, 1-wide GLSC."""
    session = _session(session)
    rows = []
    for kernel in kernels:
        for dataset in datasets:
            stats = session.run(kernel, dataset, "1x1", 1, "glsc")
            rows.append(
                Fig5Row(kernel, dataset, sync_percent=100 * stats.sync_fraction)
            )
    return rows


def fig5b(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    session: Optional[Session] = None,
) -> List[Fig5Row]:
    """Figure 5(b): SIMD efficiency of the GLSC binaries at 1x1."""
    session = _session(session)
    rows = []
    for kernel in kernels:
        for dataset in datasets:
            scalar = session.run(kernel, dataset, "1x1", 1, "glsc").cycles
            wide4 = session.run(kernel, dataset, "1x1", 4, "glsc").cycles
            wide16 = session.run(kernel, dataset, "1x1", 16, "glsc").cycles
            rows.append(
                Fig5Row(
                    kernel,
                    dataset,
                    speedup_4wide=scalar / wide4,
                    speedup_16wide=scalar / wide16,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

@dataclass
class Fig6Row:
    """One benchmark x dataset panel of Figure 6 (4-wide SIMD).

    ``base`` and ``glsc`` map topology name -> speedup normalized to
    the 1x1 GLSC execution time of the same dataset, exactly the
    figure's normalization.
    """

    kernel: str
    dataset: str
    base: Dict[str, float] = field(default_factory=dict)
    glsc: Dict[str, float] = field(default_factory=dict)

    def ratio(self, topology: str) -> float:
        """Base/GLSC execution-time ratio at one topology."""
        return self.glsc[topology] / self.base[topology]


def fig6(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    topologies: Sequence[str] = CONFIG_NAMES,
    simd_width: int = 4,
    session: Optional[Session] = None,
) -> List[Fig6Row]:
    """Figure 6: Base vs GLSC speedups over 1x1 GLSC, 4-wide SIMD."""
    session = _session(session)
    rows = []
    for kernel in kernels:
        for dataset in datasets:
            reference = session.run(
                kernel, dataset, "1x1", simd_width, "glsc"
            ).cycles
            row = Fig6Row(kernel, dataset)
            for topology in topologies:
                for variant, into in (("base", row.base), ("glsc", row.glsc)):
                    cycles = session.run(
                        kernel, dataset, topology, simd_width, variant
                    ).cycles
                    into[topology] = reference / cycles
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------

@dataclass
class Table4Row:
    """One benchmark x dataset row of Table 4 (4-wide SIMD, 4x4)."""

    kernel: str
    dataset: str
    instruction_reduction: float       # % fewer dynamic instructions
    mem_stall_reduction: float         # % fewer memory stall cycles
    l1_combining_reduction: float      # % of atomic L1 accesses combined away
    l1_sync_share: float               # % of L1 accesses due to atomics
    failure_rate_1x1: float            # GLSC element failure rate, 1x1
    failure_rate_4x4: float            # GLSC element failure rate, 4x4


def table4(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    simd_width: int = 4,
    session: Optional[Session] = None,
) -> List[Table4Row]:
    """Table 4: where GLSC's benefit comes from, plus failure rates."""
    session = _session(session)
    rows = []
    for kernel in kernels:
        for dataset in datasets:
            base = session.run(kernel, dataset, "4x4", simd_width, "base")
            glsc = session.run(kernel, dataset, "4x4", simd_width, "glsc")
            solo = session.run(kernel, dataset, "1x1", simd_width, "glsc")
            instr_red = 100 * (
                1 - glsc.total_instructions / max(base.total_instructions, 1)
            )
            stall_red = 100 * (
                1
                - glsc.total_mem_stall_cycles
                / max(base.total_mem_stall_cycles, 1)
            )
            rows.append(
                Table4Row(
                    kernel=kernel,
                    dataset=dataset,
                    instruction_reduction=instr_red,
                    mem_stall_reduction=stall_red,
                    l1_combining_reduction=100 * glsc.combining_reduction,
                    l1_sync_share=100 * glsc.l1_sync_fraction,
                    failure_rate_1x1=100 * solo.glsc_failure_rate,
                    failure_rate_4x4=100 * glsc.glsc_failure_rate,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 7 (microbenchmark)
# ---------------------------------------------------------------------------

@dataclass
class Fig7Row:
    """One scenario bar pair of Figure 7 (Base/GLSC time ratio, 4x4)."""

    scenario: str
    ratio_4wide: float
    ratio_16wide: float


def fig7(
    scenarios: Sequence[str] = SCENARIOS,
    widths: Tuple[int, int] = (4, 16),
    session: Optional[Session] = None,
) -> List[Fig7Row]:
    """Figure 7: microbenchmark Base/GLSC ratios for scenarios A-D."""
    session = _session(session)
    rows = []
    for scenario in scenarios:
        ratios = []
        for width in widths:
            base = session.run_micro(scenario, "4x4", width, "base").cycles
            glsc = session.run_micro(scenario, "4x4", width, "glsc").cycles
            ratios.append(base / glsc)
        rows.append(Fig7Row(scenario, ratios[0], ratios[1]))
    return rows


# ---------------------------------------------------------------------------
# Figure 8
# ---------------------------------------------------------------------------

@dataclass
class Fig8Row:
    """One benchmark x dataset bar group of Figure 8 (4x4 topology)."""

    kernel: str
    dataset: str
    ratios: Dict[int, float] = field(default_factory=dict)  # width -> ratio


def fig8(
    kernels: Sequence[str] = KERNEL_ORDER,
    datasets: Sequence[str] = DATASETS,
    widths: Sequence[int] = (1, 4, 16),
    session: Optional[Session] = None,
) -> List[Fig8Row]:
    """Figure 8: Base/GLSC ratio vs SIMD width at 4x4."""
    session = _session(session)
    rows = []
    for kernel in kernels:
        for dataset in datasets:
            row = Fig8Row(kernel, dataset)
            for width in widths:
                base = session.run(kernel, dataset, "4x4", width, "base")
                glsc = session.run(kernel, dataset, "4x4", width, "glsc")
                row.ratios[width] = base.cycles / glsc.cycles
            rows.append(row)
    return rows
