"""Extension experiments beyond the paper's evaluation.

The paper's conclusion argues GLSC's benefit grows with SIMD width and
hints at design freedoms it never measures.  These experiments follow
those threads:

* :func:`width_sweep` — Base/GLSC ratio over a *dense* range of SIMD
  widths (the paper shows only 1/4/16), locating the crossover width
  per kernel.
* :func:`latency_sensitivity` — how the GLSC advantage responds to
  main-memory latency (the miss-overlap benefit should grow with
  memory distance).
* :func:`failure_resilience` — performance under injected reservation
  loss, quantifying how gracefully the best-effort model degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.harness.session import Session

__all__ = [
    "WidthSweepRow",
    "SensitivityRow",
    "ResilienceRow",
    "width_sweep",
    "latency_sensitivity",
    "failure_resilience",
]


@dataclass
class WidthSweepRow:
    """Base/GLSC ratio per SIMD width for one kernel x dataset."""

    kernel: str
    dataset: str
    ratios: Dict[int, float] = field(default_factory=dict)

    def crossover_width(self) -> Optional[int]:
        """Smallest width at which GLSC clearly wins (>5%), if any."""
        for width in sorted(self.ratios):
            if self.ratios[width] > 1.05:
                return width
        return None


def width_sweep(
    kernel: str,
    dataset: str = "A",
    widths: Sequence[int] = (1, 2, 4, 8, 16),
    topology: str = "4x4",
    session: Optional[Session] = None,
) -> WidthSweepRow:
    """Base/GLSC time ratio across a dense SIMD-width range."""
    session = session or Session()
    row = WidthSweepRow(kernel, dataset)
    for width in widths:
        base = session.run(kernel, dataset, topology, width, "base").cycles
        glsc = session.run(kernel, dataset, topology, width, "glsc").cycles
        row.ratios[width] = base / glsc
    return row


@dataclass
class SensitivityRow:
    """GLSC advantage as a function of main-memory latency."""

    kernel: str
    dataset: str
    ratios: Dict[int, float] = field(default_factory=dict)  # latency -> ratio


def latency_sensitivity(
    kernel: str,
    dataset: str = "A",
    latencies: Sequence[int] = (70, 140, 280, 560),
    topology: str = "4x4",
    simd_width: int = 4,
) -> SensitivityRow:
    """Sweep main-memory latency; each point is its own session."""
    row = SensitivityRow(kernel, dataset)
    for latency in latencies:
        session = Session(mem_latency=latency)
        base = session.run(
            kernel, dataset, topology, simd_width, "base"
        ).cycles
        glsc = session.run(
            kernel, dataset, topology, simd_width, "glsc"
        ).cycles
        row.ratios[latency] = base / glsc
    return row


@dataclass
class ResilienceRow:
    """GLSC behaviour under injected reservation loss."""

    kernel: str
    dataset: str
    loss: float
    cycles: int
    failure_rate: float
    slowdown_vs_clean: float


def failure_resilience(
    kernel: str,
    dataset: str = "A",
    losses: Sequence[float] = (0.0, 0.01, 0.05, 0.1),
    topology: str = "4x4",
    simd_width: int = 4,
) -> List[ResilienceRow]:
    """How gracefully GLSC degrades when reservations die at random."""
    rows: List[ResilienceRow] = []
    clean_cycles: Optional[int] = None
    for loss in losses:
        session = Session(chaos_reservation_loss=loss)
        stats = session.run(kernel, dataset, topology, simd_width, "glsc")
        if clean_cycles is None:
            clean_cycles = stats.cycles
        rows.append(
            ResilienceRow(
                kernel=kernel,
                dataset=dataset,
                loss=loss,
                cycles=stats.cycles,
                failure_rate=stats.glsc_failure_rate,
                slowdown_vs_clean=stats.cycles / clean_cycles,
            )
        )
    return rows
