"""Extension experiments beyond the paper's evaluation.

The paper's conclusion argues GLSC's benefit grows with SIMD width and
hints at design freedoms it never measures.  These experiments follow
those threads:

* :func:`width_sweep` — Base/GLSC ratio over a *dense* range of SIMD
  widths (the paper shows only 1/4/16), locating the crossover width
  per kernel.
* :func:`latency_sensitivity` — how the GLSC advantage responds to
  main-memory latency (the miss-overlap benefit should grow with
  memory distance).
* :func:`failure_resilience` — performance under injected reservation
  loss, quantifying how gracefully the best-effort model degrades.

Each experiment declares its complete sweep as
:class:`~repro.sim.executor.RunSpec` values — parameter studies such
as the latency sweep ride on per-spec config overrides, so a single
executor (and its store) covers the whole grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.executor import Executor, RunSpec, Sweep

__all__ = [
    "WidthSweepRow",
    "SensitivityRow",
    "ResilienceRow",
    "width_sweep",
    "latency_sensitivity",
    "failure_resilience",
]


def _executor(executor: Optional[Executor]) -> Executor:
    return executor if executor is not None else Executor()


@dataclass
class WidthSweepRow:
    """Base/GLSC ratio per SIMD width for one kernel x dataset."""

    kernel: str
    dataset: str
    ratios: Dict[int, float] = field(default_factory=dict)

    def crossover_width(self) -> Optional[int]:
        """Smallest width at which GLSC clearly wins (>5%), if any."""
        for width in sorted(self.ratios):
            if self.ratios[width] > 1.05:
                return width
        return None


def width_sweep(
    kernel: str,
    dataset: str = "A",
    widths: Sequence[int] = (1, 2, 4, 8, 16),
    topology: str = "4x4",
    executor: Optional[Executor] = None,
) -> WidthSweepRow:
    """Base/GLSC time ratio across a dense SIMD-width range."""
    ex = _executor(executor)
    stats = ex.run_sweep(
        Sweep.product((kernel,), (dataset,), (topology,), widths,
                      ("base", "glsc"))
    )
    row = WidthSweepRow(kernel, dataset)
    for width in widths:
        base = stats[RunSpec(kernel, dataset, topology, width, "base")]
        glsc = stats[RunSpec(kernel, dataset, topology, width, "glsc")]
        row.ratios[width] = base.cycles / glsc.cycles
    return row


@dataclass
class SensitivityRow:
    """GLSC advantage as a function of main-memory latency."""

    kernel: str
    dataset: str
    ratios: Dict[int, float] = field(default_factory=dict)  # latency -> ratio


def latency_sensitivity(
    kernel: str,
    dataset: str = "A",
    latencies: Sequence[int] = (70, 140, 280, 560),
    topology: str = "4x4",
    simd_width: int = 4,
    executor: Optional[Executor] = None,
) -> SensitivityRow:
    """Sweep main-memory latency via per-spec config overrides."""
    ex = _executor(executor)
    stats = ex.run_sweep(
        Sweep(
            RunSpec(kernel, dataset, topology, simd_width, variant,
                    overrides={"mem_latency": latency})
            for latency in latencies
            for variant in ("base", "glsc")
        )
    )
    row = SensitivityRow(kernel, dataset)
    for latency in latencies:
        overrides = {"mem_latency": latency}
        base = stats[RunSpec(kernel, dataset, topology, simd_width, "base",
                             overrides=overrides)]
        glsc = stats[RunSpec(kernel, dataset, topology, simd_width, "glsc",
                             overrides=overrides)]
        row.ratios[latency] = base.cycles / glsc.cycles
    return row


@dataclass
class ResilienceRow:
    """GLSC behaviour under injected reservation loss."""

    kernel: str
    dataset: str
    loss: float
    cycles: int
    failure_rate: float
    slowdown_vs_clean: float


def failure_resilience(
    kernel: str,
    dataset: str = "A",
    losses: Sequence[float] = (0.0, 0.01, 0.05, 0.1),
    topology: str = "4x4",
    simd_width: int = 4,
    executor: Optional[Executor] = None,
) -> List[ResilienceRow]:
    """How gracefully GLSC degrades when reservations die at random."""
    ex = _executor(executor)
    specs = {
        loss: RunSpec(kernel, dataset, topology, simd_width, "glsc",
                      overrides={"chaos_reservation_loss": loss})
        for loss in losses
    }
    stats = ex.run_sweep(Sweep(specs.values()))
    rows: List[ResilienceRow] = []
    clean_cycles: Optional[int] = None
    for loss in losses:
        result = stats[specs[loss]]
        if clean_cycles is None:
            clean_cycles = result.cycles
        rows.append(
            ResilienceRow(
                kernel=kernel,
                dataset=dataset,
                loss=loss,
                cycles=result.cycles,
                failure_rate=result.glsc_failure_rate,
                slowdown_vs_clean=result.cycles / clean_cycles,
            )
        )
    return rows
