"""ASCII rendering of the experiment results, formatted like the paper.

Every ``render_*`` function takes the corresponding
:mod:`repro.harness.experiments` result and returns a string; the CLI
prints them.  Where the paper reports a comparable number, the row
carries it for side-by-side reading (EXPERIMENTS.md holds the full
discussion).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness.experiments import (
    Fig5Row,
    Fig6Row,
    Fig7Row,
    Fig8Row,
    Table4Row,
)
from repro.sim.config import CONFIG_NAMES

__all__ = [
    "ascii_bars",
    "render_table1",
    "render_table3",
    "render_fig5a",
    "render_fig5b",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_table4",
    "chart_fig5a",
    "chart_fig7",
    "chart_fig8",
]


def ascii_bars(
    items: Sequence, width: int = 46, unit: str = ""
) -> str:
    """Horizontal ASCII bar chart from (label, value) pairs.

    The terminal stand-in for the paper's bar figures; bars scale to
    the maximum value.
    """
    items = list(items)
    if not items:
        return "(no data)"
    peak = max(value for _, value in items) or 1.0
    label_width = max(len(str(label)) for label, _ in items)
    lines = []
    for label, value in items:
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(
            f"{str(label).ljust(label_width)} | {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def _table(header: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_table1(params: Dict[str, object]) -> str:
    """Table 1: simulated system parameters."""
    rows = [(str(k), str(v)) for k, v in params.items()]
    return "Table 1: simulated system parameters\n" + _table(
        ("parameter", "value"), rows
    )


def render_table3(rows: List[Dict[str, str]]) -> str:
    """Table 3: benchmark characteristics (our datasets vs paper's)."""
    body = [
        (
            r["benchmark"],
            r["atomic_op"],
            r["dataset"],
            r["ours"],
            r["paper"],
        )
        for r in rows
    ]
    return "Table 3: benchmarks and datasets\n" + _table(
        ("benchmark", "atomic operation", "ds", "this reproduction",
         "paper dataset"),
        body,
    )


def render_fig5a(rows: List[Fig5Row]) -> str:
    """Figure 5(a): synchronization time share."""
    body = [
        (r.kernel.upper(), r.dataset, f"{r.sync_percent:5.1f}%")
        for r in rows
    ]
    return (
        "Figure 5(a): % of execution time in synchronization ops "
        "(1x1, 1-wide SIMD, GLSC)\n" + _table(("benchmark", "ds", "sync"), body)
    )


def render_fig5b(rows: List[Fig5Row]) -> str:
    """Figure 5(b): SIMD efficiency."""
    body = [
        (
            r.kernel.upper(),
            r.dataset,
            f"{r.speedup_4wide:4.2f}x",
            f"{r.speedup_16wide:4.2f}x",
        )
        for r in rows
    ]
    return (
        "Figure 5(b): speedup over 1-wide SIMD (GLSC, 1x1)\n"
        + _table(("benchmark", "ds", "4-wide", "16-wide"), body)
    )


def render_fig6(rows: List[Fig6Row]) -> str:
    """Figure 6: Base vs GLSC speedups, 4-wide SIMD."""
    header = ["benchmark", "ds", "variant"] + list(CONFIG_NAMES)
    body = []
    for row in rows:
        for variant, series in (("Base", row.base), ("GLSC", row.glsc)):
            body.append(
                [row.kernel.upper(), row.dataset, variant]
                + [f"{series.get(t, float('nan')):5.2f}" for t in CONFIG_NAMES]
            )
    return (
        "Figure 6: speedup normalized to 1x1 GLSC time (4-wide SIMD)\n"
        + _table(header, body)
    )


def render_fig7(rows: List[Fig7Row]) -> str:
    """Figure 7: microbenchmark Base/GLSC ratios."""
    body = [
        (r.scenario, f"{r.ratio_4wide:4.2f}", f"{r.ratio_16wide:4.2f}")
        for r in rows
    ]
    return (
        "Figure 7: microbenchmark execution-time ratio Base/GLSC (4x4)\n"
        + _table(("scenario", "4-wide", "16-wide"), body)
    )


def render_fig8(rows: List[Fig8Row]) -> str:
    """Figure 8: Base/GLSC ratio by SIMD width."""
    widths = sorted(rows[0].ratios) if rows else []
    header = ["benchmark", "ds"] + [f"{w}-wide" for w in widths]
    body = [
        [row.kernel.upper(), row.dataset]
        + [f"{row.ratios[w]:4.2f}" for w in widths]
        for row in rows
    ]
    return (
        "Figure 8: execution-time ratio Base/GLSC at 4x4\n"
        + _table(header, body)
    )


def chart_fig5a(rows: List[Fig5Row]) -> str:
    """Figure 5(a) as a bar chart (percent of time in sync ops)."""
    return (
        "Figure 5(a) — synchronization time share (1x1, 1-wide GLSC)\n"
        + ascii_bars(
            [
                (f"{r.kernel.upper()}-{r.dataset}", r.sync_percent)
                for r in rows
            ],
            unit="%",
        )
    )


def chart_fig7(rows: List[Fig7Row]) -> str:
    """Figure 7 as a bar chart (Base/GLSC ratio per scenario)."""
    items = []
    for row in rows:
        items.append((f"{row.scenario} (4-wide)", row.ratio_4wide))
        items.append((f"{row.scenario} (16-wide)", row.ratio_16wide))
    return "Figure 7 — Base/GLSC ratio by scenario\n" + ascii_bars(items, unit="x")


def chart_fig8(rows: List[Fig8Row]) -> str:
    """Figure 8 as a bar chart (Base/GLSC ratio per width)."""
    items = []
    for row in rows:
        for width in sorted(row.ratios):
            items.append(
                (
                    f"{row.kernel.upper()}-{row.dataset} W{width}",
                    row.ratios[width],
                )
            )
    return "Figure 8 — Base/GLSC ratio by SIMD width (4x4)\n" + ascii_bars(
        items, unit="x"
    )


def render_table4(rows: List[Table4Row]) -> str:
    """Table 4: analysis of GLSC."""
    body = [
        (
            r.kernel.upper(),
            r.dataset,
            f"{r.instruction_reduction:6.2f}%",
            f"{r.mem_stall_reduction:6.2f}%",
            f"{r.l1_combining_reduction:5.2f}% of {r.l1_sync_share:5.2f}%",
            f"{r.failure_rate_1x1:5.2f}%",
            f"{r.failure_rate_4x4:5.2f}%",
        )
        for r in rows
    ]
    return (
        "Table 4: analysis of GLSC (4-wide SIMD; reductions at 4x4)\n"
        + _table(
            (
                "benchmark",
                "ds",
                "instr red.",
                "mem-stall red.",
                "L1 accesses (combined of atomic)",
                "fail 1x1",
                "fail 4x4",
            ),
            body,
        )
    )
