"""Deprecated run-cache façade over the executor (back-compat only).

:class:`Session` was the original memoizing run API.  The run layer
now revolves around :class:`~repro.sim.executor.RunSpec` and
:class:`~repro.sim.executor.Executor` — immutable run descriptions,
dedup, process-pool parallelism, and a persistent store
(:mod:`repro.sim.store`).  ``Session`` survives as a thin façade so
existing call sites keep working, but constructing one (and every
method that triggers a simulation) emits a
:class:`DeprecationWarning` pointing at the replacement::

    # old                                  # new
    Session().run("tms", "A",              Executor().run(
        "4x4", 4, "glsc")                      RunSpec("tms", "A", "4x4",
                                                       4, "glsc"))
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Optional

from repro.sim.config import MachineConfig, named_config
from repro.sim.executor import Executor, RunSpec
from repro.sim.stats import MachineStats
from repro.sim.store import ResultStore

__all__ = ["Session"]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"Session.{old} is deprecated; use {new} "
        "(see repro.sim.executor)",
        DeprecationWarning,
        stacklevel=3,
    )


class Session:
    """Memoized access to verified kernel runs (deprecated façade).

    ``overrides`` are extra :class:`MachineConfig` fields applied to
    every run (used by the ablation benches to flip GLSC policies).
    New code should construct an :class:`Executor` directly; a Session
    merely owns one (exposed as :attr:`executor`) and forwards to it.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        executor: Optional[Executor] = None,
        **overrides: Any,
    ) -> None:
        warnings.warn(
            "Session is deprecated; construct an Executor directly "
            "(see repro.sim.executor)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.overrides: Dict[str, Any] = dict(overrides)
        self.executor = executor or Executor(
            jobs=jobs, store=store, **overrides
        )

    def config(self, topology: str, simd_width: int) -> MachineConfig:
        """The machine config for a paper topology name and width."""
        return named_config(topology, simd_width=simd_width, **self.overrides)

    def run(
        self,
        kernel: str,
        dataset: str,
        topology: str,
        simd_width: int,
        variant: str,
    ) -> MachineStats:
        """A verified run's stats (cached).  Deprecated."""
        _deprecated("run(...)", "Executor.run(RunSpec(...))")
        return self.executor.run(
            RunSpec(kernel, dataset, topology, simd_width, variant)
        )

    def run_micro(
        self, scenario: str, topology: str, simd_width: int, variant: str
    ) -> MachineStats:
        """A verified microbenchmark run (cached; warm).  Deprecated."""
        _deprecated("run_micro(...)", "Executor.run(RunSpec.micro(...))")
        return self.executor.run(
            RunSpec.micro(scenario, topology, simd_width, variant)
        )

    def cached_runs(self) -> int:
        """Number of distinct run results held (simulated or loaded)."""
        return self.executor.distinct_runs()
