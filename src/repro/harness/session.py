"""Run cache shared by the experiment harness.

The paper's figures reuse the same (kernel, dataset, topology, SIMD
width, variant) measurements from different angles — Figure 6's 4x4
bars are Figure 8's width-4 ratios, Table 4 reads the same runs'
counters.  :class:`Session` memoizes every verified run so a full
harness invocation simulates each point exactly once.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sim.config import MachineConfig, named_config
from repro.sim.runner import run_kernel, run_prepared
from repro.sim.stats import MachineStats

__all__ = ["Session"]

RunKey = Tuple[str, str, str, int, str]


class Session:
    """Memoized access to verified kernel runs.

    ``overrides`` are extra :class:`MachineConfig` fields applied to
    every run (used by the ablation benches to flip GLSC policies).
    """

    def __init__(self, **overrides) -> None:
        self.overrides = overrides
        self._cache: Dict[RunKey, MachineStats] = {}

    def config(self, topology: str, simd_width: int) -> MachineConfig:
        """The machine config for a paper topology name and width."""
        return named_config(topology, simd_width=simd_width, **self.overrides)

    def run(
        self,
        kernel: str,
        dataset: str,
        topology: str,
        simd_width: int,
        variant: str,
    ) -> MachineStats:
        """A verified run's stats (cached)."""
        key = (kernel, dataset, topology, simd_width, variant)
        if key not in self._cache:
            result = run_kernel(
                kernel, dataset, self.config(topology, simd_width), variant
            )
            self._cache[key] = result.stats
        return self._cache[key]

    def run_micro(
        self, scenario: str, topology: str, simd_width: int, variant: str
    ) -> MachineStats:
        """A verified microbenchmark run (cached; warmed caches)."""
        from repro.kernels.micro import Micro

        key = (f"micro:{scenario}", "-", topology, simd_width, variant)
        if key not in self._cache:
            config = self.config(topology, simd_width)
            kernel = Micro(config.n_threads, scenario=scenario)
            self._cache[key] = run_prepared(
                kernel, config, variant, warm=True
            )
        return self._cache[key]

    def cached_runs(self) -> int:
        """Number of distinct simulations performed so far."""
        return len(self._cache)
