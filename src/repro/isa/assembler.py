"""A small assembler/interpreter for the simulated ISA.

The paper presents its code sequences as assembly (Figures 2 and 3);
this module lets those sequences run on the simulator *as written*,
instead of being hand-translated into generator code.  An assembly
program is parsed once into an instruction list, then interpreted as a
thread program: every architectural operation yields the corresponding
:class:`~repro.isa.instructions.Instr`, so the timing model sees
exactly the same dynamic stream a generator-DSL kernel would produce.

Register files (all virtual, unbounded):

* ``r<name>`` scalar registers, ``v<name>`` vector registers,
  ``f<name>`` mask registers;
* operands may also be integer literals or symbols bound through the
  environment passed to :meth:`AsmProgram.program` (base addresses,
  sizes, per-thread values like ``TID``).

Example (the paper's Figure 3A inner loop)::

    kmove     ftmp, ftodo
    vgatherlink ftmp, vtmp, MBINS, vbins, ftmp
    vinc      vtmp, vtmp, ftmp
    vscattercond ftmp, vtmp, MBINS, vbins, ftmp
    kxor      ftodo, ftodo, ftmp
    kbnz      ftodo, retry

See ``examples/paper_figures.py`` for the complete listings and
:data:`OPCODES` for the supported mnemonics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import IsaError, ProgramError
from repro.isa.masks import Mask
from repro.isa.program import ThreadCtx

__all__ = ["AsmProgram", "assemble", "OPCODES"]


class _Insn:
    """One parsed assembly instruction."""

    __slots__ = ("op", "args", "line")

    def __init__(self, op: str, args: List[str], line: int) -> None:
        self.op = op
        self.args = args
        self.line = line

    def __repr__(self) -> str:
        return f"{self.op} {', '.join(self.args)}  ; line {self.line}"


#: Mnemonic -> (min operands, max operands).  Documented in the module
#: docstring groups; the interpreter below is the semantic reference.
OPCODES: Dict[str, Tuple[int, int]] = {
    # scalar ALU / control
    "li": (2, 2), "mov": (2, 2),
    "add": (3, 3), "addi": (3, 3), "sub": (3, 3), "mul": (3, 3),
    "mod": (3, 3),
    "beq": (3, 3), "bne": (3, 3), "blt": (3, 3), "bge": (3, 3),
    "jmp": (1, 1), "halt": (0, 0), "nop": (0, 0),
    # scalar memory / atomics
    "lw": (2, 3), "sw": (2, 3), "ll": (2, 2), "sc": (3, 3),
    # vector compute
    "vbroadcast": (2, 2), "viota": (1, 1), "vmove": (2, 2),
    "vadd": (3, 4), "vsub": (3, 4), "vmul": (3, 4),
    "vinc": (2, 3), "vmod": (3, 4),
    "vcmpeq": (3, 4),
    # vector memory
    "vload": (2, 3), "vstore": (2, 4),
    "vgather": (3, 4), "vscatter": (3, 4),
    "vgatherlink": (5, 5), "vscattercond": (5, 5),
    # masks
    "kones": (1, 1), "kzeros": (1, 1), "kmove": (2, 2),
    "kand": (3, 3), "kor": (3, 3), "kxor": (3, 3), "kandn": (3, 3),
    "knot": (2, 2),
    "kbnz": (2, 2), "kbz": (2, 2),
    # synchronization substrate
    "barrier": (0, 0),
}


def assemble(source: str) -> "AsmProgram":
    """Parse assembly ``source`` into an executable :class:`AsmProgram`.

    Syntax: one instruction per line, operands comma-separated,
    ``label:`` lines define branch targets, ``#`` and ``;`` start
    comments.
    """
    insns: List[_Insn] = []
    labels: Dict[str, int] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        while line.endswith(":") or ":" in line.split()[0]:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise IsaError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise IsaError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(insns)
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        parts = line.split(None, 1)
        op = parts[0].lower()
        if op not in OPCODES:
            raise IsaError(f"line {lineno}: unknown opcode {op!r}")
        args = (
            [a.strip() for a in parts[1].split(",")] if len(parts) > 1 else []
        )
        low, high = OPCODES[op]
        if not low <= len(args) <= high:
            raise IsaError(
                f"line {lineno}: {op} takes {low}..{high} operands, "
                f"got {len(args)}"
            )
        insns.append(_Insn(op, args, lineno))
    return AsmProgram(insns, labels)


class AsmProgram:
    """A parsed assembly program, executable on the machine."""

    def __init__(self, insns: List[_Insn], labels: Dict[str, int]) -> None:
        self.insns = insns
        self.labels = labels
        for insn in insns:
            if insn.op in ("jmp", "kbnz", "kbz", "beq", "bne", "blt", "bge"):
                target = insn.args[-1]
                if target not in labels:
                    raise IsaError(
                        f"line {insn.line}: undefined label {target!r}"
                    )

    def program(
        self, env: Optional[Dict[str, float]] = None
    ) -> Callable:
        """A generator function suitable for ``Machine.add_program``.

        ``env`` binds symbols (addresses, sizes).  The interpreter also
        predefines ``TID``, ``NTHREADS``, and ``W`` from the thread
        context.
        """
        env = dict(env or {})
        insns, labels = self.insns, self.labels

        def run(ctx: ThreadCtx):
            state = _ThreadState(ctx, env)
            pc = 0
            while 0 <= pc < len(insns):
                insn = insns[pc]
                next_pc = yield from _execute(state, insn, pc, labels)
                if next_pc is None:
                    pc += 1
                elif next_pc < 0:  # halt
                    return
                else:
                    pc = next_pc

        return run


class _ThreadState:
    """Architectural registers of one interpreted thread."""

    def __init__(self, ctx: ThreadCtx, env: Dict[str, float]) -> None:
        self.ctx = ctx
        self.env = dict(env)
        self.env.setdefault("TID", ctx.tid)
        self.env.setdefault("NTHREADS", ctx.n_threads)
        self.env.setdefault("W", ctx.w)
        self.scalars: Dict[str, float] = {}
        self.vectors: Dict[str, tuple] = {}
        self.masks: Dict[str, Mask] = {}

    # -- operand resolution ------------------------------------------------

    def value(self, token: str) -> float:
        """Scalar operand: register, literal, or environment symbol."""
        if token in self.scalars:
            return self.scalars[token]
        try:
            return int(token, 0)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            pass
        if token in self.env:
            return self.env[token]
        raise ProgramError(f"unbound scalar operand {token!r}")

    def address(self, token: str) -> int:
        """Operand used as a byte address (must be a non-negative int)."""
        value = self.value(token)
        addr = int(value)
        if addr != value or addr < 0:
            raise ProgramError(f"operand {token!r} is not an address")
        return addr

    def vector(self, token: str) -> tuple:
        if token not in self.vectors:
            raise ProgramError(f"vector register {token!r} read before set")
        return self.vectors[token]

    def mask(self, token: str) -> Mask:
        if token not in self.masks:
            raise ProgramError(f"mask register {token!r} read before set")
        return self.masks[token]

    def opt_mask(self, args: Sequence[str], index: int) -> Optional[Mask]:
        """The optional trailing mask operand of vector instructions."""
        if len(args) > index:
            return self.mask(args[index])
        return None

    def indices(self, token: str) -> List[int]:
        """A vector register interpreted as element indices."""
        return [max(int(v), 0) for v in self.vector(token)]


def _execute(state: _ThreadState, insn: _Insn, pc: int, labels):
    """Interpret one instruction; yields Instrs; returns next pc."""
    ctx = state.ctx
    op, args = insn.op, insn.args

    # -- scalar ALU / control ------------------------------------------------
    if op in ("li", "mov"):
        yield ctx.alu()
        state.scalars[args[0]] = state.value(args[1])
    elif op in ("add", "addi", "sub", "mul", "mod"):
        yield ctx.alu()
        a, b = state.value(args[1]), state.value(args[2])
        if op in ("add", "addi"):
            result = a + b
        elif op == "sub":
            result = a - b
        elif op == "mul":
            result = a * b
        else:
            result = int(a) % int(b)
        state.scalars[args[0]] = result
    elif op in ("beq", "bne", "blt", "bge"):
        yield ctx.alu()
        a, b = state.value(args[0]), state.value(args[1])
        taken = {
            "beq": a == b,
            "bne": a != b,
            "blt": a < b,
            "bge": a >= b,
        }[op]
        if taken:
            return labels[args[2]]
    elif op == "jmp":
        yield ctx.alu()
        return labels[args[0]]
    elif op == "halt":
        return -1
    elif op == "nop":
        yield ctx.alu()

    # -- scalar memory ------------------------------------------------------
    elif op == "lw":
        offset = state.value(args[2]) if len(args) > 2 else 0
        addr = state.address(args[1]) + int(offset)
        state.scalars[args[0]] = yield ctx.load(addr)
    elif op == "sw":
        offset = state.value(args[2]) if len(args) > 2 else 0
        addr = state.address(args[1]) + int(offset)
        yield ctx.store(addr, state.value(args[0]))
    elif op == "ll":
        state.scalars[args[0]] = yield ctx.ll(state.address(args[1]))
    elif op == "sc":
        ok = yield ctx.sc(state.address(args[1]), state.value(args[2]))
        state.scalars[args[0]] = 1 if ok else 0

    # -- vector compute --------------------------------------------------------
    elif op == "vbroadcast":
        value = state.value(args[1])
        state.vectors[args[0]] = yield ctx.valu(
            lambda v=value: (v,) * ctx.w
        )
    elif op == "viota":
        state.vectors[args[0]] = yield ctx.valu(
            lambda: tuple(range(ctx.w))
        )
    elif op == "vmove":
        src = state.vector(args[1])
        state.vectors[args[0]] = yield ctx.valu(lambda v=src: v)
    elif op in ("vadd", "vsub", "vmul"):
        a, b = state.vector(args[1]), state.vector(args[2])
        mask = state.opt_mask(args, 3)
        fn = {"vadd": lambda x, y: x + y,
              "vsub": lambda x, y: x - y,
              "vmul": lambda x, y: x * y}[op]
        state.vectors[args[0]] = yield ctx.valu(
            lambda a=a, b=b, m=mask: tuple(
                fn(x, y) if m is None or m.lane(i) else x
                for i, (x, y) in enumerate(zip(a, b))
            )
        )
    elif op == "vinc":
        src = state.vector(args[1])
        mask = state.opt_mask(args, 2)
        state.vectors[args[0]] = yield ctx.valu(
            lambda v=src, m=mask: tuple(
                x + 1 if m is None or m.lane(i) else x
                for i, x in enumerate(v)
            )
        )
    elif op == "vmod":
        src = state.vector(args[1])
        divisor = state.value(args[2])
        mask = state.opt_mask(args, 3)
        state.vectors[args[0]] = yield ctx.valu(
            lambda v=src, d=int(divisor), m=mask: tuple(
                int(x) % d if m is None or m.lane(i) else x
                for i, x in enumerate(v)
            )
        )
    elif op == "vcmpeq":
        a, b = state.vector(args[1]), state.vector(args[2])
        mask = state.opt_mask(args, 3)
        state.masks[args[0]] = yield ctx.kalu(
            lambda a=a, b=b, m=mask: Mask.from_lanes(
                (m is None or m.lane(i)) and x == y
                for i, (x, y) in enumerate(zip(a, b))
            )
        )

    # -- vector memory -----------------------------------------------------------
    elif op == "vload":
        offset = state.value(args[2]) if len(args) > 2 else 0
        addr = state.address(args[1]) + int(offset)
        state.vectors[args[0]] = yield ctx.vload(addr)
    elif op == "vstore":
        offset = state.value(args[2]) if len(args) > 2 else 0
        addr = state.address(args[1]) + int(offset)
        mask = state.opt_mask(args, 3)
        yield ctx.vstore(addr, state.vector(args[0]), mask)
    elif op == "vgather":
        mask = state.opt_mask(args, 3)
        state.vectors[args[0]] = yield ctx.vgather(
            state.address(args[1]), state.indices(args[2]), mask
        )
    elif op == "vscatter":
        mask = state.opt_mask(args, 3)
        yield ctx.vscatter(
            state.address(args[1]),
            state.indices(args[2]),
            state.vector(args[0]),
            mask,
        )
    elif op == "vgatherlink":
        # vgatherlink Fdst, Vdst, base, Vindx, Fsrc  (paper operand order)
        values, out = yield ctx.vgatherlink(
            state.address(args[2]),
            state.indices(args[3]),
            state.mask(args[4]),
        )
        state.vectors[args[1]] = values
        state.masks[args[0]] = out
    elif op == "vscattercond":
        # vscattercond Fdst, Vsrc, base, Vindx, Fsrc (paper operand order)
        out = yield ctx.vscattercond(
            state.address(args[2]),
            state.indices(args[3]),
            state.vector(args[1]),
            state.mask(args[4]),
        )
        state.masks[args[0]] = out

    # -- masks ---------------------------------------------------------------
    elif op == "kones":
        state.masks[args[0]] = yield ctx.kalu(lambda: ctx.all_ones())
    elif op == "kzeros":
        state.masks[args[0]] = yield ctx.kalu(lambda: ctx.zeros())
    elif op == "kmove":
        src = state.mask(args[1])
        state.masks[args[0]] = yield ctx.kalu(lambda m=src: m)
    elif op in ("kand", "kor", "kxor", "kandn"):
        a, b = state.mask(args[1]), state.mask(args[2])
        fn = {
            "kand": lambda x, y: x & y,
            "kor": lambda x, y: x | y,
            "kxor": lambda x, y: x ^ y,
            "kandn": lambda x, y: x.andnot(y),
        }[op]
        state.masks[args[0]] = yield ctx.kalu(lambda a=a, b=b: fn(a, b))
    elif op == "knot":
        src = state.mask(args[1])
        state.masks[args[0]] = yield ctx.kalu(lambda m=src: ~m)
    elif op in ("kbnz", "kbz"):
        yield ctx.alu()
        mask = state.mask(args[0])
        if (op == "kbnz") == mask.any():
            return labels[args[1]]

    # -- synchronization ---------------------------------------------------------
    elif op == "barrier":
        yield ctx.barrier()
    else:  # pragma: no cover - OPCODES and dispatch are kept in sync
        raise ProgramError(f"unimplemented opcode {op!r}")
    return None
