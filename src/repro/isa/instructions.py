"""Instruction descriptors — the ISA surface of the simulator.

A thread program is a Python generator that *yields* :class:`Instr`
objects and receives each instruction's architectural result via
``send``.  This keeps benchmark kernels readable (Python locals play
the role of registers) while the simulator retains full control of
timing, memory state, and atomicity — the execution-driven style the
paper's simulator uses.

The instruction kinds mirror the paper's ISA:

========================  ================================================
``ALU`` / ``VALU``        scalar / vector compute, 1 cycle per op
``LOAD`` / ``STORE``      scalar word access through the LSU
``LL`` / ``SC``           scalar load-linked / store-conditional (Base)
``VLOAD`` / ``VSTORE``    contiguous SIMD-width access through the LSU
``VGATHER``/``VSCATTER``  indexed SIMD access through the GSU
``VGATHERLINK``           the paper's gather-linked (Section 3.1)
``VSCATTERCOND``          the paper's scatter-conditional (Section 3.1)
``BARRIER``               all-thread rendezvous (substrate primitive)
========================  ================================================

Every instruction carries a ``sync`` flag so the harness can attribute
time to synchronization operations (Figure 5a) and count atomic-op L1
accesses (Table 4).
"""

from __future__ import annotations

from enum import Enum, IntEnum, auto
from typing import Callable, Optional, Sequence, Tuple

from repro.errors import IsaError
from repro.isa.masks import Mask

__all__ = [
    "Kind",
    "Instr",
    "GSU_KINDS",
    "MEMORY_KINDS",
    "ATOMIC_KINDS",
    "N_KINDS",
    "IS_COMPUTE_OP",
    "IS_MEMORY_OP",
]


class Kind(IntEnum):
    """Instruction kind; drives dispatch in the core model.

    An ``IntEnum`` so a kind can index the per-opcode dispatch and
    accounting tables directly (``handlers[instr.kind]``) without a
    hash lookup on the hot issue path.
    """

    ALU = auto()
    VALU = auto()
    LOAD = auto()
    STORE = auto()
    LL = auto()
    SC = auto()
    VLOAD = auto()
    VSTORE = auto()
    VGATHER = auto()
    VSCATTER = auto()
    VGATHERLINK = auto()
    VSCATTERCOND = auto()
    BARRIER = auto()

    # Keep the plain-Enum rendering ("Kind.ALU", not "1") on every
    # Python version; 3.11 switched IntEnum's str/format to the int's.
    __str__ = Enum.__str__
    __format__ = Enum.__format__


#: Kinds handled by the gather/scatter unit.
GSU_KINDS = frozenset(
    {Kind.VGATHER, Kind.VSCATTER, Kind.VGATHERLINK, Kind.VSCATTERCOND}
)

#: Kinds that access memory at all.
MEMORY_KINDS = frozenset(
    {
        Kind.LOAD,
        Kind.STORE,
        Kind.LL,
        Kind.SC,
        Kind.VLOAD,
        Kind.VSTORE,
    }
) | GSU_KINDS

#: Kinds with read-modify-write / reservation semantics.
ATOMIC_KINDS = frozenset({Kind.LL, Kind.SC, Kind.VGATHERLINK, Kind.VSCATTERCOND})

#: Size of any table indexed by ``Kind`` (member values start at 1).
N_KINDS = len(Kind) + 1

#: ``IS_COMPUTE_OP[kind]`` — instruction retires ``count`` operations.
IS_COMPUTE_OP = tuple(
    Kind(v) in (Kind.ALU, Kind.VALU) if v else False for v in range(N_KINDS)
)

#: ``IS_MEMORY_OP[kind]`` — tuple mirror of :data:`MEMORY_KINDS`.
IS_MEMORY_OP = tuple(
    Kind(v) in MEMORY_KINDS if v else False for v in range(N_KINDS)
)



#: Interned scalar-ALU descriptors, keyed (count, sync); see Instr.alu.
_ALU_INTERNED: dict = {}


class Instr:
    """One dynamic instruction yielded by a thread program.

    Only the fields relevant to the instruction's :class:`Kind` are
    populated; the constructors below validate the combinations, so the
    core model can trust the operands.
    """

    __slots__ = (
        "kind",
        "count",
        "fn",
        "addr",
        "value",
        "base",
        "indices",
        "values",
        "mask",
        "sync",
        "group",
    )

    def __init__(
        self,
        kind: Kind,
        *,
        count: int = 1,
        fn: Optional[Callable] = None,
        addr: Optional[int] = None,
        value=None,
        base: Optional[int] = None,
        indices: Optional[Sequence[int]] = None,
        values: Optional[Sequence] = None,
        mask: Optional[Mask] = None,
        sync: bool = False,
        group: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.count = count
        self.fn = fn
        self.addr = addr
        self.value = value
        self.base = base
        self.indices = tuple(indices) if indices is not None else None
        self.values = tuple(values) if values is not None else None
        self.mask = mask
        self.sync = sync
        self.group = group

    def __repr__(self) -> str:
        parts = [self.kind.name.lower()]
        if self.addr is not None:
            parts.append(f"addr={self.addr:#x}")
        if self.base is not None:
            parts.append(f"base={self.base:#x}")
        if self.mask is not None:
            parts.append(f"mask={self.mask!r}")
        if self.sync:
            parts.append("sync")
        return f"Instr({', '.join(parts)})"

    # -- constructors ----------------------------------------------------

    @classmethod
    def alu(cls, count: int = 1, sync: bool = False) -> "Instr":
        """``count`` scalar ALU operations (1 cycle each).

        Instances are interned per ``(count, sync)``: an ``Instr`` is
        immutable once built and kernels yield enormous numbers of
        identical scalar-ALU descriptors, so one object serves all.
        """
        instr = _ALU_INTERNED.get((count, sync))
        if instr is not None:
            return instr
        if count < 1:
            raise IsaError(f"alu count must be >= 1, got {count}")
        instr = cls.__new__(cls)
        instr.kind = Kind.ALU
        instr.count = count
        instr.fn = None
        instr.addr = None
        instr.value = None
        instr.base = None
        instr.indices = None
        instr.values = None
        instr.mask = None
        instr.sync = sync
        instr.group = None
        _ALU_INTERNED[(count, sync)] = instr
        return instr

    @classmethod
    def valu(cls, fn: Callable, count: int = 1, sync: bool = False) -> "Instr":
        """``count`` vector ALU ops; ``fn()`` computes the result value.

        The callable runs at issue time with no arguments (it closes
        over the program's Python "registers") and its return value is
        delivered back to the program.
        """
        if count < 1:
            raise IsaError(f"valu count must be >= 1, got {count}")
        if not callable(fn):
            raise IsaError("valu requires a callable")
        instr = cls.__new__(cls)
        instr.kind = Kind.VALU
        instr.count = count
        instr.fn = fn
        instr.addr = None
        instr.value = None
        instr.base = None
        instr.indices = None
        instr.values = None
        instr.mask = None
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def load(cls, addr: int, sync: bool = False) -> "Instr":
        """Scalar word load."""
        instr = cls.__new__(cls)
        instr.kind = Kind.LOAD
        instr.count = 1
        instr.fn = None
        instr.addr = _check_addr(addr)
        instr.value = None
        instr.base = None
        instr.indices = None
        instr.values = None
        instr.mask = None
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def store(cls, addr: int, value, sync: bool = False) -> "Instr":
        """Scalar word store."""
        instr = cls.__new__(cls)
        instr.kind = Kind.STORE
        instr.count = 1
        instr.fn = None
        instr.addr = _check_addr(addr)
        instr.value = value
        instr.base = None
        instr.indices = None
        instr.values = None
        instr.mask = None
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def ll(cls, addr: int, sync: bool = True) -> "Instr":
        """Scalar load-linked; sets this thread's reservation."""
        instr = cls.__new__(cls)
        instr.kind = Kind.LL
        instr.count = 1
        instr.fn = None
        instr.addr = _check_addr(addr)
        instr.value = None
        instr.base = None
        instr.indices = None
        instr.values = None
        instr.mask = None
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def sc(cls, addr: int, value, sync: bool = True) -> "Instr":
        """Scalar store-conditional; result is a success boolean."""
        instr = cls.__new__(cls)
        instr.kind = Kind.SC
        instr.count = 1
        instr.fn = None
        instr.addr = _check_addr(addr)
        instr.value = value
        instr.base = None
        instr.indices = None
        instr.values = None
        instr.mask = None
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def vload(cls, addr: int, width: int, sync: bool = False) -> "Instr":
        """Contiguous SIMD load of ``width`` words starting at ``addr``."""
        if width < 1:
            raise IsaError(f"vload width must be >= 1, got {width}")
        instr = cls.__new__(cls)
        instr.kind = Kind.VLOAD
        instr.count = width
        instr.fn = None
        instr.addr = _check_addr(addr)
        instr.value = None
        instr.base = None
        instr.indices = None
        instr.values = None
        instr.mask = None
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def vstore(
        cls,
        addr: int,
        values: Sequence,
        mask: Optional[Mask] = None,
        sync: bool = False,
    ) -> "Instr":
        """Contiguous SIMD store of ``values`` under ``mask``."""
        values = tuple(values)
        mask = _check_mask(mask, len(values))
        instr = cls.__new__(cls)
        instr.kind = Kind.VSTORE
        instr.count = 1
        instr.fn = None
        instr.addr = _check_addr(addr)
        instr.value = None
        instr.base = None
        instr.indices = None
        instr.values = values
        instr.mask = mask
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def vgather(
        cls,
        base: int,
        indices: Sequence[int],
        mask: Optional[Mask] = None,
        sync: bool = False,
    ) -> "Instr":
        """Indexed SIMD load: lane i reads ``base[indices[i]]``."""
        indices = _check_indices(indices)
        mask = _check_mask(mask, len(indices))
        instr = cls.__new__(cls)
        instr.kind = Kind.VGATHER
        instr.count = 1
        instr.fn = None
        instr.addr = None
        instr.value = None
        instr.base = _check_addr(base)
        instr.indices = indices
        instr.values = None
        instr.mask = mask
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def vscatter(
        cls,
        base: int,
        indices: Sequence[int],
        values: Sequence,
        mask: Optional[Mask] = None,
        sync: bool = False,
    ) -> "Instr":
        """Indexed SIMD store: lane i writes ``base[indices[i]]``.

        Behaviour under element aliasing is *undefined* in the paper's
        ISA for plain scatters; this model implements
        highest-lane-wins and kernels must not rely on it.
        """
        indices = _check_indices(indices)
        values = tuple(values)
        if len(values) != len(indices):
            raise IsaError(
                f"vscatter values/indices width mismatch: "
                f"{len(values)} vs {len(indices)}"
            )
        mask = _check_mask(mask, len(indices))
        instr = cls.__new__(cls)
        instr.kind = Kind.VSCATTER
        instr.count = 1
        instr.fn = None
        instr.addr = None
        instr.value = None
        instr.base = _check_addr(base)
        instr.indices = indices
        instr.values = values
        instr.mask = mask
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def vgatherlink(
        cls,
        base: int,
        indices: Sequence[int],
        mask: Optional[Mask] = None,
        sync: bool = True,
    ) -> "Instr":
        """The paper's ``vgatherlink Fdst, Vdst, base, Vindx, Fsrc``.

        Result is a ``(values, out_mask)`` pair: gathered lane values
        plus the mask of lanes whose reservations were obtained.
        """
        indices = _check_indices(indices)
        mask = _check_mask(mask, len(indices))
        instr = cls.__new__(cls)
        instr.kind = Kind.VGATHERLINK
        instr.count = 1
        instr.fn = None
        instr.addr = None
        instr.value = None
        instr.base = _check_addr(base)
        instr.indices = indices
        instr.values = None
        instr.mask = mask
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def vscattercond(
        cls,
        base: int,
        indices: Sequence[int],
        values: Sequence,
        mask: Optional[Mask] = None,
        sync: bool = True,
    ) -> "Instr":
        """The paper's ``vscattercond Fdst, Vsrc, base, Vindx, Fsrc``.

        Result is the output mask of lanes whose stores succeeded.
        Exactly one of any set of aliased lanes can succeed.
        """
        indices = _check_indices(indices)
        values = tuple(values)
        if len(values) != len(indices):
            raise IsaError(
                f"vscattercond values/indices width mismatch: "
                f"{len(values)} vs {len(indices)}"
            )
        mask = _check_mask(mask, len(indices))
        instr = cls.__new__(cls)
        instr.kind = Kind.VSCATTERCOND
        instr.count = 1
        instr.fn = None
        instr.addr = None
        instr.value = None
        instr.base = _check_addr(base)
        instr.indices = indices
        instr.values = values
        instr.mask = mask
        instr.sync = sync
        instr.group = None
        return instr

    @classmethod
    def barrier(cls, group: str = "all") -> "Instr":
        """Block until every thread in ``group`` arrives."""
        instr = cls.__new__(cls)
        instr.kind = Kind.BARRIER
        instr.count = 1
        instr.fn = None
        instr.addr = None
        instr.value = None
        instr.base = None
        instr.indices = None
        instr.values = None
        instr.mask = None
        instr.sync = True
        instr.group = group
        return instr


def _check_addr(addr: int) -> int:
    if not isinstance(addr, int) or addr < 0:
        raise IsaError(f"address must be a non-negative int, got {addr!r}")
    return addr


def _check_indices(indices: Sequence[int]) -> Tuple[int, ...]:
    indices = tuple(indices)
    if not indices:
        raise IsaError("index vector must have at least one lane")
    for idx in indices:
        if not isinstance(idx, int) or idx < 0:
            raise IsaError(f"indices must be non-negative ints, got {idx!r}")
    return indices


def _check_mask(mask: Optional[Mask], width: int) -> Mask:
    if mask is None:
        return Mask.all_ones(width)
    if not isinstance(mask, Mask):
        raise IsaError(f"expected Mask, got {type(mask).__name__}")
    if mask.width != width:
        raise IsaError(f"mask width {mask.width} != operand width {width}")
    return mask
