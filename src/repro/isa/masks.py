"""SIMD mask registers.

The paper's ISA (Section 2.1) controls per-lane execution through bit
masks held in dedicated mask registers.  :class:`Mask` models one such
register value: an immutable bitmask of ``width`` lanes, where bit ``i``
set means lane ``i`` participates.

Masks are a core currency of the GLSC instructions: ``vgatherlink`` and
``vscattercond`` take an input mask and produce an output mask of the
lanes that succeeded (Section 3.1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.errors import IsaError

__all__ = ["Mask"]


class Mask:
    """An immutable SIMD bitmask of a fixed lane width.

    Supports the boolean algebra the paper's code sequences use
    (``&``, ``|``, ``^``, ``~``), iteration over lane booleans, and
    construction helpers mirroring the pseudo-code (``ALL_ONES`` etc.).
    """

    __slots__ = ("_bits", "_width")

    def __init__(self, bits: int, width: int) -> None:
        if width <= 0:
            raise IsaError(f"mask width must be positive, got {width}")
        if bits < 0:
            raise IsaError(f"mask bits must be non-negative, got {bits}")
        if bits >> width:
            raise IsaError(
                f"mask bits {bits:#x} do not fit in width {width}"
            )
        self._bits = bits
        self._width = width

    # -- constructors ---------------------------------------------------

    @classmethod
    def _raw(cls, bits: int, width: int) -> "Mask":
        """Unvalidated construction for callers with in-range bits.

        The algebra operators and the GSU build masks whose bits are
        already guaranteed to fit the width; skipping ``__init__``'s
        checks keeps them off the hot path.
        """
        mask = object.__new__(cls)
        mask._bits = bits
        mask._width = width
        return mask

    @classmethod
    def all_ones(cls, width: int) -> "Mask":
        """The ``ALL_ONES`` immediate from the paper's pseudo-code."""
        return cls((1 << width) - 1, width)

    @classmethod
    def zeros(cls, width: int) -> "Mask":
        """A mask with no lanes active."""
        return cls(0, width)

    @classmethod
    def from_lanes(cls, lanes: Iterable[bool]) -> "Mask":
        """Build a mask from an iterable of per-lane booleans."""
        lane_list = list(lanes)
        if not lane_list:
            raise IsaError("cannot build a mask from zero lanes")
        bits = 0
        for i, lane in enumerate(lane_list):
            if lane:
                bits |= 1 << i
        return cls(bits, len(lane_list))

    @classmethod
    def single(cls, lane: int, width: int) -> "Mask":
        """A mask with exactly one lane active."""
        if not 0 <= lane < width:
            raise IsaError(f"lane {lane} out of range for width {width}")
        return cls(1 << lane, width)

    # -- properties -----------------------------------------------------

    @property
    def bits(self) -> int:
        """The raw bitmask value."""
        return self._bits

    @property
    def width(self) -> int:
        """Number of lanes."""
        return self._width

    def lane(self, i: int) -> bool:
        """Whether lane ``i`` is active."""
        if not 0 <= i < self._width:
            raise IsaError(f"lane {i} out of range for width {self._width}")
        return bool(self._bits >> i & 1)

    def lanes(self) -> List[bool]:
        """Per-lane booleans, lane 0 first."""
        return [bool(self._bits >> i & 1) for i in range(self._width)]

    def active_lanes(self) -> List[int]:
        """Indices of the active lanes, in ascending order."""
        return [i for i in range(self._width) if self._bits >> i & 1]

    def popcount(self) -> int:
        """Number of active lanes."""
        return bin(self._bits).count("1")

    def any(self) -> bool:
        """True if at least one lane is active."""
        return self._bits != 0

    def none(self) -> bool:
        """True if no lane is active."""
        return self._bits == 0

    def all(self) -> bool:
        """True if every lane is active."""
        return self._bits == (1 << self._width) - 1

    # -- algebra ----------------------------------------------------------

    def _check_peer(self, other: "Mask") -> None:
        if not isinstance(other, Mask):
            raise IsaError(f"expected Mask, got {type(other).__name__}")
        if other._width != self._width:
            raise IsaError(
                f"mask width mismatch: {self._width} vs {other._width}"
            )

    def __and__(self, other: "Mask") -> "Mask":
        self._check_peer(other)
        return Mask._raw(self._bits & other._bits, self._width)

    def __or__(self, other: "Mask") -> "Mask":
        self._check_peer(other)
        return Mask._raw(self._bits | other._bits, self._width)

    def __xor__(self, other: "Mask") -> "Mask":
        self._check_peer(other)
        return Mask._raw(self._bits ^ other._bits, self._width)

    def __invert__(self) -> "Mask":
        return Mask._raw(~self._bits & (1 << self._width) - 1, self._width)

    def andnot(self, other: "Mask") -> "Mask":
        """Lanes active in ``self`` but not in ``other``."""
        self._check_peer(other)
        return Mask._raw(self._bits & ~other._bits, self._width)

    def with_lane(self, i: int, value: bool) -> "Mask":
        """A copy with lane ``i`` forced to ``value``."""
        if not 0 <= i < self._width:
            raise IsaError(f"lane {i} out of range for width {self._width}")
        if value:
            return Mask(self._bits | 1 << i, self._width)
        return Mask(self._bits & ~(1 << i), self._width)

    # -- dunder housekeeping ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mask):
            return NotImplemented
        return self._bits == other._bits and self._width == other._width

    def __hash__(self) -> int:
        return hash((self._bits, self._width))

    def __iter__(self) -> Iterator[bool]:
        return iter(self.lanes())

    def __len__(self) -> int:
        return self._width

    def __bool__(self) -> bool:
        return self.any()

    def __repr__(self) -> str:
        lane_str = "".join("1" if b else "0" for b in reversed(self.lanes()))
        return f"Mask({lane_str})"
