"""Thread programs and the kernel-authoring DSL.

A *program* is a generator function taking a :class:`ThreadCtx`; the
generator yields :class:`~repro.isa.instructions.Instr` objects and
receives each instruction's result back from the simulator::

    def histogram(ctx):
        pixels = yield ctx.vload(input_base)
        ...

:class:`ThreadCtx` binds the thread's identity and the machine's SIMD
width so kernels read like the paper's pseudo-code (Figure 3) without
repeating the width on every instruction.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Generator, Optional, Sequence

from repro.errors import ProgramError
from repro.isa.instructions import Instr
from repro.isa.masks import Mask

__all__ = ["ThreadCtx", "Program", "check_program"]

#: A kernel program: generator function over a thread context.
Program = Callable[["ThreadCtx"], Generator[Instr, Any, None]]


class ThreadCtx:
    """Per-thread view of the machine handed to a kernel program.

    Provides the thread's identity (``tid`` of ``n_threads``), the SIMD
    width ``w``, and instruction constructors pre-bound to that width.
    """

    def __init__(self, tid: int, n_threads: int, simd_width: int) -> None:
        if not 0 <= tid < n_threads:
            raise ProgramError(f"tid {tid} out of range for {n_threads} threads")
        self.tid = tid
        self.n_threads = n_threads
        self.w = simd_width

    # -- masks -------------------------------------------------------------

    def all_ones(self) -> Mask:
        """A full mask at this machine's SIMD width."""
        return Mask.all_ones(self.w)

    def zeros(self) -> Mask:
        """An empty mask at this machine's SIMD width."""
        return Mask.zeros(self.w)

    def prefix_mask(self, n: int) -> Mask:
        """A mask with the first ``n`` lanes active (tail handling)."""
        n = max(0, min(n, self.w))
        return Mask((1 << n) - 1, self.w)

    # -- compute -------------------------------------------------------------

    def alu(self, count: int = 1, sync: bool = False) -> Instr:
        """``count`` scalar ALU operations."""
        return Instr.alu(count=count, sync=sync)

    def valu(self, fn: Callable, count: int = 1, sync: bool = False) -> Instr:
        """Vector ALU op; ``fn()`` computes the architectural result."""
        return Instr.valu(fn, count=count, sync=sync)

    def kalu(self, fn: Callable, sync: bool = False) -> Instr:
        """Mask-register op (same cost model as a vector ALU op)."""
        return Instr.valu(fn, count=1, sync=sync)

    # -- scalar memory -----------------------------------------------------

    def load(self, addr: int, sync: bool = False) -> Instr:
        """Scalar word load."""
        return Instr.load(addr, sync=sync)

    def store(self, addr: int, value, sync: bool = False) -> Instr:
        """Scalar word store."""
        return Instr.store(addr, value, sync=sync)

    def ll(self, addr: int) -> Instr:
        """Scalar load-linked."""
        return Instr.ll(addr)

    def sc(self, addr: int, value) -> Instr:
        """Scalar store-conditional."""
        return Instr.sc(addr, value)

    # -- SIMD memory -----------------------------------------------------------

    def vload(self, addr: int, sync: bool = False) -> Instr:
        """Contiguous SIMD-width load."""
        return Instr.vload(addr, self.w, sync=sync)

    def vstore(
        self, addr: int, values: Sequence, mask: Optional[Mask] = None,
        sync: bool = False,
    ) -> Instr:
        """Contiguous SIMD-width store under mask."""
        return Instr.vstore(addr, values, mask, sync=sync)

    def vgather(
        self, base: int, indices: Sequence[int], mask: Optional[Mask] = None,
        sync: bool = False,
    ) -> Instr:
        """Indexed SIMD load."""
        return Instr.vgather(base, indices, mask, sync=sync)

    def vscatter(
        self,
        base: int,
        indices: Sequence[int],
        values: Sequence,
        mask: Optional[Mask] = None,
        sync: bool = False,
    ) -> Instr:
        """Indexed SIMD store (aliasing undefined; avoid aliased lanes)."""
        return Instr.vscatter(base, indices, values, mask, sync=sync)

    def vgatherlink(
        self, base: int, indices: Sequence[int], mask: Optional[Mask] = None
    ) -> Instr:
        """Gather-linked (GLSC); result is ``(values, out_mask)``."""
        return Instr.vgatherlink(base, indices, mask)

    def vscattercond(
        self,
        base: int,
        indices: Sequence[int],
        values: Sequence,
        mask: Optional[Mask] = None,
    ) -> Instr:
        """Scatter-conditional (GLSC); result is the success mask."""
        return Instr.vscattercond(base, indices, values, mask)

    # -- synchronization substrate ---------------------------------------------

    def barrier(self, group: str = "all") -> Instr:
        """All-thread rendezvous."""
        return Instr.barrier(group)


def check_program(program: Program) -> None:
    """Validate that ``program`` is a generator function of one argument.

    Catching this early gives kernel authors a clear error instead of a
    confusing failure deep inside the machine loop.
    """
    if not callable(program):
        raise ProgramError(f"program must be callable, got {type(program)!r}")
    if inspect.isgeneratorfunction(program):
        return
    # Allow callables (e.g. functools.partial) that *return* generators;
    # those can only be checked at call time, so accept them here.
    if isinstance(program, type):
        raise ProgramError("program must be a generator function, not a class")
