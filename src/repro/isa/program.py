"""Thread programs and the kernel-authoring DSL.

A *program* is a generator function taking a :class:`ThreadCtx`; the
generator yields :class:`~repro.isa.instructions.Instr` objects and
receives each instruction's result back from the simulator::

    def histogram(ctx):
        pixels = yield ctx.vload(input_base)
        ...

:class:`ThreadCtx` binds the thread's identity and the machine's SIMD
width so kernels read like the paper's pseudo-code (Figure 3) without
repeating the width on every instruction.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Generator, Optional, Sequence

from repro.errors import ProgramError
from repro.isa.instructions import Instr
from repro.isa.masks import Mask

__all__ = ["ThreadCtx", "Program", "check_program"]

#: A kernel program: generator function over a thread context.
Program = Callable[["ThreadCtx"], Generator[Instr, Any, None]]


class ThreadCtx:
    """Per-thread view of the machine handed to a kernel program.

    Provides the thread's identity (``tid`` of ``n_threads``), the SIMD
    width ``w``, and instruction constructors pre-bound to that width.
    """

    def __init__(self, tid: int, n_threads: int, simd_width: int) -> None:
        if not 0 <= tid < n_threads:
            raise ProgramError(f"tid {tid} out of range for {n_threads} threads")
        self.tid = tid
        self.n_threads = n_threads
        self.w = simd_width

    # -- masks -------------------------------------------------------------

    def all_ones(self) -> Mask:
        """A full mask at this machine's SIMD width."""
        return Mask.all_ones(self.w)

    def zeros(self) -> Mask:
        """An empty mask at this machine's SIMD width."""
        return Mask.zeros(self.w)

    def prefix_mask(self, n: int) -> Mask:
        """A mask with the first ``n`` lanes active (tail handling)."""
        n = max(0, min(n, self.w))
        return Mask((1 << n) - 1, self.w)

    # -- compute -------------------------------------------------------------

    # Width-free constructors alias the Instr classmethods directly:
    # every instruction a kernel issues goes through one of these, so
    # the delegation frame is worth eliminating.  Signatures (including
    # defaults such as ``sync=True`` on ll/sc) match the old wrappers.

    alu = staticmethod(Instr.alu)
    valu = staticmethod(Instr.valu)

    def kalu(self, fn: Callable, sync: bool = False) -> Instr:
        """Mask-register op (same cost model as a vector ALU op)."""
        return Instr.valu(fn, count=1, sync=sync)

    # -- scalar memory -----------------------------------------------------

    load = staticmethod(Instr.load)
    store = staticmethod(Instr.store)
    ll = staticmethod(Instr.ll)
    sc = staticmethod(Instr.sc)

    # -- SIMD memory -----------------------------------------------------------

    def vload(self, addr: int, sync: bool = False) -> Instr:
        """Contiguous SIMD-width load."""
        return Instr.vload(addr, self.w, sync=sync)

    vstore = staticmethod(Instr.vstore)
    vgather = staticmethod(Instr.vgather)
    vscatter = staticmethod(Instr.vscatter)
    vgatherlink = staticmethod(Instr.vgatherlink)
    vscattercond = staticmethod(Instr.vscattercond)

    # -- synchronization substrate ---------------------------------------------

    barrier = staticmethod(Instr.barrier)


def check_program(program: Program) -> None:
    """Validate that ``program`` is a generator function of one argument.

    Catching this early gives kernel authors a clear error instead of a
    confusing failure deep inside the machine loop.
    """
    if not callable(program):
        raise ProgramError(f"program must be callable, got {type(program)!r}")
    if inspect.isgeneratorfunction(program):
        return
    # Allow callables (e.g. functools.partial) that *return* generators;
    # those can only be checked at call time, so accept them here.
    if isinstance(program, type):
        raise ProgramError("program must be a generator function, not a class")
