"""SIMD vector register values.

A vector register holds ``width`` 32-bit data elements (the paper's SIMD
model, Section 2).  We model the value as an immutable tuple of Python
numbers; the simulator does not bit-pack because the timing model only
needs element identity, not encodings.

Helper functions implement the masked element-wise operations the
benchmark kernels need (``vinc``, ``vmod``, ``vcompareequal``, ...).
Masked-off lanes always pass through unchanged, matching masked SIMD
semantics (Section 2.1).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple, Union

from repro.errors import IsaError
from repro.isa.masks import Mask

__all__ = [
    "Vector",
    "vbroadcast",
    "viota",
    "vmap",
    "vmap2",
    "vadd",
    "vsub",
    "vmul",
    "vinc",
    "vmod",
    "vmin",
    "vmax",
    "vcompare_equal",
    "vblend",
]

Number = Union[int, float]
Vector = Tuple[Number, ...]


def _as_vector(values: Sequence[Number]) -> Vector:
    return tuple(values)


def vbroadcast(value: Number, width: int) -> Vector:
    """A vector with every lane equal to ``value``."""
    if width <= 0:
        raise IsaError(f"vector width must be positive, got {width}")
    return (value,) * width


def viota(width: int, start: Number = 0, step: Number = 1) -> Vector:
    """A vector of lane indices: ``start, start+step, ...``."""
    if width <= 0:
        raise IsaError(f"vector width must be positive, got {width}")
    return tuple(start + i * step for i in range(width))


def _check_widths(*vectors: Sequence[Number]) -> int:
    widths = {len(v) for v in vectors}
    if len(widths) != 1:
        raise IsaError(f"vector width mismatch: {sorted(widths)}")
    (width,) = widths
    if width == 0:
        raise IsaError("zero-width vector")
    return width


def vmap(
    fn: Callable[[Number], Number],
    vec: Sequence[Number],
    mask: Mask = None,
) -> Vector:
    """Apply ``fn`` lane-wise under ``mask`` (inactive lanes unchanged)."""
    width = _check_widths(vec)
    if mask is None:
        return tuple(fn(x) for x in vec)
    if mask.width != width:
        raise IsaError(f"mask width {mask.width} != vector width {width}")
    return tuple(
        fn(x) if mask.lane(i) else x for i, x in enumerate(vec)
    )


def vmap2(
    fn: Callable[[Number, Number], Number],
    a: Sequence[Number],
    b: Sequence[Number],
    mask: Mask = None,
) -> Vector:
    """Apply binary ``fn`` lane-wise under ``mask`` (inactive lanes keep ``a``)."""
    width = _check_widths(a, b)
    if mask is None:
        return tuple(fn(x, y) for x, y in zip(a, b))
    if mask.width != width:
        raise IsaError(f"mask width {mask.width} != vector width {width}")
    return tuple(
        fn(x, y) if mask.lane(i) else x
        for i, (x, y) in enumerate(zip(a, b))
    )


def vadd(a: Sequence[Number], b: Sequence[Number], mask: Mask = None) -> Vector:
    """Lane-wise addition under mask."""
    return vmap2(lambda x, y: x + y, a, b, mask)


def vsub(a: Sequence[Number], b: Sequence[Number], mask: Mask = None) -> Vector:
    """Lane-wise subtraction under mask."""
    return vmap2(lambda x, y: x - y, a, b, mask)


def vmul(a: Sequence[Number], b: Sequence[Number], mask: Mask = None) -> Vector:
    """Lane-wise multiplication under mask."""
    return vmap2(lambda x, y: x * y, a, b, mask)


def vinc(vec: Sequence[Number], mask: Mask = None) -> Vector:
    """The paper's ``vinc``: lane-wise increment under mask."""
    return vmap(lambda x: x + 1, vec, mask)


def vmod(vec: Sequence[Number], divisor: int, mask: Mask = None) -> Vector:
    """The paper's ``vmod``: lane-wise integer modulo under mask."""
    if divisor == 0:
        raise IsaError("vmod divisor must be non-zero")
    return vmap(lambda x: int(x) % divisor, vec, mask)


def vmin(a: Sequence[Number], b: Sequence[Number], mask: Mask = None) -> Vector:
    """Lane-wise minimum under mask."""
    return vmap2(min, a, b, mask)


def vmax(a: Sequence[Number], b: Sequence[Number], mask: Mask = None) -> Vector:
    """Lane-wise maximum under mask."""
    return vmap2(max, a, b, mask)


def vcompare_equal(
    a: Sequence[Number], b: Sequence[Number], mask: Mask = None
) -> Mask:
    """The paper's ``vcompareequal``: lane-wise equality to a mask.

    Lanes outside ``mask`` compare as False, matching the use in the
    VLOCK macro (Figure 3B) where only linked lanes are considered.
    """
    width = _check_widths(a, b)
    if mask is None:
        mask = Mask.all_ones(width)
    if mask.width != width:
        raise IsaError(f"mask width {mask.width} != vector width {width}")
    return Mask.from_lanes(
        mask.lane(i) and x == y for i, (x, y) in enumerate(zip(a, b))
    )


def vblend(
    a: Sequence[Number], b: Sequence[Number], mask: Mask
) -> Vector:
    """Select ``b`` where mask is set, else ``a``."""
    width = _check_widths(a, b)
    if mask.width != width:
        raise IsaError(f"mask width {mask.width} != vector width {width}")
    return tuple(
        y if mask.lane(i) else x for i, (x, y) in enumerate(zip(a, b))
    )
