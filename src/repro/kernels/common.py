"""Shared kernel-programming idioms.

These generator subroutines encode the paper's code sequences once so
every benchmark uses identical atomic-operation instruction counts:

* :func:`scalar_atomic_update` — the Base ll/sc read-modify-write loop
  (Figure 2);
* :func:`scalar_lock_acquire` / :func:`scalar_lock_release` — Base
  test-and-set locks built from ll/sc;
* :func:`glsc_vector_update` — the GLSC reduction loop (Figure 3A);
* :func:`vlock` / :func:`vunlock` — the GLSC vector-lock macros
  (Figure 3B);
* :class:`KernelBase` — the harness contract each benchmark implements.

Use them with ``yield from`` inside a kernel program.
"""

from __future__ import annotations

import abc
import copy
from typing import Callable, List, Sequence, Tuple

from repro.errors import ConfigError, VerificationError
from repro.isa.masks import Mask
from repro.isa.program import ThreadCtx
from repro.mem.image import ArrayView, MemoryImage

__all__ = [
    "KernelBase",
    "MAX_SIMD_WIDTH",
    "padded",
    "chunk",
    "scalar_atomic_update",
    "scalar_lock_acquire",
    "scalar_lock_release",
    "scalar_paired_lock_apply",
    "glsc_vector_update",
    "glsc_paired_lock_apply",
    "vlock",
    "vunlock",
]

#: The two benchmark variants the paper compares.
VARIANTS = ("base", "glsc")


#: Maximum SIMD width the kernels support; arrays read with vector
#: loads are padded to a multiple of this so tail loads read zeros
#: instead of neighbouring allocations.
MAX_SIMD_WIDTH = 16


def padded(values: Sequence) -> List:
    """``values`` extended with zeros to a multiple of MAX_SIMD_WIDTH."""
    values = list(values)
    remainder = len(values) % MAX_SIMD_WIDTH
    if remainder:
        values.extend([0] * (MAX_SIMD_WIDTH - remainder))
    return values


def chunk(total: int, n_threads: int, tid: int) -> Tuple[int, int]:
    """Block-partition ``total`` items: thread ``tid``'s [lo, hi) range.

    The paper always splits work evenly between threads to minimize
    lock/reduction contention; a contiguous block split also preserves
    spatial locality for the prefetcher.
    """
    base = total // n_threads
    extra = total % n_threads
    lo = tid * base + min(tid, extra)
    hi = lo + base + (1 if tid < extra else 0)
    return lo, hi


def scalar_atomic_update(ctx: ThreadCtx, addr: int, fn: Callable):
    """Base read-modify-write: the ll/sc retry loop of Figure 2.

    ``fn(old) -> new`` is the modify step (one ALU op).  Returns the
    value that was stored.
    """
    while True:
        value = yield ctx.ll(addr)
        yield ctx.alu(1, sync=True)  # the modify operation
        new = fn(value)
        ok = yield ctx.sc(addr, new)
        if ok:
            return new


def scalar_lock_acquire(ctx: ThreadCtx, lock_addr: int):
    """Base test-and-set lock acquire via ll/sc; spins until held."""
    while True:
        value = yield ctx.ll(lock_addr)
        yield ctx.alu(1, sync=True)  # test
        if value == 0:
            ok = yield ctx.sc(lock_addr, 1)
            if ok:
                return


def scalar_lock_release(ctx: ThreadCtx, lock_addr: int):
    """Base lock release: a plain store of 0."""
    yield ctx.store(lock_addr, 0, sync=True)


def glsc_vector_update(
    ctx: ThreadCtx,
    base: int,
    indices: Sequence[int],
    update: Callable[[Tuple, Mask], Tuple],
    todo: Mask = None,
):
    """The GLSC reduction loop of Figure 3A.

    Repeats gather-link / modify / scatter-conditional until every lane
    in ``todo`` (default: all lanes) has completed its atomic update.
    ``update(values, got_mask) -> new_values`` is the vector modify
    step (one VALU op); it must leave lanes outside ``got_mask``
    unchanged.
    """
    if todo is None:
        todo = ctx.all_ones()
    while todo.any():
        vals, got = yield ctx.vgatherlink(base, indices, todo)
        new = yield ctx.valu(lambda v=vals, g=got: update(v, g), sync=True)
        ok = yield ctx.vscattercond(base, indices, new, got)
        todo = yield ctx.kalu(lambda t=todo, o=ok: t.andnot(o), sync=True)


def vlock(ctx: ThreadCtx, lock_base: int, indices: Sequence[int], mask: Mask):
    """One best-effort attempt at the VLOCK macro (Figure 3B).

    Tries to acquire the test-and-set locks ``lock_base[indices]`` for
    the lanes in ``mask``; returns the mask of locks acquired.  Aliased
    lanes get at most one winner; contended or lost-reservation lanes
    simply miss out — callers loop until done, exactly as the paper's
    histogram-with-locks example does.
    """
    vals, linked = yield ctx.vgatherlink(lock_base, indices, mask)
    avail = yield ctx.kalu(
        lambda v=vals, l=linked: Mask.from_lanes(
            l.lane(i) and v[i] == 0 for i in range(l.width)
        ),
        sync=True,
    )
    ones = (1,) * mask.width
    got = yield ctx.vscattercond(lock_base, indices, ones, avail)
    return got


def vunlock(ctx: ThreadCtx, lock_base: int, indices: Sequence[int], mask: Mask):
    """The VUNLOCK macro (Figure 3B): scatter zeros to held locks."""
    if mask.none():
        return
    zeros = (0,) * mask.width
    yield ctx.vscatter(lock_base, indices, zeros, mask, sync=True)


def scalar_paired_lock_apply(
    ctx: ThreadCtx,
    lock_base: int,
    a: int,
    b: int,
    work,
):
    """Base two-lock critical section over a single element.

    Acquires the locks for objects ``a`` and ``b`` in index order
    (global ordering prevents deadlock), runs ``work`` (a generator),
    and releases in reverse order.  The shipped GPS/MFP Base variants
    use the stronger whole-vector sorted acquisition instead; this
    helper remains the canonical scalar pattern (used by the
    ``vector_locks`` example and available to client kernels).
    """
    first, second = (a, b) if a < b else (b, a)
    yield from scalar_lock_acquire(ctx, lock_base + first * 4)
    yield from scalar_lock_acquire(ctx, lock_base + second * 4)
    yield from work()
    yield from scalar_lock_release(ctx, lock_base + second * 4)
    yield from scalar_lock_release(ctx, lock_base + first * 4)


def glsc_paired_lock_apply(
    ctx: ThreadCtx,
    lock_base: int,
    a_idx: Sequence[int],
    b_idx: Sequence[int],
    todo: Mask,
    work,
):
    """GLSC two-lock critical section over a SIMD group (GPS/MFP).

    Best-effort: VLOCK the ``a`` objects, then the ``b`` objects of the
    lanes that got their ``a`` lock; lanes holding both run ``work``
    (a generator taking the winner mask); all acquired locks are
    released and the remaining lanes retry.  There is no hold-and-wait,
    so no deadlock — the trade the paper's ISA design makes explicit
    (Section 3.2).

    Callers must guarantee no two lanes of one group share an object
    (the paper's independent-constraint reordering); aliasing across
    threads is resolved by the locks themselves.

    Two livelock defences, both necessary in practice:

    * each lane acquires its pair in *global index order* (min object
      first) — two threads contending for an overlapping pair then
      collide on the first lock, and the winner's second lock cannot
      be held by the loser (removes AB-BA ping-pong cycles);
    * barren rounds back off for a deterministically *pseudo-random*,
      exponentially escalating number of cycles.  A constant per-thread
      delay is not enough: SMT threads share their core's GSU address
      generator, whose queueing absorbs small fixed offsets and
      re-phase-locks the spinners (observed as a bit-exact periodic
      ping-pong on 1-core x 4-thread GPS).  Hashing (tid, round) varies
      each thread's loop period every round, so no resonance survives,
      while the simulation stays fully deterministic.
    """
    # Lane-wise (min, max) lock ordering; one SIMD select pair.
    lo_idx = yield ctx.valu(
        lambda: [min(a, b) for a, b in zip(a_idx, b_idx)], sync=True
    )
    hi_idx = yield ctx.valu(
        lambda: [max(a, b) for a, b in zip(a_idx, b_idx)], sync=True
    )
    backoff = 0
    rounds = 0
    while todo.any():
        first = yield from vlock(ctx, lock_base, lo_idx, todo)
        both = yield from vlock(ctx, lock_base, hi_idx, first)
        if both.any():
            yield from work(both)
            backoff = 0
        yield from vunlock(ctx, lock_base, hi_idx, both)
        yield from vunlock(ctx, lock_base, lo_idx, first)
        todo = yield ctx.kalu(lambda t=todo, f=both: t.andnot(f), sync=True)
        rounds += 1
        if todo.any() and both.none():
            backoff = min(backoff + 1, 6)
            mixed = (ctx.tid * 0x9E3779B1 + rounds * 0x85EBCA6B) & 0xFFFFFFFF
            mixed ^= mixed >> 15
            yield ctx.alu(1 + mixed % (1 << backoff), sync=True)


def _rebind_views(value, image: MemoryImage):
    """``value`` with every ArrayView inside re-targeted at ``image``.

    Returns ``value`` itself (identity-preserved) when nothing inside
    is a view, so :meth:`KernelBase.rebound` leaves plain attributes —
    datasets, parameters — shared with the template kernel.
    """
    if isinstance(value, ArrayView):
        return ArrayView(image, value.base, value.length)
    if isinstance(value, list):
        rebound = [_rebind_views(item, image) for item in value]
        if any(a is not b for a, b in zip(rebound, value)):
            return rebound
        return value
    if isinstance(value, tuple):
        rebound = tuple(_rebind_views(item, image) for item in value)
        if any(a is not b for a, b in zip(rebound, value)):
            return rebound
        return value
    if isinstance(value, dict):
        rebound = {
            key: _rebind_views(item, image) for key, item in value.items()
        }
        if any(rebound[key] is not value[key] for key in value):
            return rebound
        return value
    return value


class KernelBase(abc.ABC):
    """Contract every benchmark kernel implements.

    Lifecycle: construct with dataset parameters, :meth:`allocate` into
    a machine's memory image, hand :meth:`program` to
    ``Machine.add_program`` for every hardware thread, run, then
    :meth:`verify` against the kernel's oracle.  Instances are
    one-shot, like machines.
    """

    #: short name, e.g. "hip" (set by subclasses)
    name: str = "?"
    #: human title, e.g. "Histogram for Image Processing"
    title: str = "?"
    #: Table 3 "Atomic Operation" column
    atomic_op: str = "?"

    def __init__(self) -> None:
        self._allocated = False

    @abc.abstractmethod
    def allocate(self, image: MemoryImage) -> None:
        """Build the kernel's data structures in simulated memory."""

    @abc.abstractmethod
    def base_program(self, ctx: ThreadCtx):
        """The Base variant (scalar ll/sc atomics), one thread."""

    @abc.abstractmethod
    def glsc_program(self, ctx: ThreadCtx):
        """The GLSC variant (vgatherlink/vscattercond), one thread."""

    @abc.abstractmethod
    def verify(self) -> None:
        """Compare simulated output with the oracle; raise on mismatch."""

    def program(self, variant: str):
        """The program generator function for ``variant``."""
        if variant not in VARIANTS:
            raise ConfigError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        return self.base_program if variant == "base" else self.glsc_program

    def rebound(self, image: MemoryImage) -> "KernelBase":
        """A copy of this (allocated) kernel with its views on ``image``.

        The batched backend allocates each distinct (kernel, dataset,
        thread-count, geometry) combination once into a template image
        and hydrates per-machine copies from the snapshot; ``rebound``
        produces the kernel instance whose :meth:`verify` and programs
        read *that machine's* image.  The clone shares the (read-only)
        dataset objects and allocation layout — only the
        :class:`~repro.mem.image.ArrayView` attributes are rebuilt,
        wherever they live (attributes, lists, tuples, dict values).

        ``image`` must have been hydrated from this kernel's own
        allocation snapshot, so every view address stays valid.
        """
        self._require_allocated()
        clone = copy.copy(self)
        for name, value in vars(self).items():
            replacement = _rebind_views(value, image)
            if replacement is not value:
                setattr(clone, name, replacement)
        return clone

    # -- helpers for subclasses ----------------------------------------------

    def _mark_allocated(self) -> None:
        if self._allocated:
            raise ConfigError(f"kernel {self.name} already allocated")
        self._allocated = True

    def _require_allocated(self) -> None:
        if not self._allocated:
            raise ConfigError(f"kernel {self.name} not allocated yet")

    @staticmethod
    def _check_close(
        actual: List, expected: List, what: str, rel_tol: float = 1e-9
    ) -> None:
        """Verify with a tight relative tolerance.

        For kernels whose value chains outgrow exact float64 dyadics
        (FS's substitution recurrences).  The tolerance is far below
        the size of any single atomic contribution, so a lost update
        still fails loudly; only benign summation-order noise passes.
        """
        if len(actual) != len(expected):
            raise VerificationError(
                f"{what}: length {len(actual)} != {len(expected)}"
            )
        for i, (a, e) in enumerate(zip(actual, expected)):
            scale = max(abs(a), abs(e), 1.0)
            if abs(a - e) > rel_tol * scale:
                raise VerificationError(
                    f"{what}[{i}] = {a!r}, expected {e!r}"
                )

    @staticmethod
    def _check_equal(actual: List, expected: List, what: str) -> None:
        if len(actual) != len(expected):
            raise VerificationError(
                f"{what}: length {len(actual)} != {len(expected)}"
            )
        for i, (a, e) in enumerate(zip(actual, expected)):
            if a != e:
                raise VerificationError(
                    f"{what}[{i}] = {a!r}, expected {e!r}"
                )
