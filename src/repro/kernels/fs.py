"""FS — Forward (sparse lower-) Triangular Solve.

Paper (Table 2): solves ``L x = y`` for a sparse lower-triangular
system arising in a direct solver.  The matrix is divided into dense
subblocks; thread-level parallelism follows a block dependence graph,
SIMD runs inside each subblock's dense matrix-vector work, and the
partial products are reduced into the shared right-hand side with
*atomic floating-point subtractions* (Table 3: "Floating-point
Subtract").

Schedule: block columns are processed in dependence levels.  Within a
level each thread (a) solves its share of the level's diagonal blocks
by forward substitution and publishes the new ``x`` entries, then
after a barrier (b) computes its share of the off-diagonal block
contributions ``L[i,j] @ x[j]`` and subtracts them from ``y[i]``
atomically — Base with scalar ll/sc per element, GLSC with the
Figure 3A loop over the row-index vector.  Two blocks in the same
level that target the same row block contend on those ``y`` words,
which is where GLSC's overlap pays.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.program import ThreadCtx
from repro.kernels.common import (
    KernelBase,
    glsc_vector_update,
    scalar_atomic_update,
)
from repro.mem.image import MemoryImage
from repro.workloads.sparse import block_triangular, forward_substitute

__all__ = ["Fs"]


class Fs(KernelBase):
    """Level-scheduled block triangular solve with atomic reductions."""

    name = "fs"
    title = "Forward Triangular Solve"
    atomic_op = "Floating-point Subtract"

    def __init__(
        self,
        n_threads: int,
        *,
        n_blocks: int,
        block: int,
        fill: float,
        seed: int,
    ) -> None:
        super().__init__()
        self.n_threads = n_threads
        self.system = block_triangular(n_blocks, block, fill, seed)
        self.schedule = self.system.level_schedule()
        # Contribution blocks grouped by the level at which they run.
        self._level_blocks: List[List[Tuple[int, int]]] = [
            sorted(
                (i, j)
                for (i, j) in self.system.off_blocks
                if self.system.levels[j] == level
            )
            for level in range(len(self.schedule))
        ]

    def allocate(self, image: MemoryImage) -> None:
        self._mark_allocated()
        system = self.system
        block = system.block
        self.m_y = image.alloc_array(list(system.rhs), name="fs.y")
        self.m_x = image.alloc_zeros(system.n, name="fs.x")
        self.m_diag = [
            image.alloc_array(
                [float(v) for row in system.diag[j] for v in row],
                name=f"fs.diag[{j}]",
            )
            for j in range(system.n_blocks)
        ]
        self.m_off: Dict[Tuple[int, int], object] = {
            key: image.alloc_array(
                [float(v) for row in blk for v in row],
                name=f"fs.off[{key[0]},{key[1]}]",
            )
            for key, blk in sorted(system.off_blocks.items())
        }

    # -- pieces shared by both variants ----------------------------------

    def _solve_diag(self, ctx: ThreadCtx, j: int):
        """Forward-substitute block column ``j`` and publish x."""
        block = self.system.block
        lo = j * block
        rhs = []
        for off in range(0, block, ctx.w):
            vals = yield ctx.vload(self.m_y.addr(lo + off))
            rhs.extend(vals[: min(ctx.w, block - off)])
        lower = self.system.diag[j]
        for r in range(block):
            # One row of substitution: load the row, one fused
            # multiply-accumulate chain, one divide.
            for off in range(0, r + 1, ctx.w):
                yield ctx.vload(self.m_diag[j].addr(r * block + off))
            yield ctx.valu(lambda: None, count=max(1, (r + 1) // max(ctx.w, 1)))
        xs = forward_substitute(lower, rhs)
        for off in range(0, block, ctx.w):
            chunk_vals = list(xs[off : off + ctx.w])
            chunk_vals += [0.0] * (ctx.w - len(chunk_vals))
            yield ctx.vstore(
                self.m_x.addr(lo + off),
                chunk_vals,
                ctx.prefix_mask(min(ctx.w, block - off)),
            )
        yield ctx.alu(1)  # loop bookkeeping

    def _block_contribution(self, ctx: ThreadCtx, i: int, j: int):
        """Compute c = L[i,j] @ x[j]; returns (row indices, c values)."""
        block = self.system.block
        xs = []
        for off in range(0, block, ctx.w):
            vals = yield ctx.vload(self.m_x.addr(j * block + off))
            xs.extend(vals[: min(ctx.w, block - off)])
        matrix = self.system.off_blocks[(i, j)]
        contribution = []
        for r in range(block):
            for off in range(0, block, ctx.w):
                yield ctx.vload(self.m_off[(i, j)].addr(r * block + off))
            yield ctx.valu(lambda: None, count=max(1, block // max(ctx.w, 1)))
            contribution.append(
                sum(matrix[r][k] * xs[k] for k in range(block))
            )
        rows = [i * block + r for r in range(block)]
        return rows, contribution

    # -- variants -----------------------------------------------------------

    def base_program(self, ctx: ThreadCtx):
        self._require_allocated()
        for level, cols in enumerate(self.schedule):
            for j in cols[ctx.tid :: ctx.n_threads]:
                yield from self._solve_diag(ctx, j)
            yield ctx.barrier()
            blocks = self._level_blocks[level]
            for (i, j) in blocks[ctx.tid :: ctx.n_threads]:
                rows, contribution = yield from self._block_contribution(
                    ctx, i, j
                )
                for r, c in zip(rows, contribution):
                    yield from scalar_atomic_update(
                        ctx, self.m_y.addr(r), lambda old, c=c: old - c
                    )
                yield ctx.alu(1)  # loop bookkeeping
            yield ctx.barrier()

    def glsc_program(self, ctx: ThreadCtx):
        self._require_allocated()
        for level, cols in enumerate(self.schedule):
            for j in cols[ctx.tid :: ctx.n_threads]:
                yield from self._solve_diag(ctx, j)
            yield ctx.barrier()
            blocks = self._level_blocks[level]
            for (i, j) in blocks[ctx.tid :: ctx.n_threads]:
                rows, contribution = yield from self._block_contribution(
                    ctx, i, j
                )
                for off in range(0, len(rows), ctx.w):
                    idx = rows[off : off + ctx.w]
                    vals = contribution[off : off + ctx.w]
                    mask = ctx.prefix_mask(len(idx))
                    idx += [idx[-1]] * (ctx.w - len(idx))
                    vals += [0.0] * (ctx.w - len(vals))
                    yield from glsc_vector_update(
                        ctx,
                        self.m_y.base,
                        idx,
                        lambda gathered, got, v=vals: tuple(
                            g - v[k] if got.lane(k) else g
                            for k, g in enumerate(gathered)
                        ),
                        todo=mask,
                    )
                yield ctx.alu(1)  # loop bookkeeping
            yield ctx.barrier()

    def verify(self) -> None:
        self._require_allocated()
        expected = self.system.solve_oracle()
        actual = [self.m_x[i] for i in range(self.system.n)]
        # Substitution chains through many levels outgrow exact float64
        # dyadics, so FS verifies with a tolerance far below the size
        # of any single atomic contribution.
        self._check_close(actual, expected, "x")
