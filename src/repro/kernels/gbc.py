"""GBC — Grid-based Collision Detection (broad phase).

Paper (Table 2): each object is mapped into (potentially multiple)
grid cells; the objects in a cell are kept in a linked list; insertion
is protected by a per-cell lock ("single lock critical section").
Work is divided among threads and processed SIMD-width at a time.

The work list is a flat sequence of *insertions* — (object, cell)
pairs, one per cell an object overlaps — and the per-cell lists are
built from link *nodes*, one per insertion (an object straddling two
cells appears in both lists through two nodes, as real broad phases
do).

* Base variant: per insertion, a scalar ll/sc test-and-set lock around
  a three-step list push (read head, link node, store new head).
* GLSC variant: the Figure 3B pattern — VLOCK a SIMD group of cells,
  push all nodes whose lock was acquired using masked SIMD gathers and
  scatters, VUNLOCK, retry the rest.

Collision scenes cluster objects into hot cells, so lanes of one SIMD
group frequently alias on the same cell — the source of GBC's ~31-34%
GLSC element failure rate in Table 4.

Linked-list encoding: ``head[c]`` and ``next[node]`` store node id + 1,
with 0 meaning "empty"/"end of list"; ``node_obj[node]`` names the
object a node represents.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import VerificationError
from repro.isa.program import ThreadCtx
from repro.kernels.common import (
    KernelBase,
    chunk,
    padded,
    scalar_lock_acquire,
    scalar_lock_release,
    vlock,
    vunlock,
)
from repro.mem.image import MemoryImage
from repro.workloads.grids import collision_scene

__all__ = ["Gbc"]


class Gbc(KernelBase):
    """Parallel linked-list insertion under per-cell locks."""

    name = "gbc"
    title = "Grid-based Collision Detection"
    atomic_op = "Single Lock Critical Section"

    def __init__(
        self,
        n_threads: int,
        *,
        n_objects: int,
        n_cells: int,
        run_mean: float,
        seed: int,
        straddle_fraction: float = 0.25,
    ) -> None:
        super().__init__()
        self.n_threads = n_threads
        self.scene = collision_scene(
            n_objects, n_cells, run_mean, seed,
            straddle_fraction=straddle_fraction,
        )

    def allocate(self, image: MemoryImage) -> None:
        self._mark_allocated()
        insertions = self.scene.insertions
        self.m_cell = image.alloc_array(padded([c for _, c in insertions]),
                                        name="gbc.cell")
        self.m_obj = image.alloc_array(padded([o for o, _ in insertions]),
                                       name="gbc.obj")
        self.m_lock = image.alloc_zeros(self.scene.n_cells, name="gbc.lock")
        self.m_head = image.alloc_zeros(self.scene.n_cells, name="gbc.head")
        self.m_next = image.alloc_zeros(self.scene.n_insertions,
                                        name="gbc.next")
        self.m_node_obj = image.alloc_zeros(self.scene.n_insertions,
                                            name="gbc.node_obj")

    def base_program(self, ctx: ThreadCtx):
        self._require_allocated()
        lo, hi = chunk(self.scene.n_insertions, ctx.n_threads, ctx.tid)
        for i in range(lo, hi, ctx.w):
            active = min(ctx.w, hi - i)
            cells = yield ctx.vload(self.m_cell.addr(i))
            objs = yield ctx.vload(self.m_obj.addr(i))
            # Bounding-box to grid-cell mapping for the SIMD group
            # (vectorized in both variants).
            yield ctx.valu(lambda: None, count=3)
            for lane in range(active):
                node = i + lane
                cell = int(cells[lane])
                yield ctx.store(self.m_node_obj.addr(node), objs[lane])
                yield from scalar_lock_acquire(ctx, self.m_lock.addr(cell))
                head = yield ctx.load(self.m_head.addr(cell), sync=True)
                yield ctx.store(self.m_next.addr(node), head, sync=True)
                yield ctx.store(self.m_head.addr(cell), node + 1, sync=True)
                yield from scalar_lock_release(ctx, self.m_lock.addr(cell))
            yield ctx.alu(1)  # loop bookkeeping

    def glsc_program(self, ctx: ThreadCtx):
        self._require_allocated()
        lo, hi = chunk(self.scene.n_insertions, ctx.n_threads, ctx.tid)
        for i in range(lo, hi, ctx.w):
            cells_v = yield ctx.vload(self.m_cell.addr(i))
            objs = yield ctx.vload(self.m_obj.addr(i))
            # Bounding-box to grid-cell mapping for the SIMD group.
            yield ctx.valu(lambda: None, count=3)
            cells = [int(c) for c in cells_v]
            nodes = list(range(i, i + ctx.w))
            mask = ctx.prefix_mask(min(ctx.w, hi - i))
            yield ctx.vscatter(self.m_node_obj.base, nodes, objs, mask)
            todo = mask
            while todo.any():
                got = yield from vlock(ctx, self.m_lock.base, cells, todo)
                if got.any():
                    # Critical section in SIMD: push nodes whose cell
                    # lock we hold.  Aliased lanes were filtered by
                    # VLOCK, so the scatters below never alias.
                    heads = yield ctx.vgather(
                        self.m_head.base, cells, got, sync=True
                    )
                    yield ctx.vscatter(
                        self.m_next.base, nodes, heads, got, sync=True
                    )
                    new_heads = yield ctx.valu(
                        lambda n=nodes: tuple(node + 1 for node in n),
                        sync=True,
                    )
                    yield ctx.vscatter(
                        self.m_head.base, cells, new_heads, got, sync=True
                    )
                    yield from vunlock(ctx, self.m_lock.base, cells, got)
                todo = yield ctx.kalu(
                    lambda t=todo, g=got: t.andnot(g), sync=True
                )
            yield ctx.alu(1)  # loop bookkeeping

    def verify(self) -> None:
        self._require_allocated()
        found = self._walk_lists()
        expected = self._oracle()
        for cell in range(self.scene.n_cells):
            if found.get(cell, set()) != expected.get(cell, set()):
                raise VerificationError(
                    f"cell {cell}: objects {sorted(found.get(cell, set()))} "
                    f"!= expected {sorted(expected.get(cell, set()))}"
                )
        # Every lock must have been released.
        locks = [int(v) for v in self.m_lock.to_list()]
        if any(locks):
            raise VerificationError(f"locks left held: {locks}")

    def _walk_lists(self) -> Dict[int, Set[int]]:
        lists: Dict[int, Set[int]] = {}
        for cell in range(self.scene.n_cells):
            objects: Set[int] = set()
            seen_nodes: Set[int] = set()
            cursor = int(self.m_head[cell])
            while cursor:
                node = cursor - 1
                if node in seen_nodes:
                    raise VerificationError(f"cycle in cell {cell}'s list")
                seen_nodes.add(node)
                objects.add(int(self.m_node_obj[node]))
                cursor = int(self.m_next[node])
                if len(seen_nodes) > self.scene.n_insertions:
                    raise VerificationError(f"runaway list in cell {cell}")
            if objects:
                lists[cell] = objects
        return lists

    def _oracle(self) -> Dict[int, Set[int]]:
        expected: Dict[int, Set[int]] = {}
        for obj, cell in self.scene.insertions:
            expected.setdefault(cell, set()).add(obj)
        return expected
