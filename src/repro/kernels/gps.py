"""GPS — Game Physics Solver (iterative constraint solver).

Paper (Table 2): a game-physics constraint solver iteratively applies
force constraints, each updating two distinct objects, which must
happen atomically under per-object locks ("multiple lock critical
section").  Constraints are divided among threads, and — to avoid SIMD
scatter aliasing — each thread reorders its constraints into groups of
independent constraints before the main loop.

* Base variant: per constraint, acquire both object locks in index
  order (deadlock-free), apply the impulse, release.
* GLSC variant: VLOCK the SIMD group's first objects, VLOCK the second
  objects of the lanes that succeeded, apply impulses for lanes
  holding both locks via masked gathers/scatters, release, retry.

The impulse model is momentum-conserving (+delta / -delta), so the
oracle is exact regardless of execution interleaving.
"""

from __future__ import annotations

from typing import List

from repro.isa.program import ThreadCtx
from repro.kernels.common import (
    KernelBase,
    MAX_SIMD_WIDTH,
    chunk,
    glsc_paired_lock_apply,
    padded,
    scalar_lock_acquire,
)
from repro.mem.image import MemoryImage
from repro.workloads.graphs import constraint_system, group_independent

__all__ = ["Gps"]


class Gps(KernelBase):
    """Iterative two-object constraint solver under per-object locks."""

    name = "gps"
    title = "Game Physics Solver"
    atomic_op = "Multiple Lock Critical Section"

    def __init__(
        self,
        n_threads: int,
        *,
        n_objects: int,
        n_constraints: int,
        iterations: int,
        seed: int,
        locality: int = 10,
    ) -> None:
        super().__init__()
        self.n_threads = n_threads
        self.system = constraint_system(
            n_objects, n_constraints, iterations, seed, locality=locality
        )
        # Per-thread preprocessing (Table 2: "constraints within each
        # thread are reordered into groups of independent constraints").
        # Groups are sized for the widest SIMD so any runtime width can
        # slice them without crossing a group boundary.
        self._thread_groups: List[List[List[int]]] = []
        for tid in range(n_threads):
            lo, hi = chunk(self.system.n_constraints, n_threads, tid)
            local = [
                (self.system.constraints[i], i) for i in range(lo, hi)
            ]
            groups = group_independent(
                [c for c, _ in local], MAX_SIMD_WIDTH
            )
            self._thread_groups.append(
                [[local[g][1] for g in group] for group in groups]
            )

    def allocate(self, image: MemoryImage) -> None:
        self._mark_allocated()
        # Reordered per-thread constraint streams so the kernel's inner
        # loop uses contiguous vector loads (the reorder happens once,
        # host-side, exactly like the paper's preprocessing step).
        self.m_a: List = []
        self.m_b: List = []
        self.m_delta: List = []
        self._group_spans: List[List] = []
        for tid in range(self.n_threads):
            order = [i for group in self._thread_groups[tid] for i in group]
            self.m_a.append(image.alloc_array(
                padded([self.system.constraints[i][0] for i in order]),
                name=f"gps.a[{tid}]",
            ))
            self.m_b.append(image.alloc_array(
                padded([self.system.constraints[i][1] for i in order]),
                name=f"gps.b[{tid}]",
            ))
            self.m_delta.append(image.alloc_array(
                padded([self.system.deltas[i] for i in order]),
                name=f"gps.delta[{tid}]",
            ))
            spans = []
            offset = 0
            for group in self._thread_groups[tid]:
                spans.append((offset, len(group)))
                offset += len(group)
            self._group_spans.append(spans)
        self.m_state = image.alloc_zeros(
            len(padded([0] * self.system.n_objects)), name="gps.state"
        )
        self.m_lock = image.alloc_zeros(self.system.n_objects,
                                        name="gps.lock")

    def base_program(self, ctx: ThreadCtx):
        """Optimal Base (Section 4.2): everything is SIMD except locks.

        The group's 2W locks are acquired scalar-ly in global index
        order (deadlock-free), the impulses applied with regular
        gathers/scatters (safe: the group is independent and the locks
        are held), and the locks released with scatters.
        """
        self._require_allocated()
        tid = ctx.tid
        a_arr, b_arr = self.m_a[tid], self.m_b[tid]
        d_arr = self.m_delta[tid]
        for _ in range(self.system.iterations):
            for offset, length in self._group_spans[tid]:
                for i in range(offset, offset + length, ctx.w):
                    active = min(ctx.w, offset + length - i)
                    mask = ctx.prefix_mask(active)
                    avec = yield ctx.vload(a_arr.addr(i))
                    bvec = yield ctx.vload(b_arr.addr(i))
                    dvec = yield ctx.vload(d_arr.addr(i))
                    # Force-equation evaluation (same cost as GLSC).
                    yield ctx.valu(lambda: None, count=4)
                    a_idx = [int(v) for v in avec]
                    b_idx = [int(v) for v in bvec]
                    for obj in sorted(a_idx[:active] + b_idx[:active]):
                        yield from scalar_lock_acquire(
                            ctx, self.m_lock.addr(obj)
                        )
                    sa = yield ctx.vgather(self.m_state.base, a_idx, mask)
                    new_a = yield ctx.valu(
                        lambda: tuple(s + d for s, d in zip(sa, dvec))
                    )
                    yield ctx.vscatter(self.m_state.base, a_idx, new_a, mask)
                    sb = yield ctx.vgather(self.m_state.base, b_idx, mask)
                    new_b = yield ctx.valu(
                        lambda: tuple(s - d for s, d in zip(sb, dvec))
                    )
                    yield ctx.vscatter(self.m_state.base, b_idx, new_b, mask)
                    zeros = (0,) * ctx.w
                    yield ctx.vscatter(
                        self.m_lock.base, a_idx, zeros, mask, sync=True
                    )
                    yield ctx.vscatter(
                        self.m_lock.base, b_idx, zeros, mask, sync=True
                    )
                    yield ctx.alu(1)  # loop bookkeeping
            yield ctx.barrier()

    def glsc_program(self, ctx: ThreadCtx):
        self._require_allocated()
        tid = ctx.tid
        a_arr, b_arr = self.m_a[tid], self.m_b[tid]
        d_arr = self.m_delta[tid]
        for _ in range(self.system.iterations):
            for offset, length in self._group_spans[tid]:
                for i in range(offset, offset + length, ctx.w):
                    active = min(ctx.w, offset + length - i)
                    todo = ctx.prefix_mask(active)
                    avec = yield ctx.vload(a_arr.addr(i))
                    bvec = yield ctx.vload(b_arr.addr(i))
                    dvec = yield ctx.vload(d_arr.addr(i))
                    # Force-equation evaluation (same cost as Base).
                    yield ctx.valu(lambda: None, count=4)
                    a_idx = [int(v) for v in avec]
                    b_idx = [int(v) for v in bvec]

                    def work(winners, a_idx=a_idx, b_idx=b_idx, dvec=dvec):
                        sa = yield ctx.vgather(
                            self.m_state.base, a_idx, winners, sync=True
                        )
                        new_a = yield ctx.valu(
                            lambda: tuple(
                                s + d for s, d in zip(sa, dvec)
                            ),
                            sync=True,
                        )
                        yield ctx.vscatter(
                            self.m_state.base, a_idx, new_a, winners,
                            sync=True,
                        )
                        sb = yield ctx.vgather(
                            self.m_state.base, b_idx, winners, sync=True
                        )
                        new_b = yield ctx.valu(
                            lambda: tuple(
                                s - d for s, d in zip(sb, dvec)
                            ),
                            sync=True,
                        )
                        yield ctx.vscatter(
                            self.m_state.base, b_idx, new_b, winners,
                            sync=True,
                        )

                    yield from glsc_paired_lock_apply(
                        ctx, self.m_lock.base, a_idx, b_idx, todo, work
                    )
                    yield ctx.alu(1)  # loop bookkeeping
            yield ctx.barrier()

    def verify(self) -> None:
        self._require_allocated()
        expected = self.system.solve_oracle()
        actual = [self.m_state[i] for i in range(self.system.n_objects)]
        self._check_equal(actual, expected, "object state")
