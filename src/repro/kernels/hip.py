"""HIP — Histogram for Image Processing.

Paper (Table 2): builds a color histogram of an image for image-based
retrieval.  The image is row-partitioned among threads; each thread
updates a *private* histogram copy (privatization), and a global merge
runs at the end.  Because of privatization HIP needs no cross-thread
atomicity — what it uses GLSC for is *alias detection* within a SIMD
group of pixels (Section 4.2/5.1).

* Base variant: SIMD loads + bin computation, then scalar
  load/increment/store per lane into the private histogram (plain
  scatters cannot handle aliased bins).
* GLSC variant: the Figure 3A gather-link/increment/scatter-conditional
  loop on the private histogram; aliased lanes retry.

The paper observes HIP is the one benchmark where GLSC can *lose* to
Base on heavily skewed images (28% more instructions at 1-wide, high
alias failure rate), and win on random images — both behaviours this
implementation reproduces.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.isa.program import ThreadCtx
from repro.kernels.common import KernelBase, chunk, glsc_vector_update, padded
from repro.mem.image import MemoryImage
from repro.workloads.images import generate_image

__all__ = ["Hip"]


class Hip(KernelBase):
    """Parallel histogram with per-thread privatization."""

    name = "hip"
    title = "Histogram for Image Processing"
    atomic_op = "Integer Increment"

    def __init__(
        self,
        n_threads: int,
        *,
        n_pixels: int,
        n_bins: int,
        coherence: float,
        skew: float,
        seed: int,
    ) -> None:
        super().__init__()
        self.n_threads = n_threads
        self.n_bins = n_bins
        self.pixels = generate_image(n_pixels, n_bins, coherence, skew, seed)

    def allocate(self, image: MemoryImage) -> None:
        self._mark_allocated()
        self.m_input = image.alloc_array(padded(self.pixels),
                                         name="hip.input")
        padded_bins = len(padded([0] * self.n_bins))
        self.m_private = [
            image.alloc_zeros(padded_bins, name=f"hip.private[{t}]")
            for t in range(self.n_threads)
        ]
        self.m_bins = image.alloc_zeros(padded_bins, name="hip.bins")

    # -- phase 2 (shared by both variants) --------------------------------

    def _merge(self, ctx: ThreadCtx):
        """Sum private copies into the global histogram (bin-partitioned)."""
        lo, hi = chunk(self.n_bins, ctx.n_threads, ctx.tid)
        w = ctx.w
        for b in range(lo, hi, w):
            mask = ctx.prefix_mask(min(w, hi - b))
            acc = (0,) * w
            for private in self.m_private:
                vals = yield ctx.vload(private.addr(b))
                acc = yield ctx.valu(
                    lambda a=acc, v=vals: tuple(x + y for x, y in zip(a, v))
                )
            yield ctx.vstore(self.m_bins.addr(b), acc, mask)
            yield ctx.alu(1)  # loop bookkeeping

    def _bins_for(self, ctx: ThreadCtx, i: int):
        """Load a SIMD group of pixels and compute their bins."""
        vinput = yield ctx.vload(self.m_input.addr(i))
        vbins = yield ctx.valu(
            lambda v=vinput: tuple(int(x) % self.n_bins for x in v)
        )
        return [int(b) for b in vbins]

    # -- variants ------------------------------------------------------------

    def base_program(self, ctx: ThreadCtx):
        self._require_allocated()
        private = self.m_private[ctx.tid]
        lo, hi = chunk(len(self.pixels), ctx.n_threads, ctx.tid)
        for i in range(lo, hi, ctx.w):
            active = min(ctx.w, hi - i)
            bins = yield from self._bins_for(ctx, i)
            # Scalar per-lane updates: plain SIMD scatters cannot express
            # aliased increments, so Base falls back to scalar code here.
            for lane in range(active):
                addr = private.addr(bins[lane])
                value = yield ctx.load(addr)
                yield ctx.alu(1)  # increment
                yield ctx.store(addr, value + 1)
            yield ctx.alu(1)  # loop bookkeeping
        yield ctx.barrier()
        yield from self._merge(ctx)

    def glsc_program(self, ctx: ThreadCtx):
        self._require_allocated()
        private = self.m_private[ctx.tid]
        lo, hi = chunk(len(self.pixels), ctx.n_threads, ctx.tid)
        for i in range(lo, hi, ctx.w):
            mask = ctx.prefix_mask(min(ctx.w, hi - i))
            bins = yield from self._bins_for(ctx, i)
            yield from glsc_vector_update(
                ctx,
                private.base,
                bins,
                lambda vals, got: tuple(
                    v + 1 if got.lane(k) else v for k, v in enumerate(vals)
                ),
                todo=mask,
            )
            yield ctx.alu(1)  # loop bookkeeping
        yield ctx.barrier()
        yield from self._merge(ctx)

    # -- verification -----------------------------------------------------------

    def verify(self) -> None:
        self._require_allocated()
        expected = self._oracle()
        self._check_equal(
            [int(self.m_bins[b]) for b in range(self.n_bins)],
            expected,
            "histogram",
        )

    def _oracle(self) -> List[int]:
        counts = Counter(p % self.n_bins for p in self.pixels)
        return [counts.get(b, 0) for b in range(self.n_bins)]
