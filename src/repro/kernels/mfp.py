"""MFP — Maxflow Push (push-relabel push kernel).

Paper (Table 2): the push step of parallel push-relabel maximum flow
repeatedly moves flow from a node to a neighbour.  Each push must
update both endpoints atomically, so both node locks are taken — the
second of the paper's "multiple lock critical section" kernels.  Work
is divided evenly among threads and SIMD processes several pushes at
once.

The model executes one push per edge with a precomputed amount (a
fixed push schedule), updating node excess and the edge's remaining
capacity.  This keeps the oracle exact while exercising exactly the
two-lock atomic pattern of the real kernel; the relabel phase adds no
atomic traffic and is omitted.

Within a thread, pushes are grouped into vectors of node-disjoint
edges (a thread pushing SIMD-wide from its node partition naturally
picks distinct nodes), so as in the paper the 1x1 failure rate is ~0;
all remaining contention is cross-thread.
"""

from __future__ import annotations

from typing import List

from repro.isa.program import ThreadCtx
from repro.kernels.common import (
    KernelBase,
    MAX_SIMD_WIDTH,
    chunk,
    glsc_paired_lock_apply,
    padded,
    scalar_lock_acquire,
)
from repro.mem.image import MemoryImage
from repro.workloads.graphs import flow_network, group_independent

__all__ = ["Mfp"]


class Mfp(KernelBase):
    """Flow pushes under two endpoint locks."""

    name = "mfp"
    title = "Maxflow Push"
    atomic_op = "Multiple Lock Critical Section"

    def __init__(
        self,
        n_threads: int,
        *,
        n_nodes: int,
        n_edges: int,
        seed: int,
        locality: int = 12,
    ) -> None:
        super().__init__()
        self.n_threads = n_threads
        self.network = flow_network(n_nodes, n_edges, seed, locality=locality)
        self.initial_excess = [
            float((3 * i) % 7) * 0.5 for i in range(n_nodes)
        ]
        self._thread_groups: List[List[List[int]]] = []
        for tid in range(n_threads):
            lo, hi = chunk(self.network.n_edges, n_threads, tid)
            local_edges = [self.network.edges[i] for i in range(lo, hi)]
            groups = group_independent(local_edges, MAX_SIMD_WIDTH)
            self._thread_groups.append(
                [[lo + g for g in group] for group in groups]
            )

    def allocate(self, image: MemoryImage) -> None:
        self._mark_allocated()
        self.m_u: List = []
        self.m_v: List = []
        self.m_amount: List = []
        self._group_spans: List[List] = []
        for tid in range(self.n_threads):
            order = [i for group in self._thread_groups[tid] for i in group]
            self.m_u.append(image.alloc_array(
                padded([self.network.edges[i][0] for i in order]),
                name=f"mfp.u[{tid}]",
            ))
            self.m_v.append(image.alloc_array(
                padded([self.network.edges[i][1] for i in order]),
                name=f"mfp.v[{tid}]",
            ))
            self.m_amount.append(image.alloc_array(
                padded([self.network.push_amounts[i] for i in order]),
                name=f"mfp.amount[{tid}]",
            ))
            spans = []
            offset = 0
            for group in self._thread_groups[tid]:
                spans.append((offset, len(group)))
                offset += len(group)
            self._group_spans.append(spans)
        self.m_excess = image.alloc_array(
            padded(self.initial_excess), name="mfp.excess"
        )
        self.m_lock = image.alloc_zeros(self.network.n_nodes,
                                        name="mfp.lock")

    def base_program(self, ctx: ThreadCtx):
        """Optimal Base (Section 4.2): everything is SIMD except locks.

        Endpoint locks for the group's pushes are acquired scalar-ly
        in global index order (deadlock-free), excess updates run as
        regular gathers/scatters under the held locks, and locks are
        released with scatters.
        """
        self._require_allocated()
        tid = ctx.tid
        u_arr, v_arr = self.m_u[tid], self.m_v[tid]
        amount_arr = self.m_amount[tid]
        for offset, length in self._group_spans[tid]:
            for i in range(offset, offset + length, ctx.w):
                active = min(ctx.w, offset + length - i)
                mask = ctx.prefix_mask(active)
                uvec = yield ctx.vload(u_arr.addr(i))
                vvec = yield ctx.vload(v_arr.addr(i))
                avec = yield ctx.vload(amount_arr.addr(i))
                # Admissibility checks and push-amount math (SIMD in
                # both variants; only the lock traffic differs).
                yield ctx.valu(lambda: None, count=3)
                u_idx = [int(x) for x in uvec]
                v_idx = [int(x) for x in vvec]
                for node in sorted(u_idx[:active] + v_idx[:active]):
                    yield from scalar_lock_acquire(
                        ctx, self.m_lock.addr(node)
                    )
                eu = yield ctx.vgather(self.m_excess.base, u_idx, mask)
                new_u = yield ctx.valu(
                    lambda: tuple(e - a for e, a in zip(eu, avec))
                )
                yield ctx.vscatter(self.m_excess.base, u_idx, new_u, mask)
                ev = yield ctx.vgather(self.m_excess.base, v_idx, mask)
                new_v = yield ctx.valu(
                    lambda: tuple(e + a for e, a in zip(ev, avec))
                )
                yield ctx.vscatter(self.m_excess.base, v_idx, new_v, mask)
                zeros = (0,) * ctx.w
                yield ctx.vscatter(
                    self.m_lock.base, u_idx, zeros, mask, sync=True
                )
                yield ctx.vscatter(
                    self.m_lock.base, v_idx, zeros, mask, sync=True
                )
                yield ctx.alu(1)  # loop bookkeeping

    def glsc_program(self, ctx: ThreadCtx):
        self._require_allocated()
        tid = ctx.tid
        u_arr, v_arr = self.m_u[tid], self.m_v[tid]
        amount_arr = self.m_amount[tid]
        for offset, length in self._group_spans[tid]:
            for i in range(offset, offset + length, ctx.w):
                active = min(ctx.w, offset + length - i)
                todo = ctx.prefix_mask(active)
                uvec = yield ctx.vload(u_arr.addr(i))
                vvec = yield ctx.vload(v_arr.addr(i))
                avec = yield ctx.vload(amount_arr.addr(i))
                # Admissibility checks and push-amount math.
                yield ctx.valu(lambda: None, count=3)
                u_idx = [int(x) for x in uvec]
                v_idx = [int(x) for x in vvec]

                def work(winners, u_idx=u_idx, v_idx=v_idx, avec=avec):
                    eu = yield ctx.vgather(
                        self.m_excess.base, u_idx, winners, sync=True
                    )
                    new_u = yield ctx.valu(
                        lambda: tuple(e - a for e, a in zip(eu, avec)),
                        sync=True,
                    )
                    yield ctx.vscatter(
                        self.m_excess.base, u_idx, new_u, winners, sync=True
                    )
                    ev = yield ctx.vgather(
                        self.m_excess.base, v_idx, winners, sync=True
                    )
                    new_v = yield ctx.valu(
                        lambda: tuple(e + a for e, a in zip(ev, avec)),
                        sync=True,
                    )
                    yield ctx.vscatter(
                        self.m_excess.base, v_idx, new_v, winners, sync=True
                    )

                yield from glsc_paired_lock_apply(
                    ctx, self.m_lock.base, u_idx, v_idx, todo, work
                )
                yield ctx.alu(1)  # loop bookkeeping

    def verify(self) -> None:
        self._require_allocated()
        expected = self.network.excess_oracle(self.initial_excess)
        actual = [self.m_excess[i] for i in range(self.network.n_nodes)]
        self._check_equal(actual, expected, "node excess")
