"""The Section 5.2 microbenchmark: scenarios A-D.

A loop with a fixed number of iterations over an array of counters;
each iteration a thread atomically increments SIMD-width counters at
precomputed indices.  The counter array fits in the L1 and the caches
are warmed before measurement, exactly as the paper specifies.  The
index sequences isolate GLSC's three benefit sources:

=========  ==================================================================
Scenario A  SIMD-width *distinct lines*, shared across threads: lines are
            often dirty in another core's L1, so GLSC's win is overlapping
            the coherence misses (plus fewer instructions).
Scenario B  SIMD-width *different words on one line*, thread-private: GLSC
            wins by fewer instructions *and* one combined L1 access.
Scenario C  SIMD-width *distinct thread-private lines*, all L1 hits: GLSC
            wins by instruction count alone.
Scenario D  all lanes address the *same word*: no SIMD parallelism exists;
            GLSC serializes on aliases and can lose (the paper measures
            GLSC slower than Base here at 16-wide).
=========  ==================================================================
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.isa.program import ThreadCtx
from repro.kernels.common import (
    KernelBase,
    MAX_SIMD_WIDTH,
    glsc_vector_update,
    scalar_atomic_update,
)
from repro.mem.image import MemoryImage
from repro.mem.layout import LineGeometry

__all__ = ["Micro", "SCENARIOS"]

SCENARIOS = ("A", "B", "C", "D")

#: Counter-array size in 32-bit words; 16 KiB, comfortably inside the
#: paper's 32 KiB L1 ("the array is chosen to be small enough to fit
#: in the L1").
COUNTER_WORDS = 4096


class Micro(KernelBase):
    """Random atomic counter increments with scenario-shaped indices."""

    name = "micro"
    title = "Section 5.2 microbenchmark"
    atomic_op = "Integer Increment"

    def __init__(
        self,
        n_threads: int,
        *,
        scenario: str,
        iterations: int = 48,
        seed: int = 97,
    ) -> None:
        super().__init__()
        if scenario not in SCENARIOS:
            raise ConfigError(
                f"scenario must be one of {SCENARIOS}, got {scenario!r}"
            )
        self.n_threads = n_threads
        self.scenario = scenario
        self.iterations = iterations
        self.seed = seed
        self._indices: List[List[int]] = []  # built lazily per width

    # -- index-sequence generation (precomputed, Section 5.2) ---------------

    def _build_indices(self, width: int) -> None:
        """Per-thread flat index streams of iterations x width words."""
        geometry = LineGeometry()
        words_per_line = geometry.words_per_line
        n_lines = COUNTER_WORDS // words_per_line
        rng = np.random.default_rng(self.seed)
        self._indices = []
        per_thread_lines = max(n_lines // max(self.n_threads, 1), width)
        for tid in range(self.n_threads):
            own_first = (tid * per_thread_lines) % n_lines
            stream: List[int] = []
            for _ in range(self.iterations):
                if self.scenario == "A":
                    lines = rng.choice(n_lines, size=width, replace=False)
                    stream.extend(
                        int(line) * words_per_line
                        + int(rng.integers(0, words_per_line))
                        for line in lines
                    )
                elif self.scenario == "B":
                    line = own_first + int(rng.integers(0, per_thread_lines))
                    line %= n_lines
                    words = rng.choice(
                        words_per_line, size=min(width, words_per_line),
                        replace=False,
                    )
                    picks = [
                        line * words_per_line + int(w) for w in words
                    ]
                    # If the SIMD width exceeds the words in a line the
                    # scenario degenerates to some aliasing (unavoidable).
                    while len(picks) < width:
                        picks.append(picks[0])
                    stream.extend(picks)
                elif self.scenario == "C":
                    offsets = rng.choice(
                        per_thread_lines, size=min(width, per_thread_lines),
                        replace=False,
                    )
                    stream.extend(
                        ((own_first + int(o)) % n_lines) * words_per_line
                        + int(rng.integers(0, words_per_line))
                        for o in offsets
                    )
                else:  # D: every lane the same word
                    line = own_first + int(rng.integers(0, per_thread_lines))
                    line %= n_lines
                    word = line * words_per_line + int(
                        rng.integers(0, words_per_line)
                    )
                    stream.extend([word] * width)
            self._indices.append(stream)

    def allocate(self, image: MemoryImage) -> None:
        self._mark_allocated()
        self.m_counters = image.alloc_zeros(COUNTER_WORDS,
                                            name="micro.counters")
        self._m_index_arrays = None
        self._image = image

    def _index_array_for(self, ctx: ThreadCtx):
        """Materialize the precomputed index streams on first use."""
        if self._m_index_arrays is None:
            self._build_indices(ctx.w)
            self._m_index_arrays = [
                self._image.alloc_array(stream + [0] * MAX_SIMD_WIDTH,
                                        name=f"micro.indices[{tid}]")
                for tid, stream in enumerate(self._indices)
            ]
        return self._m_index_arrays[ctx.tid]

    # -- variants ------------------------------------------------------------

    def base_program(self, ctx: ThreadCtx):
        self._require_allocated()
        index_array = self._index_array_for(ctx)
        for it in range(self.iterations):
            idx_vec = yield ctx.vload(index_array.addr(it * ctx.w))
            for lane in range(ctx.w):
                yield from scalar_atomic_update(
                    ctx,
                    self.m_counters.addr(int(idx_vec[lane])),
                    lambda old: old + 1,
                )
            yield ctx.alu(1)  # loop bookkeeping

    def glsc_program(self, ctx: ThreadCtx):
        self._require_allocated()
        index_array = self._index_array_for(ctx)
        for it in range(self.iterations):
            idx_vec = yield ctx.vload(index_array.addr(it * ctx.w))
            yield from glsc_vector_update(
                ctx,
                self.m_counters.base,
                [int(i) for i in idx_vec],
                lambda vals, got: tuple(
                    v + 1 if got.lane(k) else v for k, v in enumerate(vals)
                ),
            )
            yield ctx.alu(1)  # loop bookkeeping

    def verify(self) -> None:
        self._require_allocated()
        total = sum(int(v) for v in self.m_counters.to_list())
        expected = 0
        for stream in self._indices:
            expected += len(stream)
        if self._m_index_arrays is None:
            raise ConfigError("microbenchmark never ran")
        if total != expected:
            from repro.errors import VerificationError

            raise VerificationError(
                f"counter total {total} != expected increments {expected}"
            )
