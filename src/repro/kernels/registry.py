"""Kernel registry: name -> kernel class / factory.

The harness, runner, benches, and CLI all look kernels up here, so
adding a benchmark is one import plus one register call.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.errors import ConfigError
from repro.kernels.common import KernelBase
from repro.workloads.datasets import dataset_params

__all__ = ["KERNELS", "KERNEL_ORDER", "make_kernel", "register_kernel"]

KERNELS: Dict[str, Type[KernelBase]] = {}

#: Presentation order used by the paper's tables/figures.
KERNEL_ORDER: Tuple[str, ...] = ("gbc", "fs", "gps", "hip", "smc", "mfp", "tms")


def register_kernel(cls: Type[KernelBase]) -> Type[KernelBase]:
    """Class decorator/call registering a kernel under ``cls.name``."""
    if not cls.name or cls.name == "?":
        raise ConfigError(f"kernel class {cls.__name__} has no name")
    KERNELS[cls.name] = cls
    return cls


def make_kernel(name: str, dataset: str, n_threads: int) -> KernelBase:
    """Instantiate kernel ``name`` on dataset ``dataset``.

    The instance is one-shot: allocate it into a machine's image, run,
    verify, discard.
    """
    try:
        cls = KERNELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown kernel {name!r}; known: {sorted(KERNELS)}"
        ) from None
    return cls(n_threads, **dataset_params(name, dataset))


def _register_builtin() -> None:
    """Import and register the seven paper kernels (deferred to avoid
    import cycles during kernel-module development)."""
    from repro.kernels.fs import Fs
    from repro.kernels.gbc import Gbc
    from repro.kernels.gps import Gps
    from repro.kernels.hip import Hip
    from repro.kernels.mfp import Mfp
    from repro.kernels.smc import Smc
    from repro.kernels.tms import Tms

    for cls in (Gbc, Fs, Gps, Hip, Smc, Mfp, Tms):
        register_kernel(cls)


_register_builtin()
