"""SMC — Surface Extraction using Marching Cubes (density deposit).

Paper (Table 2): fluid-simulation particles deposit density into the
nodes of a uniform 3D grid; the per-node densities are then used to
extract the fluid surface.  Particles are divided among threads and a
SIMD group processes SIMD-width particles, so each of the 8 corner
nodes of a particle's cell receives an *atomic SIMD floating-point
add* — sparse, and contended whenever nearby particles land in
adjacent cells.

* Base variant: scalar ll/sc add per lane per corner.
* GLSC variant: one Figure 3A reduction per corner offset over the
  SIMD group's node indices.

After a barrier, the extraction phase scans the node grid (partitioned
by node range) and counts the cells the iso-surface crosses — the
marching-cubes case-selection step.  Extraction is embarrassingly
parallel SIMD work shared by both variants; only the deposit phase's
atomic traffic differs.
"""

from __future__ import annotations

from repro.isa.program import ThreadCtx
from repro.kernels.common import (
    KernelBase,
    chunk,
    glsc_vector_update,
    padded,
    scalar_atomic_update,
)
from repro.mem.image import MemoryImage
from repro.workloads.grids import particle_field

__all__ = ["Smc"]

N_CORNERS = 8


class Smc(KernelBase):
    """Particle-to-grid density deposition with atomic SIMD reductions."""

    name = "smc"
    title = "Surface Extraction using Marching Cubes"
    atomic_op = "Floating-point Add"

    def __init__(
        self, n_threads: int, *, n_particles: int, dim: int, seed: int
    ) -> None:
        super().__init__()
        self.n_threads = n_threads
        self.field = particle_field(n_particles, dim, seed)

    def allocate(self, image: MemoryImage) -> None:
        self._mark_allocated()
        # Structure-of-arrays layout: one index array per corner so a
        # SIMD group of particles loads each corner's nodes contiguously.
        self.m_corner = [
            image.alloc_array(
                padded([c[k] for c in self.field.corner_nodes]),
                name=f"smc.corner[{k}]",
            )
            for k in range(N_CORNERS)
        ]
        self.m_weight = image.alloc_array(padded(self.field.weights),
                                          name="smc.weight")
        self.m_density = image.alloc_zeros(
            len(padded([0] * self.field.n_nodes)), name="smc.density"
        )
        self.m_surface_counts = image.alloc_zeros(self.n_threads,
                                                  name="smc.surface_counts")

    #: Iso-surface threshold used by the extraction phase.
    ISO_LEVEL = 1.0

    def _extract_surface(self, ctx: ThreadCtx):
        """Count nodes above the iso level (case-selection proxy)."""
        lo, hi = chunk(self.field.n_nodes, ctx.n_threads, ctx.tid)
        count = 0
        for i in range(lo, hi, ctx.w):
            active = min(ctx.w, hi - i)
            densities = yield ctx.vload(self.m_density.addr(i))
            flags = yield ctx.valu(
                lambda d=densities, a=active: sum(
                    1 for v in d[:a] if v >= self.ISO_LEVEL
                )
            )
            count += flags
            yield ctx.alu(1)  # loop bookkeeping
        yield ctx.store(self.m_surface_counts.addr(ctx.tid), count)

    def base_program(self, ctx: ThreadCtx):
        self._require_allocated()
        lo, hi = chunk(self.field.n_particles, ctx.n_threads, ctx.tid)
        for i in range(lo, hi, ctx.w):
            active = min(ctx.w, hi - i)
            weights = yield ctx.vload(self.m_weight.addr(i))
            for k in range(N_CORNERS):
                nodes = yield ctx.vload(self.m_corner[k].addr(i))
                # Trilinear interpolation weight for this corner.
                yield ctx.valu(lambda: None, count=2)
                for lane in range(active):
                    yield from scalar_atomic_update(
                        ctx,
                        self.m_density.addr(int(nodes[lane])),
                        lambda old, w=weights[lane]: old + w,
                    )
            yield ctx.alu(1)  # loop bookkeeping
        yield ctx.barrier()
        yield from self._extract_surface(ctx)

    def glsc_program(self, ctx: ThreadCtx):
        self._require_allocated()
        lo, hi = chunk(self.field.n_particles, ctx.n_threads, ctx.tid)
        for i in range(lo, hi, ctx.w):
            mask = ctx.prefix_mask(min(ctx.w, hi - i))
            weights = yield ctx.vload(self.m_weight.addr(i))
            for k in range(N_CORNERS):
                nodes = yield ctx.vload(self.m_corner[k].addr(i))
                # Trilinear interpolation weight for this corner.
                yield ctx.valu(lambda: None, count=2)
                yield from glsc_vector_update(
                    ctx,
                    self.m_density.base,
                    [int(n) for n in nodes],
                    lambda vals, got, w=weights: tuple(
                        v + w[j] if got.lane(j) else v
                        for j, v in enumerate(vals)
                    ),
                    todo=mask,
                )
            yield ctx.alu(1)  # loop bookkeeping
        yield ctx.barrier()
        yield from self._extract_surface(ctx)

    def verify(self) -> None:
        self._require_allocated()
        oracle = self.field.density_oracle()
        self._check_equal(
            [self.m_density[i] for i in range(self.field.n_nodes)],
            oracle,
            "density",
        )
        expected_surface = sum(1 for v in oracle if v >= self.ISO_LEVEL)
        measured = sum(int(v) for v in self.m_surface_counts.to_list())
        if measured != expected_surface:
            from repro.errors import VerificationError

            raise VerificationError(
                f"surface count {measured} != expected {expected_surface}"
            )
