"""TMS — Transpose Matrix-Vector Multiply (y = A^T x).

Paper (Table 2): each nonzero A[i,j] is multiplied by x[i] and reduced
into y[j].  Nonzeros are divided evenly among threads; a SIMD group
processes SIMD-width nonzeros, so the reductions into y are *sparse
atomic floating-point adds* — the canonical GLSC reduction.

* Base variant: per lane, the scalar ll/sc retry loop into y[col].
* GLSC variant: the Figure 3A loop over the column-index vector.

Aliasing happens whenever two nonzeros in one SIMD group share a
column; with the paper's very sparse matrices this is rare (Table 4
reports ~0% failure for TMS), but the code handles it either way.
"""

from __future__ import annotations

from repro.isa.program import ThreadCtx
from repro.kernels.common import (
    KernelBase,
    chunk,
    glsc_vector_update,
    padded,
    scalar_atomic_update,
)
from repro.mem.image import MemoryImage
from repro.workloads.sparse import random_sparse

__all__ = ["Tms"]


class Tms(KernelBase):
    """Sparse transpose matrix-vector multiply with atomic reductions."""

    name = "tms"
    title = "Transpose Matrix-Vector Multiply"
    atomic_op = "Floating-point Add"

    def __init__(
        self,
        n_threads: int,
        *,
        rows: int,
        cols: int,
        density: float,
        seed: int,
        band=None,
    ) -> None:
        super().__init__()
        self.n_threads = n_threads
        self.matrix = random_sparse(rows, cols, density, seed, band=band)
        # x holds quarter-integers so the float reduction is exact and
        # order-independent, keeping the oracle comparison strict.
        self.x_values = [
            float((7 * i) % 13) * 0.25 + 0.25 for i in range(rows)
        ]

    def allocate(self, image: MemoryImage) -> None:
        self._mark_allocated()
        nonzeros = self.matrix.nonzeros
        self.m_row = image.alloc_array(
            padded([r for r, _, _ in nonzeros]), name="tms.row")
        self.m_col = image.alloc_array(
            padded([c for _, c, _ in nonzeros]), name="tms.col")
        self.m_val = image.alloc_array(
            padded([v for _, _, v in nonzeros]), name="tms.val")
        self.m_x = image.alloc_array(self.x_values, name="tms.x")
        self.m_y = image.alloc_zeros(self.matrix.cols, name="tms.y")

    def _products_for(self, ctx: ThreadCtx, i: int, mask):
        """Load one SIMD group of nonzeros and form A[i,j] * x[i]."""
        rows = yield ctx.vload(self.m_row.addr(i))
        cols = yield ctx.vload(self.m_col.addr(i))
        vals = yield ctx.vload(self.m_val.addr(i))
        xs = yield ctx.vgather(self.m_x.base, [int(r) for r in rows], mask)
        products = yield ctx.valu(
            lambda v=vals, x=xs: tuple(a * b for a, b in zip(v, x))
        )
        return [int(c) for c in cols], products

    def base_program(self, ctx: ThreadCtx):
        self._require_allocated()
        lo, hi = chunk(self.matrix.nnz, ctx.n_threads, ctx.tid)
        for i in range(lo, hi, ctx.w):
            active = min(ctx.w, hi - i)
            mask = ctx.prefix_mask(active)
            cols, products = yield from self._products_for(ctx, i, mask)
            for lane in range(active):
                yield from scalar_atomic_update(
                    ctx,
                    self.m_y.addr(cols[lane]),
                    lambda old, p=products[lane]: old + p,
                )
            yield ctx.alu(1)  # loop bookkeeping

    def glsc_program(self, ctx: ThreadCtx):
        self._require_allocated()
        lo, hi = chunk(self.matrix.nnz, ctx.n_threads, ctx.tid)
        for i in range(lo, hi, ctx.w):
            mask = ctx.prefix_mask(min(ctx.w, hi - i))
            cols, products = yield from self._products_for(ctx, i, mask)
            yield from glsc_vector_update(
                ctx,
                self.m_y.base,
                cols,
                lambda vals, got, p=products: tuple(
                    v + p[k] if got.lane(k) else v
                    for k, v in enumerate(vals)
                ),
                todo=mask,
            )
            yield ctx.alu(1)  # loop bookkeeping

    def verify(self) -> None:
        self._require_allocated()
        expected = self.matrix.transpose_matvec(self.x_values)
        self._check_equal(self.m_y.to_list(), expected, "y")
