"""Private L1 data cache model.

Tags-only timing cache: data words live in the flat
:class:`~repro.mem.image.MemoryImage`; the cache tracks presence,
coherence state, LRU, and — the paper's L1 extension (Section 3.3) —
one *GLSC entry* per line: a valid bit plus the SMT-thread id that
holds the gather-link reservation.

Which states a line can actually occupy is the business of the
configured :class:`~repro.mem.protocol.CoherenceProtocol`: the default
MSI policy uses only S and M, MESI adds E (clean exclusive), and MOESI
adds O (owned — dirty but shared).  The cache itself is
state-agnostic; it stores whatever small int the protocol installs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.mem.layout import LineGeometry

__all__ = [
    "MSI_M",
    "MSI_S",
    "MESI_E",
    "MOESI_O",
    "STATE_NAMES",
    "L1Line",
    "L1Cache",
]

#: Coherence states, interned as small ints for cheap compares on the
#: hot path; absence from the cache is the I state.  S and M are the
#: MSI core every protocol shares; E and O exist only under the
#: protocols that install them (``mesi`` / ``moesi``).
MSI_S = 1
MSI_M = 2
MESI_E = 3
MOESI_O = 4

STATE_NAMES = {MSI_S: "S", MSI_M: "M", MESI_E: "E", MOESI_O: "O"}
_STATE_NAMES = STATE_NAMES


class L1Line:
    """One resident L1 cache line (tag + state + GLSC entry)."""

    __slots__ = (
        "line_addr",
        "state",
        "glsc_valid",
        "glsc_tid",
        "last_use",
        "prefetched",
    )

    def __init__(self, line_addr: int, state: int, now: int) -> None:
        self.line_addr = line_addr
        self.state = state
        self.glsc_valid = False
        self.glsc_tid = -1
        self.last_use = now
        self.prefetched = False

    def clear_glsc(self) -> None:
        """Drop the GLSC reservation on this line, if any."""
        self.glsc_valid = False
        self.glsc_tid = -1

    def __repr__(self) -> str:
        glsc = f", glsc=t{self.glsc_tid}" if self.glsc_valid else ""
        state = _STATE_NAMES.get(self.state, self.state)
        return f"L1Line({self.line_addr:#x}, {state}{glsc})"


class L1Cache:
    """A set-associative, LRU, tags-only L1 cache for one core.

    Each set is an insertion-ordered dict keyed by line address, so
    lookups are O(1) instead of a way scan, while eviction keeps the
    reference semantics: least ``last_use`` wins, ties broken by
    insertion (fill) order.
    """

    __slots__ = (
        "core_id",
        "n_sets",
        "assoc",
        "geometry",
        "_sets",
        "_set_shift",
        "_set_mask",
    )

    def __init__(
        self,
        core_id: int,
        n_sets: int,
        assoc: int,
        geometry: LineGeometry,
    ) -> None:
        if n_sets < 1 or assoc < 1:
            raise SimulationError("L1 must have >= 1 set and >= 1 way")
        self.core_id = core_id
        self.n_sets = n_sets
        self.assoc = assoc
        self.geometry = geometry
        # Validates the power-of-two requirement once, up front.
        geometry.set_index(0, n_sets)
        self._set_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = n_sets - 1
        self._sets: List[Dict[int, L1Line]] = [{} for _ in range(n_sets)]

    # -- lookup ----------------------------------------------------------

    def _set_for(self, line_addr: int) -> Dict[int, L1Line]:
        return self._sets[(line_addr >> self._set_shift) & self._set_mask]

    def lookup(self, line_addr: int) -> Optional[L1Line]:
        """The resident line for ``line_addr``, or None (I state)."""
        return self._sets[
            (line_addr >> self._set_shift) & self._set_mask
        ].get(line_addr)

    def touch(self, line: L1Line, now: int) -> None:
        """Record a use for LRU purposes."""
        line.last_use = now

    # -- state changes -----------------------------------------------------

    def install(
        self,
        line_addr: int,
        state: int,
        now: int,
        victim_ok: Optional[Callable[[L1Line], bool]] = None,
    ) -> Optional[L1Line]:
        """Bring ``line_addr`` in with ``state``, evicting LRU if needed.

        ``victim_ok`` filters eviction candidates; this is how the GSU
        implements the "never evict a linked line for a gather-link"
        policy (Section 3.2b).  Returns the evicted :class:`L1Line`
        (caller handles its writeback and directory update), a fresh
        sentinel with ``line_addr == -1`` when no eviction was needed,
        or ``None`` when no acceptable victim exists (install refused).
        """
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            raise SimulationError(
                f"install of already-resident line {line_addr:#x} "
                f"in core {self.core_id}"
            )
        evicted: Optional[L1Line] = None
        if len(cache_set) >= self.assoc:
            candidates = [
                line
                for line in cache_set.values()
                if victim_ok is None or victim_ok(line)
            ]
            if not candidates:
                return None
            evicted = min(candidates, key=lambda line: line.last_use)
            del cache_set[evicted.line_addr]
        cache_set[line_addr] = L1Line(line_addr, state, now)
        if evicted is None:
            return L1Line(-1, MSI_S, now)  # sentinel: no victim
        return evicted

    def invalidate(self, line_addr: int) -> Optional[L1Line]:
        """Remove ``line_addr`` (→ I).  Returns the line that was resident."""
        return self._set_for(line_addr).pop(line_addr, None)

    def downgrade(self, line_addr: int) -> Optional[L1Line]:
        """M → S transition (remote read observed).  Returns the line."""
        line = self.lookup(line_addr)
        if line is not None and line.state == MSI_M:
            line.state = MSI_S
        return line

    def resident_lines(self) -> Iterator[L1Line]:
        """All resident lines (for invariant checks and tests)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)
