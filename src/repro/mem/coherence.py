"""Directory-based coherence controller (mechanism half of the seam).

This is the glue of the memory hierarchy: it owns the per-core L1s,
the shared inclusive L2 (with directory state), main memory, the
scalar ll/sc reservation file, the GLSC reservation tracker, and the
stride prefetcher, and it implements the coherence *transactions* the
core-side units (LSU and GSU) invoke:

=====================  ====================================================
``read``               load a word; line ends S (or stays M) in the L1
``write``              store a word; line ends M; other copies invalidated;
                       every reservation on the line is destroyed
``read_linked``        the per-line half of ``vgatherlink``: a read that
                       additionally takes a GLSC reservation, subject to
                       the failure policies of Section 3.2
``write_conditional``  the per-line half of ``vscattercond``: a write that
                       only proceeds if the GLSC reservation is intact
``scalar_ll/scalar_sc``  the Base architecture's primitives (Section 2.3)
=====================  ====================================================

Latency model (Table 1): 3-cycle L1 hit; +12 to reach the L2
bank/directory; +12 for any remote-L1 forward or invalidation hop;
+280 for main memory.  Transactions are resolved synchronously — the
caller learns the total latency and schedules its thread's wakeup —
which preserves the *relative* timing behaviour (miss overlap happens
in the GSU, which issues many transactions whose latencies run
concurrently).

The *policy* side — what a miss or upgrade does to coherence state,
and which states exist — lives in :mod:`repro.mem.protocol` behind
the message vocabulary of :mod:`repro.mem.messages`; this class keeps
the mechanism every protocol shares (install/evict/invalidate,
reservation kills, bank occupancy, chaos injection) and delegates the
transactions to the policy selected by ``MachineConfig.protocol``.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.errors import AlignmentError, SimulationError
from repro.core.glsc import GlscTracker, make_tracker
from repro.mem.cache import L1Cache, L1Line
from repro.mem.messages import Inv, PutM, PutS
from repro.mem.protocol import (
    AccessResult,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_MEM,
    LEVEL_REMOTE,
    make_protocol,
)
from repro.obs.events import (
    CacheHit,
    CacheMiss,
    Eviction,
    Invalidation,
    ReservationLost,
    ReservationSet,
    Writeback,
)
from repro.mem.dram import MainMemory
from repro.mem.l2 import L2Cache
from repro.mem.prefetch import StridePrefetcher
from repro.mem.reservations import ReservationFile
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats

__all__ = [
    "AccessResult",
    "CoherenceSystem",
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_MEM",
    "LEVEL_REMOTE",
]


class CoherenceSystem:
    """Owns all shared memory-system state and implements transactions."""

    def __init__(
        self, config: MachineConfig, stats: MachineStats, obs=None
    ) -> None:
        """``obs`` is an optional :class:`~repro.obs.bus.EventBus`;
        when absent (or when no sink wants a category) the
        corresponding emission sites reduce to one boolean test and
        allocate nothing.  Events mirror the stats counters exactly:
        every ``l1_misses``/``writebacks``/``invalidations_sent``
        increment has a matching typed event with the same
        attribution.
        """
        self.config = config
        self.stats = stats
        self.obs = obs
        self.geometry = config.geometry
        self.l1s: Dict[int, L1Cache] = {
            core: L1Cache(core, config.l1_sets, config.l1_assoc, self.geometry)
            for core in range(config.n_cores)
        }
        self.l2 = L2Cache(
            config.l2_sets, config.l2_assoc, config.l2_banks, self.geometry
        )
        self.dram = MainMemory(config.mem_latency)
        self.reservations = ReservationFile(self.geometry)
        self.glsc: GlscTracker = make_tracker(
            self.l1s, config.n_cores, config.glsc_buffer_entries
        )
        self.prefetcher = StridePrefetcher(
            config.line_bytes, config.prefetch_degree, config.prefetch_enabled
        )
        # Why the last valid GLSC reservation on (core, line) died; the
        # GSU pops this to attribute scatter-conditional failures.
        self._glsc_loss_cause: Dict[Tuple[int, int], str] = {}
        # Failure injection (best-effort model stress test): when
        # configured, reservations are spuriously destroyed at random —
        # legal per Section 3, so every client must still be correct.
        self._chaos_rng = (
            random.Random(config.chaos_seed)
            if config.chaos_reservation_loss > 0
            else None
        )
        self.chaos_events = 0
        # Per-bank occupancy clocks: concurrent transactions to the
        # same L2 bank queue behind each other (the reason the paper's
        # L2 is split into 16 banks).
        self._bank_free = [0] * config.l2_banks
        self._line_bytes = self.geometry.line_bytes
        # Hot-path accelerators: positional L1 access (the dict keys
        # are exactly 0..n_cores-1) and a shared immutable result for
        # the overwhelmingly common L1-hit outcome.
        self._l1_list = [self.l1s[core] for core in range(config.n_cores)]
        self._l1_lookups = [l1.lookup for l1 in self._l1_list]
        self._hit_l1 = AccessResult(config.l1_hit_latency, LEVEL_L1)
        # Policy half of the seam: the protocol owns the transaction
        # state machine; the bound-method aliases keep the miss paths
        # one call deep, exactly as the pre-seam private methods were.
        self.protocol = make_protocol(config.protocol, self)
        self._dirty_states = self.protocol.dirty_states
        self._read_miss = self.protocol.read_miss
        self._obtain_modified = self.protocol.obtain_modified
        self._prefetch_fill = self.protocol.prefetch_fill

    def _line_addr(self, addr: int) -> int:
        """Inline-friendly line rounding for the hot transactions."""
        if addr < 0:
            raise AlignmentError(f"negative address {addr:#x}")
        return addr - addr % self._line_bytes

    # ------------------------------------------------------------------
    # public transactions
    # ------------------------------------------------------------------

    def read(
        self,
        core: int,
        slot: int,
        addr: int,
        now: int,
        *,
        sync: bool = False,
    ) -> AccessResult:
        """Load transaction: line ends up S (or stays M) in ``core``'s L1."""
        if addr < 0:
            raise AlignmentError(f"negative address {addr:#x}")
        line_addr = addr - addr % self._line_bytes
        stats = self.stats
        stats.l1_accesses += 1
        if sync:
            stats.l1_sync_accesses += 1
        if self._chaos_rng is not None:
            self._maybe_inject_loss(now)
        line = self._l1_lookups[core](line_addr)
        if line is not None:
            if line.prefetched:
                stats.prefetch_hits += 1
                line.prefetched = False
            line.last_use = now
            stats.l1_hits += 1
            obs = self.obs
            if obs is not None and obs.wants_cache:
                obs.emit(CacheHit(now, core, slot, line_addr, "L1", "read"))
            return self._hit_l1
        result = self._read_miss(core, slot, line_addr, now, victim_ok=None)
        self._train_prefetcher(core, slot, line_addr, now)
        return result

    def write(
        self,
        core: int,
        slot: int,
        addr: int,
        now: int,
        *,
        sync: bool = False,
    ) -> AccessResult:
        """Store transaction: obtain M, invalidate other copies.

        Destroys every scalar reservation and GLSC entry on the line
        (a store-conditional's own reservation must be consumed by the
        caller *before* invoking this).
        """
        if addr < 0:
            raise AlignmentError(f"negative address {addr:#x}")
        line_addr = addr - addr % self._line_bytes
        stats = self.stats
        stats.l1_accesses += 1
        if sync:
            stats.l1_sync_accesses += 1
        if self._chaos_rng is not None:
            self._maybe_inject_loss(now)
        result = self._obtain_modified(core, slot, line_addr, now)
        self._kill_reservations_on_write(core, line_addr, now,
                                         attacker_slot=slot)
        return result

    def read_linked(
        self,
        core: int,
        slot: int,
        addr: int,
        now: int,
    ) -> Tuple[AccessResult, bool, Optional[str]]:
        """Per-line gather-link: read + take a GLSC reservation.

        Returns ``(access, linked, failure_cause)``.  Failure causes
        follow Section 3.2's design freedoms:

        * ``link_stolen`` — another SMT thread on this core already
          holds the line's GLSC entry (freedom (a));
        * ``eviction`` — filling the line would evict a linked line and
          ``glsc_fail_on_link_eviction`` protects it (freedom (b));
        * ``miss_policy`` — the lane missed in the L1 and
          ``glsc_fail_on_miss`` chose to fail it rather than wait
          (freedom (c)); the fill still happens so a retry will hit.
        """
        if addr < 0:
            raise AlignmentError(f"negative address {addr:#x}")
        line_addr = addr - addr % self._line_bytes
        self.stats.l1_accesses += 1
        self.stats.l1_sync_accesses += 1
        if self._chaos_rng is not None:
            self._maybe_inject_loss(now)
        cfg = self.config
        obs = self.obs
        line = self._l1_lookups[core](line_addr)
        if line is not None:
            holder = self.glsc.holder(core, line_addr)
            if holder is not None and holder != slot:
                return (
                    self._hit_l1,
                    False,
                    "link_stolen",
                )
            self._note_demand_hit(line)
            line.last_use = now
            self.stats.l1_hits += 1
            self.glsc.link(core, slot, line_addr)
            self._glsc_loss_cause.pop((core, line_addr), None)
            if obs is not None:
                if obs.wants_cache:
                    obs.emit(
                        CacheHit(now, core, slot, line_addr, "L1", "read")
                    )
                if obs.wants_reservation:
                    obs.emit(
                        ReservationSet(now, core, slot, line_addr, "glsc")
                    )
            return (self._hit_l1, True, None)

        if cfg.glsc_fail_on_miss:
            # Fail the lane fast but start the fill in the background,
            # so the retry iteration finds the line resident.
            self._read_miss(
                core, slot, line_addr, now,
                victim_ok=self._victim_filter(core),
            )
            self._train_prefetcher(core, slot, line_addr, now)
            return (
                self._hit_l1,
                False,
                "miss_policy",
            )

        victim_ok = (
            self._victim_filter(core) if cfg.glsc_fail_on_link_eviction else None
        )
        result = self._read_miss(core, slot, line_addr, now, victim_ok=victim_ok)
        self._train_prefetcher(core, slot, line_addr, now)
        if result is None:
            # No evictable way in the set: every candidate holds a live
            # GLSC reservation.  The element fails (best-effort).
            return (
                AccessResult(cfg.l1_hit_latency + cfg.l2_latency, LEVEL_L2),
                False,
                "eviction",
            )
        self.glsc.link(core, slot, line_addr)
        self._glsc_loss_cause.pop((core, line_addr), None)
        if obs is not None and obs.wants_reservation:
            obs.emit(ReservationSet(now, core, slot, line_addr, "glsc"))
        return (result, True, None)

    def write_conditional(
        self,
        core: int,
        slot: int,
        addr: int,
        now: int,
    ) -> Tuple[AccessResult, bool, Optional[str]]:
        """Per-line scatter-conditional: write iff the reservation holds.

        Returns ``(access, success, failure_cause)``.  On success the
        GLSC entry is consumed, the line is brought to M, and all other
        reservations on the line are destroyed.
        """
        if addr < 0:
            raise AlignmentError(f"negative address {addr:#x}")
        line_addr = addr - addr % self._line_bytes
        self.stats.l1_accesses += 1
        self.stats.l1_sync_accesses += 1
        if self._chaos_rng is not None:
            self._maybe_inject_loss(now)
        if not self.glsc.check(core, slot, line_addr):
            cause = self._glsc_loss_cause.pop(
                (core, line_addr), "thread_conflict"
            )
            return (
                self._hit_l1,
                False,
                cause,
            )
        # Reservation intact: the line is resident (evictions clear the
        # entry), so this is at worst an S -> M upgrade.
        self.glsc.clear(core, line_addr)
        obs = self.obs
        if obs is not None and obs.wants_reservation:
            obs.emit(
                ReservationLost(now, core, slot, line_addr, "glsc",
                                "consumed", core, slot)
            )
        result = self._obtain_modified(core, slot, line_addr, now)
        self._kill_reservations_on_write(core, line_addr, now,
                                         attacker_slot=slot)
        return (result, True, None)

    def scalar_ll(
        self, core: int, slot: int, addr: int, now: int
    ) -> AccessResult:
        """Scalar load-linked: a read that sets this thread's reservation."""
        result = self.read(core, slot, addr, now, sync=True)
        self.reservations.set(core, slot, addr)
        obs = self.obs
        if obs is not None and obs.wants_reservation:
            obs.emit(
                ReservationSet(
                    now, core, slot, self.geometry.line_addr(addr), "scalar"
                )
            )
        return result

    def scalar_sc(
        self, core: int, slot: int, addr: int, now: int
    ) -> Tuple[AccessResult, bool]:
        """Scalar store-conditional; consumes the reservation either way."""
        held = self.reservations.holds(core, slot, addr)
        held_line = self.reservations.held_line(core, slot)
        self.reservations.clear_thread(core, slot)
        obs = self.obs
        if (
            held_line is not None
            and obs is not None
            and obs.wants_reservation
        ):
            obs.emit(
                ReservationLost(
                    now, core, slot, held_line, "scalar",
                    "consumed" if held else "mismatch",
                    core, slot,
                )
            )
        if not held:
            self._count_l1_access(sync=True, now=now)
            return self._hit_l1, False
        result = self.write(core, slot, addr, now, sync=True)
        return result, True

    # ------------------------------------------------------------------
    # bulk warm-up
    # ------------------------------------------------------------------

    def can_warm_fill(self) -> bool:
        """Whether :meth:`warm_fill` is equivalent to the per-read loop.

        Chaos injection consumes RNG draws on every access, so a warm
        pass that skips accesses would desynchronize the draw sequence;
        callers fall back to the slow loop in that case.
        """
        return self._chaos_rng is None

    def warm_fill(self, first: int, limit: int) -> None:
        """Bulk cache warm-up: sequential line fill into every core's L1.

        State-equivalent to::

            for core in range(n_cores):
                for line in range(first, limit, line_bytes):
                    self.read(core, 0, line, now=0)

        but the per-access bookkeeping of the full ``read`` transaction
        — latency accounting, chaos checks, result allocation, LRU
        touches that rewrite 0 with 0 — is skipped.  Misses still go
        through the real protocol path (``_read_miss`` + prefetcher
        training), so L1/L2/directory contents, bank clocks, DRAM
        access counts, and prefetched-bit patterns match the slow loop
        bit for bit.  Stats counters are *not* maintained; callers
        reset them afterwards (as ``Machine.warm_caches`` always did).
        """
        if self._chaos_rng is not None:
            raise SimulationError(
                "warm_fill requires chaos injection to be disabled"
            )
        line_bytes = self._line_bytes
        for core in range(self.config.n_cores):
            lookup = self.l1s[core].lookup
            for line_addr in range(first, limit, line_bytes):
                line = lookup(line_addr)
                if line is not None:
                    # The slow path's demand-hit bookkeeping reduces to
                    # clearing the prefetched bit (stats reset anyway,
                    # last_use is already 0 during warming).
                    line.prefetched = False
                    continue
                self._read_miss(core, 0, line_addr, 0, victim_ok=None)
                self._train_prefetcher(core, 0, line_addr, 0)

    # ------------------------------------------------------------------
    # transaction internals
    # ------------------------------------------------------------------

    def _book_l2_bank(self, line_addr: int, now: int) -> int:
        """Queue on the line's L2 bank; returns added waiting cycles."""
        bank = self.l2.bank_of(line_addr)
        free = self._bank_free[bank]
        start = now if now > free else free
        self._bank_free[bank] = start + self.config.l2_bank_busy_cycles
        return start - now

    def _count_l1_access(self, sync: bool, now: int) -> None:
        self.stats.l1_accesses += 1
        if sync:
            self.stats.l1_sync_accesses += 1
        if self._chaos_rng is not None:
            self._maybe_inject_loss(now)

    def _maybe_inject_loss(self, now: int) -> None:
        """Spuriously destroy random reservations (failure injection)."""
        probability = self.config.chaos_reservation_loss
        if self._chaos_rng.random() < probability:
            victims = self.reservations.live_keys()
            if victims:
                core, slot = self._chaos_rng.choice(victims)
                held_line = self.reservations.held_line(core, slot)
                self.reservations.clear_thread(core, slot)
                self.chaos_events += 1
                obs = self.obs
                if obs is not None and obs.wants_reservation:
                    obs.emit(
                        ReservationLost(
                            now, core, slot, held_line, "scalar", "chaos"
                        )
                    )
        if self._chaos_rng.random() < probability:
            entries = self.glsc.live_entries()
            if entries:
                core, line_addr = self._chaos_rng.choice(entries)
                self._kill_glsc(core, line_addr, "eviction", now)
                self.chaos_events += 1

    def _note_demand_hit(self, line: L1Line) -> None:
        if line.prefetched:
            self.stats.prefetch_hits += 1
            line.prefetched = False

    def _victim_filter(self, core: int):
        """Eviction filter that protects lines with live GLSC entries."""

        def ok(line: L1Line) -> bool:
            return self.glsc.holder(core, line.line_addr) is None

        return ok

    def _install_l1(
        self,
        core: int,
        line_addr: int,
        state: int,
        now: int,
        victim_ok,
        prefetched: bool = False,
        attacker_slot: int = -1,
    ) -> bool:
        """Install a line into an L1, handling the victim's bookkeeping.

        ``attacker_slot`` names the SMT slot whose fill displaces the
        victim (attribution only; -1 for prefetch/unknown).
        """
        evicted = self.l1s[core].install(line_addr, state, now, victim_ok)
        if evicted is None:
            return False
        if evicted.line_addr >= 0:
            self._retire_l1_line(core, evicted, now,
                                 attacker_core=core,
                                 attacker_slot=attacker_slot)
        new_line = self.l1s[core].lookup(line_addr)
        new_line.prefetched = prefetched
        return True

    def _retire_l1_line(
        self,
        core: int,
        line: L1Line,
        now: int,
        attacker_core: int = -1,
        attacker_slot: int = -1,
    ) -> None:
        """A line left ``core``'s L1 by eviction: fix directory + reservations."""
        obs = self.obs
        dirty = line.state in self._dirty_states
        if dirty:
            self.stats.writebacks += 1
        self.protocol.counts["PutM" if dirty else "PutS"] += 1
        if obs is not None:
            if obs.wants_coherence:
                obs.emit(Eviction(now, core, line.line_addr, dirty))
                if dirty:
                    obs.emit(Writeback(now, core, line.line_addr, "eviction"))
            if obs.wants_protocol:
                obs.emit(
                    PutM(now, core, line.line_addr)
                    if dirty
                    else PutS(now, core, line.line_addr)
                )
        entry = self.l2.lookup(line.line_addr)
        if entry is None:
            raise SimulationError(
                f"evicting {line.line_addr:#x} from core {core} but the "
                f"inclusive L2 does not hold it"
            )
        entry.drop(core)
        victims = self.reservations.clear_core_line(core, line.line_addr)
        self._emit_scalar_losses(victims, line.line_addr, "eviction", now,
                                 attacker_core, attacker_slot)
        self._kill_glsc_departed(core, line, "eviction", now,
                                 attacker_core, attacker_slot)

    def _invalidate_l1(
        self,
        core: int,
        line_addr: int,
        now: int,
        attacker_core: int = -1,
        attacker_slot: int = -1,
    ) -> None:
        """Invalidate one L1 copy (remote write observed)."""
        line = self.l1s[core].invalidate(line_addr)
        if line is None:
            raise SimulationError(
                f"directory says core {core} shares {line_addr:#x} but "
                f"its L1 does not hold it"
            )
        obs = self.obs
        dirty = line.state in self._dirty_states
        if dirty:
            self.stats.writebacks += 1
        self.stats.invalidations_sent += 1
        self.protocol.counts["Inv"] += 1
        if obs is not None:
            if obs.wants_coherence:
                obs.emit(Invalidation(now, core, line_addr, "remote_write"))
                if dirty:
                    obs.emit(Writeback(now, core, line_addr, "invalidation"))
            if obs.wants_protocol:
                obs.emit(Inv(now, core, line_addr, "remote_write"))
        victims = self.reservations.clear_core_line(core, line_addr)
        self._emit_scalar_losses(victims, line_addr, "thread_conflict", now,
                                 attacker_core, attacker_slot)
        self._kill_glsc_departed(core, line, "thread_conflict", now,
                                 attacker_core, attacker_slot)

    def _back_invalidate(
        self,
        victim_entry,
        now: int,
        attacker_core: int = -1,
        attacker_slot: int = -1,
    ) -> None:
        """Inclusive-L2 eviction: remove every L1 copy of the victim."""
        obs = self.obs
        wants_coherence = obs is not None and obs.wants_coherence
        wants_protocol = obs is not None and obs.wants_protocol
        counts = self.protocol.counts
        for core in sorted(victim_entry.sharers):
            line = self.l1s[core].invalidate(victim_entry.line_addr)
            if line is None:
                raise SimulationError(
                    f"L2 victim {victim_entry.line_addr:#x}: directory "
                    f"lists core {core} but its L1 lacks the line"
                )
            dirty = line.state in self._dirty_states
            if dirty:
                self.stats.writebacks += 1
            self.stats.invalidations_sent += 1
            counts["Inv"] += 1
            if wants_coherence:
                obs.emit(
                    Invalidation(
                        now, core, victim_entry.line_addr, "l2_eviction"
                    )
                )
                if dirty:
                    obs.emit(
                        Writeback(
                            now, core, victim_entry.line_addr, "invalidation"
                        )
                    )
            if wants_protocol:
                obs.emit(
                    Inv(now, core, victim_entry.line_addr, "l2_eviction")
                )
            victims = self.reservations.clear_core_line(
                core, victim_entry.line_addr
            )
            self._emit_scalar_losses(
                victims, victim_entry.line_addr, "eviction", now,
                attacker_core, attacker_slot,
            )
            self._kill_glsc_departed(core, line, "eviction", now,
                                     attacker_core, attacker_slot)

    def _emit_scalar_losses(
        self,
        victims,
        line_addr: int,
        cause: str,
        now: int,
        attacker_core: int = -1,
        attacker_slot: int = -1,
    ) -> None:
        """Emit one ReservationLost per scalar reservation casualty."""
        if not victims:
            return
        obs = self.obs
        if obs is None or not obs.wants_reservation:
            return
        for core, slot in victims:
            obs.emit(
                ReservationLost(now, core, slot, line_addr, "scalar", cause,
                                attacker_core, attacker_slot)
            )

    def _kill_glsc(
        self,
        core: int,
        line_addr: int,
        cause: str,
        now: int,
        attacker_core: int = -1,
        attacker_slot: int = -1,
    ) -> None:
        """Clear a GLSC entry, remembering why it died (for Table 4)."""
        holder = self.glsc.take(core, line_addr)
        if holder is not None:
            self._glsc_loss_cause[(core, line_addr)] = cause
            obs = self.obs
            if obs is not None and obs.wants_reservation:
                obs.emit(
                    ReservationLost(now, core, holder, line_addr, "glsc",
                                    cause, attacker_core, attacker_slot)
                )

    def _kill_glsc_departed(
        self,
        core: int,
        line: L1Line,
        cause: str,
        now: int,
        attacker_core: int = -1,
        attacker_slot: int = -1,
    ) -> None:
        """Like :meth:`_kill_glsc`, for a line already removed from the L1.

        The tag tracker's state left with the line object, so consult
        its GLSC bits directly; the buffer tracker still needs an
        explicit clear.
        """
        holder = self.glsc.holder(core, line.line_addr)
        had_entry = line.glsc_valid or holder is not None
        if had_entry:
            self._glsc_loss_cause[(core, line.line_addr)] = cause
            obs = self.obs
            if obs is not None and obs.wants_reservation:
                slot = line.glsc_tid if line.glsc_valid else holder
                obs.emit(
                    ReservationLost(now, core, slot, line.line_addr, "glsc",
                                    cause, attacker_core, attacker_slot)
                )
        self.glsc.clear(core, line.line_addr)

    def _kill_reservations_on_write(
        self,
        writer_core: int,
        line_addr: int,
        now: int,
        attacker_slot: int = -1,
    ) -> None:
        """A word on ``line_addr`` was written: destroy every reservation.

        Runs once per store, so the common no-reservations case is
        resolved inline: the scalar file is consulted only when it has
        any holder at all, and the GLSC entry is taken (holder + clear
        in one lookup) rather than queried then cleared.
        """
        reservations = self.reservations
        if reservations._held:
            victims = reservations.clear_line(line_addr)
            if victims:
                self._emit_scalar_losses(victims, line_addr,
                                         "thread_conflict", now,
                                         writer_core, attacker_slot)
        # Other cores' GLSC entries died with their invalidations; the
        # writer's own core may still hold one (another SMT thread, or
        # a stale own link) — normal stores clear it too (Section 3.3).
        holder = self.glsc.take(writer_core, line_addr)
        if holder is not None:
            self._glsc_loss_cause[(writer_core, line_addr)] = \
                "thread_conflict"
            obs = self.obs
            if obs is not None and obs.wants_reservation:
                obs.emit(
                    ReservationLost(now, writer_core, holder, line_addr,
                                    "glsc", "thread_conflict",
                                    writer_core, attacker_slot)
                )

    # ------------------------------------------------------------------
    # prefetcher
    # ------------------------------------------------------------------

    def _train_prefetcher(
        self, core: int, slot: int, line_addr: int, now: int
    ) -> None:
        targets = self.prefetcher.on_demand_miss(core, slot, line_addr)
        for target in targets:
            if self.l1s[core].lookup(target) is not None:
                continue
            self.stats.prefetches_issued += 1
            self._prefetch_fill(core, target, now)

    # ------------------------------------------------------------------
    # invariant checking (used by property tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the coherence invariants; raises SimulationError."""
        protocol = self.protocol
        for entry in self.l2.entries():
            protocol.check_entry(entry)
            for core in entry.sharers:
                line = self.l1s[core].lookup(entry.line_addr)
                if line is None:
                    raise SimulationError(
                        f"directory lists core {core} for "
                        f"{entry.line_addr:#x} but L1 lacks it"
                    )
                allowed = protocol.expected_l1_states(entry, core)
                if line.state not in allowed:
                    raise SimulationError(
                        f"core {core} holds {entry.line_addr:#x} in "
                        f"{line.state}, {protocol.name} directory "
                        f"implies one of {sorted(allowed)}"
                    )
        for core, l1 in self.l1s.items():
            for line in l1.resident_lines():
                entry = self.l2.lookup(line.line_addr)
                if entry is None:
                    raise SimulationError(
                        f"L1 of core {core} holds {line.line_addr:#x} "
                        f"not present in the inclusive L2"
                    )
                if core not in entry.sharers:
                    raise SimulationError(
                        f"L1 of core {core} holds {line.line_addr:#x} "
                        f"but the directory does not list it"
                    )
