"""Directory state for the shared L2.

Each L2-resident line carries the coherence directory information the
paper describes ("The shared cache holds directory information for each
cache line to maintain coherence amongst the private caches"): the set
of L1 sharers and the owning core when some L1 holds the line modified.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import SimulationError

__all__ = ["DirectoryEntry"]


class DirectoryEntry:
    """Directory record for one L2-resident line."""

    __slots__ = ("line_addr", "sharers", "owner", "last_use")

    def __init__(self, line_addr: int, now: int) -> None:
        self.line_addr = line_addr
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None
        self.last_use = now

    def add_sharer(self, core_id: int, shared_owner_ok: bool = False) -> None:
        """Record that ``core_id`` holds the line in S state.

        ``shared_owner_ok`` is the MOESI relaxation: an O-state owner
        keeps the line (dirty) while readers join the sharer set, so
        owner and foreign sharers may coexist.  MSI/MESI keep the
        strict exclusive-owner rule.
        """
        if (
            not shared_owner_ok
            and self.owner is not None
            and self.owner != core_id
        ):
            raise SimulationError(
                f"line {self.line_addr:#x}: adding sharer {core_id} while "
                f"owned by {self.owner}"
            )
        self.sharers.add(core_id)

    def set_owner(self, core_id: int) -> None:
        """Record that ``core_id`` holds the line in M state (sole copy)."""
        self.sharers = {core_id}
        self.owner = core_id

    def clear_owner(self) -> None:
        """Owner downgraded to S (sharers keep the owner's entry)."""
        self.owner = None

    def drop(self, core_id: int) -> None:
        """``core_id`` no longer holds the line (eviction/invalidation)."""
        self.sharers.discard(core_id)
        if self.owner == core_id:
            self.owner = None

    def check(self, shared_owner_ok: bool = False) -> None:
        """Assert internal consistency (used by invariant tests).

        Under the strict (MSI/MESI) shape an owner is the sole sharer;
        under MOESI (``shared_owner_ok``) the owner must merely be a
        member of the sharer set.
        """
        if self.owner is None:
            return
        if shared_owner_ok:
            if self.owner not in self.sharers:
                raise SimulationError(
                    f"line {self.line_addr:#x}: owner {self.owner} not in "
                    f"sharers {sorted(self.sharers)}"
                )
        elif self.sharers != {self.owner}:
            raise SimulationError(
                f"line {self.line_addr:#x}: owner {self.owner} but "
                f"sharers {sorted(self.sharers)}"
            )

    def __repr__(self) -> str:
        return (
            f"DirectoryEntry({self.line_addr:#x}, sharers={sorted(self.sharers)}, "
            f"owner={self.owner})"
        )
