"""Main-memory model.

The paper models main memory as a flat 280-cycle access (Table 1); so
do we.  The class exists (rather than a bare constant) so the access
counter and latency live behind one seam, and so tests/ablations can
swap in a different latency profile.
"""

from __future__ import annotations

__all__ = ["MainMemory"]


class MainMemory:
    """Fixed-latency DRAM backstop behind the L2."""

    def __init__(self, access_latency: int) -> None:
        self.access_latency = access_latency
        self.accesses = 0

    def access(self) -> int:
        """Perform one line fetch/writeback; returns its latency."""
        self.accesses += 1
        return self.access_latency
