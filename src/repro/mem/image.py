"""The simulated flat memory image.

Benchmark kernels allocate their data structures here, and every memory
instruction executed by the simulator reads or writes these words.
Keeping a single authoritative word array means atomicity properties are
*observed*, not assumed: if two simulated threads race on a word, the
simulated outcome is whatever the modeled hardware allows.

:class:`MemoryImage` provides:

* a bump allocator (``alloc`` / ``alloc_array``) with line-alignment,
* word-granularity load/store used by the memory hierarchy,
* :class:`ArrayView`, a convenience wrapper kernels use to initialize
  and read back arrays without manual address arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import AllocationError, MemoryError_
from repro.mem.layout import WORD_BYTES, LineGeometry, RegionMap

__all__ = ["MemoryImage", "ArrayView", "ImageSnapshot"]

Number = Union[int, float]


@dataclass(frozen=True)
class ImageSnapshot:
    """Frozen post-``allocate`` state of a :class:`MemoryImage`.

    Produced by :meth:`MemoryImage.snapshot`, consumed by
    :meth:`MemoryImage.from_snapshot`.  ``words`` and ``regions`` are
    shared by reference — treat them as read-only.
    """

    size_bytes: int
    geometry: LineGeometry
    words: Dict[int, Number]
    brk: int
    regions: RegionMap


class MemoryImage:
    """A flat, word-addressable simulated memory with a bump allocator."""

    def __init__(
        self,
        size_bytes: int = 1 << 24,
        geometry: Optional[LineGeometry] = None,
    ) -> None:
        if size_bytes <= 0 or size_bytes % WORD_BYTES:
            raise AllocationError(
                f"size_bytes must be a positive multiple of {WORD_BYTES}, "
                f"got {size_bytes}"
            )
        self.geometry = geometry or LineGeometry()
        self.size_bytes = size_bytes
        self._n_words = size_bytes // WORD_BYTES
        # Sparse storage: unwritten words read as zero.  A 16MB image
        # would otherwise cost a 4M-entry list per machine.
        self._words: Dict[int, Number] = {}
        # Leave address 0 unallocated so it can serve as a null sentinel.
        self._brk = self.geometry.line_bytes
        # Named-allocation symbolization (diagnostics only; the
        # simulated program never sees region names).
        self.regions = RegionMap()

    # -- allocation -----------------------------------------------------

    def alloc(
        self,
        nbytes: int,
        align: Optional[int] = None,
        name: Optional[str] = None,
    ) -> int:
        """Reserve ``nbytes`` and return the base byte address.

        The default alignment is one cache line, which mirrors how the
        paper's benchmarks lay out shared arrays (and keeps false
        sharing a deliberate choice rather than an allocator accident).
        A ``name`` registers the range in :attr:`regions` so contention
        reports can symbolize hot line addresses.
        """
        if nbytes <= 0:
            raise AllocationError(f"nbytes must be positive, got {nbytes}")
        align = align or self.geometry.line_bytes
        if align <= 0 or align % WORD_BYTES:
            raise AllocationError(
                f"align must be a positive multiple of {WORD_BYTES}, "
                f"got {align}"
            )
        base = self._brk + (-self._brk) % align
        end = base + nbytes
        if end > self.size_bytes:
            raise AllocationError(
                f"out of simulated memory: need {end} bytes, "
                f"have {self.size_bytes}"
            )
        self._brk = end
        if name:
            self.regions.add(name, base, nbytes)
        return base

    def alloc_words(
        self,
        nwords: int,
        align: Optional[int] = None,
        name: Optional[str] = None,
    ) -> int:
        """Reserve ``nwords`` 32-bit words and return the base address."""
        return self.alloc(nwords * WORD_BYTES, align, name=name)

    def alloc_array(
        self,
        values: Sequence[Number],
        align: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "ArrayView":
        """Allocate and initialize an array, returning a view over it."""
        base = self.alloc_words(max(len(values), 1), align, name=name)
        view = ArrayView(self, base, len(values))
        for i, value in enumerate(values):
            view[i] = value
        return view

    def alloc_zeros(
        self,
        nwords: int,
        align: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "ArrayView":
        """Allocate an array of ``nwords`` zero words."""
        base = self.alloc_words(nwords, align, name=name)
        return ArrayView(self, base, nwords)

    @property
    def bytes_allocated(self) -> int:
        """Current bump-pointer position (bytes handed out so far)."""
        return self._brk

    # -- snapshots (batched backend) -------------------------------------

    def snapshot(self) -> "ImageSnapshot":
        """An immutable copy of this image's contents and allocator state.

        The batched backend allocates a kernel's data once into a
        template image, snapshots it, and hydrates one private image
        per machine from the snapshot — a single bulk dict copy instead
        of re-running every ``store_word`` of ``allocate``.  Treat the
        snapshot as frozen: hydrated images copy the word dict before
        mutating it, but share the region map (which only ``alloc``
        grows, and hydrated images are never allocated into again).
        """
        return ImageSnapshot(
            size_bytes=self.size_bytes,
            geometry=self.geometry,
            words=dict(self._words),
            brk=self._brk,
            regions=self.regions,
        )

    @classmethod
    def from_snapshot(cls, snap: "ImageSnapshot") -> "MemoryImage":
        """A fresh image hydrated from :meth:`snapshot`.

        The word store is copied (each machine mutates its own words);
        the region map is shared read-only (see :meth:`snapshot`).
        """
        image = cls(snap.size_bytes, snap.geometry)
        image._words = dict(snap.words)
        image._brk = snap.brk
        image.regions = snap.regions
        return image

    # -- word access ------------------------------------------------------

    def _word_index(self, addr: int) -> int:
        # Hot path: addr >> 2 is word_index() for a valid address; the
        # slow path re-runs the full check to raise the canonical error.
        if addr < 0 or addr & 3:
            self.geometry.check_word_aligned(addr)
        index = addr >> 2
        if index >= self._n_words:
            raise MemoryError_(
                f"address {addr:#x} beyond simulated memory "
                f"({self.size_bytes} bytes)"
            )
        return index

    def load_word(self, addr: int) -> Number:
        """Read the 32-bit word at byte address ``addr``."""
        if addr < 0 or addr & 3:
            self.geometry.check_word_aligned(addr)
        index = addr >> 2
        if index >= self._n_words:
            raise MemoryError_(
                f"address {addr:#x} beyond simulated memory "
                f"({self.size_bytes} bytes)"
            )
        return self._words.get(index, 0)

    def store_word(self, addr: int, value: Number) -> None:
        """Write the 32-bit word at byte address ``addr``."""
        if addr < 0 or addr & 3:
            self.geometry.check_word_aligned(addr)
        index = addr >> 2
        if index >= self._n_words:
            raise MemoryError_(
                f"address {addr:#x} beyond simulated memory "
                f"({self.size_bytes} bytes)"
            )
        self._words[index] = value

    def load_words(self, addr: int, count: int) -> List[Number]:
        """Read ``count`` consecutive words starting at ``addr``."""
        start = self._word_index(addr)
        if start + count > self._n_words:
            raise MemoryError_(
                f"range [{addr:#x}, +{count} words) beyond simulated memory"
            )
        words = self._words
        return [words.get(i, 0) for i in range(start, start + count)]


class ArrayView:
    """A word-array window into a :class:`MemoryImage`.

    Kernels use views to initialize inputs and to read back results for
    verification; the *simulated* program only ever sees the base
    address.
    """

    __slots__ = ("_image", "base", "length")

    def __init__(self, image: MemoryImage, base: int, length: int) -> None:
        self._image = image
        self.base = base
        self.length = length

    def addr(self, index: int) -> int:
        """Byte address of element ``index``."""
        if not 0 <= index < self.length:
            raise MemoryError_(
                f"index {index} out of range for array of {self.length}"
            )
        return self.base + index * WORD_BYTES

    def __getitem__(self, index: int) -> Number:
        if not 0 <= index < self.length:
            raise MemoryError_(
                f"index {index} out of range for array of {self.length}"
            )
        return self._image.load_word(self.base + index * WORD_BYTES)

    def __setitem__(self, index: int, value: Number) -> None:
        if not 0 <= index < self.length:
            raise MemoryError_(
                f"index {index} out of range for array of {self.length}"
            )
        self._image.store_word(self.base + index * WORD_BYTES, value)

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Number]:
        return (self[i] for i in range(self.length))

    def to_list(self) -> List[Number]:
        """Materialize the array contents."""
        return list(self)

    def fill(self, values: Iterable[Number]) -> None:
        """Overwrite the array with ``values`` (must match length)."""
        values = list(values)
        if len(values) != self.length:
            raise MemoryError_(
                f"fill length {len(values)} != array length {self.length}"
            )
        for i, value in enumerate(values):
            self[i] = value
