"""Shared, inclusive, banked L2 cache with integrated directory.

The paper's L2 (Table 1): 16 MB, 8-way, 16 banks, physically
distributed, inclusive of the private L1s, holding the directory
information for each resident line.  We model tags + directory state;
data words live in the flat memory image.

Inclusivity matters for GLSC: when an L2 victim is chosen, every L1
copy must be back-invalidated, which silently destroys any gather-link
reservations on that line — one of the legal reservation-loss causes
the best-effort model permits (Section 3).

The directory entry attached to each resident line (owner + sharer
bitmap, :mod:`repro.mem.directory`) is protocol-agnostic storage; how
it is read and updated per transaction is decided by the coherence
seam's policy object (:mod:`repro.mem.protocol`), so the same banked
structure serves MSI, MESI, and MOESI unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import SimulationError
from repro.mem.directory import DirectoryEntry
from repro.mem.layout import LineGeometry

__all__ = ["L2Cache"]


class L2Cache:
    """Set-associative inclusive L2 with per-line directory entries.

    Sets are insertion-ordered dicts keyed by line address (O(1)
    lookup, reference-identical LRU tie-breaking by fill order) and
    materialize lazily: a 16MB L2 has 32k sets, of which a simulation
    touches a tiny fraction.
    """

    __slots__ = (
        "n_sets",
        "assoc",
        "n_banks",
        "geometry",
        "_sets",
        "_set_shift",
        "_set_mask",
        "_bank_mask",
    )

    def __init__(
        self,
        n_sets: int,
        assoc: int,
        n_banks: int,
        geometry: LineGeometry,
    ) -> None:
        if n_sets < 1 or assoc < 1 or n_banks < 1:
            raise SimulationError("L2 must have >= 1 set, way, and bank")
        self.n_sets = n_sets
        self.assoc = assoc
        self.n_banks = n_banks
        self.geometry = geometry
        # Validates the power-of-two requirements once, up front.
        geometry.set_index(0, n_sets)
        geometry.bank_index(0, n_banks)
        self._set_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = n_sets - 1
        self._bank_mask = n_banks - 1
        self._sets: Dict[int, Dict[int, DirectoryEntry]] = {}

    def _set_for(self, line_addr: int) -> Dict[int, DirectoryEntry]:
        index = (line_addr >> self._set_shift) & self._set_mask
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = {}
        return cache_set

    def bank_of(self, line_addr: int) -> int:
        """Which bank serves ``line_addr`` (lines interleave across banks)."""
        return (line_addr >> self._set_shift) & self._bank_mask

    def lookup(self, line_addr: int) -> Optional[DirectoryEntry]:
        """The directory entry for a resident line, or None (L2 miss)."""
        return self._set_for(line_addr).get(line_addr)

    def fetch(
        self, line_addr: int, now: int
    ) -> Tuple[DirectoryEntry, bool, Optional[DirectoryEntry]]:
        """Return ``(entry, l2_hit, victim)`` for ``line_addr``.

        On a miss the line is fetched (caller charges main-memory
        latency) and installed; if the set is full, the LRU entry is
        evicted and returned as ``victim`` so the coherence controller
        can back-invalidate its L1 copies (inclusivity).
        """
        cache_set = self._set_for(line_addr)
        entry = cache_set.get(line_addr)
        if entry is not None:
            entry.last_use = now
            return entry, True, None
        victim: Optional[DirectoryEntry] = None
        if len(cache_set) >= self.assoc:
            victim = min(cache_set.values(), key=lambda e: e.last_use)
            del cache_set[victim.line_addr]
        entry = DirectoryEntry(line_addr, now)
        cache_set[line_addr] = entry
        return entry, False, victim

    def evict_for_test(self, line_addr: int) -> Optional[DirectoryEntry]:
        """Force-evict a line (testing hook for inclusion behaviour)."""
        return self._set_for(line_addr).pop(line_addr, None)

    def entries(self) -> Iterator[DirectoryEntry]:
        """All resident directory entries (for invariant checks)."""
        for cache_set in self._sets.values():
            yield from cache_set.values()

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets.values())
