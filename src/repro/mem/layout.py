"""Address arithmetic for the simulated memory system.

The machine is word-oriented: every data element is a 32-bit word
(``WORD_BYTES`` = 4), matching the paper's definition of SIMD width as
the number of 32-bit elements.  Cache lines are ``line_bytes`` wide
(64 B in the paper's configuration, Table 1).

All addresses in the simulator are byte addresses; loads/stores must be
word-aligned.  :class:`LineGeometry` centralizes line/set/bank math so
the caches, directory, and GSU all agree on it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AlignmentError, ConfigError

__all__ = ["WORD_BYTES", "LineGeometry", "Region", "RegionMap"]

WORD_BYTES = 4


@dataclass(frozen=True)
class Region:
    """A named allocation in the simulated memory image.

    Purely observational: regions exist so diagnostics (the contention
    observatory, traces) can say "the y output array" instead of a raw
    hex line address.  The simulator itself never consults them.
    """

    name: str
    base: int
    nbytes: int

    @property
    def end(self) -> int:
        """First byte address past the region."""
        return self.base + self.nbytes

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class RegionMap:
    """Address -> region-name symbolization over named allocations.

    Kept sorted by base address; lookups binary-search.  Unnamed gaps
    symbolize to the hex address, so callers can always render
    something.
    """

    def __init__(self) -> None:
        self._regions: List[Region] = []
        self._bases: List[int] = []

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions)

    def add(self, name: str, base: int, nbytes: int) -> Region:
        """Record a named allocation (regions never overlap: the bump
        allocator hands out disjoint ranges)."""
        region = Region(name, base, nbytes)
        index = bisect.bisect_left(self._bases, base)
        self._regions.insert(index, region)
        self._bases.insert(index, base)
        return region

    def find(self, addr: int) -> Optional[Region]:
        """The region containing ``addr``, or None."""
        index = bisect.bisect_right(self._bases, addr) - 1
        if index < 0:
            return None
        region = self._regions[index]
        return region if region.contains(addr) else None

    def symbolize(self, addr: int) -> str:
        """``name+0xoffset`` for named addresses, hex otherwise."""
        region = self.find(addr)
        if region is None:
            return f"{addr:#x}"
        offset = addr - region.base
        return region.name if offset == 0 else f"{region.name}+{offset:#x}"

    def to_dict(self) -> Dict[str, Tuple[int, int]]:
        """``{name: (base, nbytes)}`` (JSON-able; duplicate names keep
        the first occurrence)."""
        out: Dict[str, Tuple[int, int]] = {}
        for region in self._regions:
            out.setdefault(region.name, (region.base, region.nbytes))
        return out


def _is_pow2(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


@dataclass(frozen=True)
class LineGeometry:
    """Line-size-derived address arithmetic shared across the hierarchy."""

    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise ConfigError(
                f"line_bytes must be a power of two, got {self.line_bytes}"
            )
        if self.line_bytes < WORD_BYTES:
            raise ConfigError(
                f"line_bytes must be >= {WORD_BYTES}, got {self.line_bytes}"
            )

    @property
    def words_per_line(self) -> int:
        """Number of 32-bit words in one cache line."""
        return self.line_bytes // WORD_BYTES

    def check_word_aligned(self, addr: int) -> None:
        """Raise AlignmentError unless ``addr`` is word-aligned."""
        if addr < 0:
            raise AlignmentError(f"negative address {addr:#x}")
        if addr % WORD_BYTES:
            raise AlignmentError(f"address {addr:#x} is not word-aligned")

    def word_index(self, addr: int) -> int:
        """Word number of a byte address."""
        self.check_word_aligned(addr)
        return addr // WORD_BYTES

    def line_addr(self, addr: int) -> int:
        """Base byte address of the line containing ``addr``."""
        if addr < 0:
            raise AlignmentError(f"negative address {addr:#x}")
        return addr - addr % self.line_bytes

    def line_offset(self, addr: int) -> int:
        """Byte offset of ``addr`` within its line."""
        if addr < 0:
            raise AlignmentError(f"negative address {addr:#x}")
        return addr % self.line_bytes

    def same_line(self, a: int, b: int) -> bool:
        """Whether two byte addresses fall in the same cache line."""
        return self.line_addr(a) == self.line_addr(b)

    def lines_spanned(self, addr: int, nbytes: int) -> int:
        """Number of distinct lines touched by ``nbytes`` starting at ``addr``."""
        if nbytes <= 0:
            raise AlignmentError(f"nbytes must be positive, got {nbytes}")
        first = self.line_addr(addr)
        last = self.line_addr(addr + nbytes - 1)
        return (last - first) // self.line_bytes + 1

    def set_index(self, addr: int, n_sets: int) -> int:
        """Cache set index for a set-associative cache with ``n_sets`` sets."""
        if not _is_pow2(n_sets):
            raise ConfigError(f"n_sets must be a power of two, got {n_sets}")
        return (self.line_addr(addr) // self.line_bytes) % n_sets

    def bank_index(self, addr: int, n_banks: int) -> int:
        """L2 bank index: lines are interleaved across banks."""
        if not _is_pow2(n_banks):
            raise ConfigError(f"n_banks must be a power of two, got {n_banks}")
        return (self.line_addr(addr) // self.line_bytes) % n_banks
