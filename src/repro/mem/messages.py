"""Transaction-level message vocabulary of the coherence seam.

The directory protocol is spoken in *messages*, the way
``to_the_moon``'s AXI-style MSI directory phrases it: the L1 side
issues a request (:class:`GetS`, :class:`GetM`, :class:`Upgrade`), the
directory answers with an :class:`Ack`, and along the way it may fan
out :class:`Inv` (invalidate an L1 copy) and :class:`Fwd`
(forward/downgrade the owner's copy) to third parties; :class:`PutM`
and :class:`PutS` notify the directory of dirty/clean evictions.  A
:class:`~repro.mem.protocol.CoherenceProtocol` implementation is
exactly a policy for turning requests into responses plus side
messages; :class:`~repro.mem.coherence.CoherenceSystem` no longer
knows *how* a miss is serviced, only that it issues a request and an
``Ack`` comes back.

Messages are also bus events (``category = "protocol"``): when an
:class:`~repro.obs.bus.EventBus` has a sink subscribed to the
``protocol`` category, every seam message is emitted on the bus, so
Perfetto traces and :class:`~repro.obs.sinks.MetricsSink` show
upgrade/forward traffic per protocol.  They obey the bus's
zero-cost-when-disabled contract — emission sites construct a message
only behind a ``wants_protocol`` guard; the always-on per-kind tallies
live in :attr:`~repro.mem.protocol.CoherenceProtocol.counts` as plain
integers.  Request/response messages carry the two quantities the
timing model produces:

* ``occupancy`` — cycles the request waited for its L2 bank (the
  banked-directory queueing cost, request side), and
* ``latency`` — total thread-visible cycles of the transaction
  (:class:`Ack`, response side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "MSG_KINDS",
    "PROTOCOL_MESSAGES",
    "GetS",
    "GetM",
    "Upgrade",
    "SilentUpgrade",
    "PutM",
    "PutS",
    "Inv",
    "Fwd",
    "Ack",
]

#: Every message kind a protocol can speak, in documentation order.
#: ``silent_upgrade`` is not a message on the wire — it is MESI's
#: whole point (an E->M transition with *no* directory traffic) — but
#: it is tallied alongside the real messages so traffic comparisons
#: can show what the protocol saved.
MSG_KINDS: Tuple[str, ...] = (
    "GetS",
    "GetM",
    "Upgrade",
    "silent_upgrade",
    "PutM",
    "PutS",
    "Inv",
    "Fwd",
    "Ack",
)


@dataclass(frozen=True)
class GetS:
    """L1 -> directory: read miss; requester wants a readable copy."""

    category = "protocol"
    kind = "GetS"

    cycle: int
    core: int
    slot: int
    line_addr: int
    #: Cycles the request spent queued behind the line's L2 bank.
    occupancy: int = 0


@dataclass(frozen=True)
class GetM:
    """L1 -> directory: write miss; requester wants the sole M copy."""

    category = "protocol"
    kind = "GetM"

    cycle: int
    core: int
    slot: int
    line_addr: int
    occupancy: int = 0


@dataclass(frozen=True)
class Upgrade:
    """L1 -> directory: S -> M upgrade for an already-resident line."""

    category = "protocol"
    kind = "Upgrade"

    cycle: int
    core: int
    slot: int
    line_addr: int
    occupancy: int = 0


@dataclass(frozen=True)
class SilentUpgrade:
    """E -> M with no directory traffic (MESI/MOESI's saved Upgrade).

    Not a message on the wire; emitted so traffic comparisons can see
    the upgrades the E state elided.
    """

    category = "protocol"
    kind = "silent_upgrade"

    cycle: int
    core: int
    slot: int
    line_addr: int


@dataclass(frozen=True)
class PutM:
    """L1 -> directory: a dirty line left the L1 (eviction writeback)."""

    category = "protocol"
    kind = "PutM"

    cycle: int
    core: int
    line_addr: int


@dataclass(frozen=True)
class PutS:
    """L1 -> directory: a clean line left the L1 (eviction notice).

    Real MESI implementations may drop clean lines silently; this
    model always notifies so the directory's sharer sets stay exact
    (the inclusive L2 needs them for back-invalidation).
    """

    category = "protocol"
    kind = "PutS"

    cycle: int
    core: int
    line_addr: int


@dataclass(frozen=True)
class Inv:
    """Directory -> L1: invalidate your copy (writer upgrading, or the
    inclusive L2 evicted the line)."""

    category = "protocol"
    kind = "Inv"

    cycle: int
    core: int      # the core that loses its copy
    line_addr: int
    cause: str     # "remote_write" | "l2_eviction"


@dataclass(frozen=True)
class Fwd:
    """Directory -> owner: forward your copy to a reader.

    Under MSI/MESI the owner downgrades to S and (if dirty) writes
    back; under MOESI the owner keeps the dirty data and moves to O.
    """

    category = "protocol"
    kind = "Fwd"

    cycle: int
    core: int        # the owning core being forwarded from
    line_addr: int
    writeback: bool  # whether dirty data returned to the L2


@dataclass(frozen=True)
class Ack:
    """Directory -> requester: transaction complete.

    ``latency`` is the total thread-visible cost; ``level`` names the
    deepest level reached (the :class:`~repro.mem.coherence.
    AccessResult` vocabulary); ``state`` is the L1 state the requester
    installed (``None`` when the install was refused, e.g. every
    eviction candidate held a live GLSC reservation).
    """

    category = "protocol"
    kind = "Ack"

    cycle: int
    core: int
    line_addr: int
    latency: int
    level: str
    state: Optional[int]


#: The message classes, in :data:`MSG_KINDS` order — joined into
#: :data:`repro.obs.events.EVENT_TYPES` so the bus, the sinks, and the
#: no-allocation guard all treat seam messages as first-class events.
PROTOCOL_MESSAGES: Tuple[type, ...] = (
    GetS,
    GetM,
    Upgrade,
    SilentUpgrade,
    PutM,
    PutS,
    Inv,
    Fwd,
    Ack,
)
