"""Per-thread multi-stream stride prefetcher.

The paper's L1s have "a hardware stride prefetcher"; we model the
standard stream-table design: each hardware thread owns a small table
of active streams.  A demand miss either *advances* the stream that
predicted it (issuing ``degree`` prefetches ahead), *retrains* a
nearby stream (new stride), or *allocates* a new stream, evicting the
least-recently-used entry.  Multiple interleaved array walks — the
common kernel pattern ``for i: use(a[i], b[i], c[i])`` — therefore
train independently, as PC-indexed hardware tables achieve.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["StridePrefetcher"]

ThreadKey = Tuple[int, int]  # (core_id, smt_slot)

#: Streams tracked per hardware thread.
TABLE_SIZE = 8

#: A miss within this many lines of a stream's head retrains it
#: instead of allocating a new stream.
MATCH_WINDOW = 4


class _Stream:
    __slots__ = ("last_line", "stride", "confident", "last_use")

    def __init__(self, line: int, now: int) -> None:
        self.last_line = line
        self.stride = 0
        self.confident = False
        self.last_use = now


class StridePrefetcher:
    """Stream-table stride detection over demand-miss line addresses."""

    def __init__(self, line_bytes: int, degree: int, enabled: bool = True) -> None:
        self.line_bytes = line_bytes
        self.degree = degree
        self.enabled = enabled
        self._tables: Dict[ThreadKey, List[_Stream]] = {}
        self._clock = 0

    def on_demand_miss(
        self, core_id: int, slot: int, line_addr: int
    ) -> List[int]:
        """Train on a demand miss; return line addresses to prefetch."""
        if not self.enabled:
            return []
        self._clock += 1
        table = self._tables.setdefault((core_id, slot), [])
        stream = self._match(table, line_addr)
        if stream is None:
            if len(table) >= TABLE_SIZE:
                table.remove(min(table, key=lambda s: s.last_use))
            table.append(_Stream(line_addr, self._clock))
            return []
        stream.last_use = self._clock
        stride = line_addr - stream.last_line
        targets: List[int] = []
        if stride != 0 and stride == stream.stride:
            stream.confident = True
            targets = [
                line_addr + stride * k
                for k in range(1, self.degree + 1)
                if line_addr + stride * k >= 0
            ]
        else:
            stream.confident = False
            stream.stride = stride
        stream.last_line = line_addr
        return targets

    def _match(self, table: List[_Stream], line_addr: int):
        """The stream this miss belongs to, preferring exact prediction."""
        window = MATCH_WINDOW * self.line_bytes
        best = None
        for stream in table:
            if stream.confident and line_addr == stream.last_line + stream.stride:
                return stream
            if abs(line_addr - stream.last_line) <= window:
                if best is None or stream.last_use > best.last_use:
                    best = stream
        return best

    def reset(self) -> None:
        """Forget all training state."""
        self._tables.clear()
        self._clock = 0
