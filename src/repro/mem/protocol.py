"""Pluggable coherence protocol policies: MSI, MESI, MOESI.

:class:`~repro.mem.coherence.CoherenceSystem` owns the *mechanism* of
the memory hierarchy — the L1s, the banked L2 + directory, DRAM, the
reservation structures, and the bookkeeping every protocol shares
(install/evict/invalidate, reservation kills, back-invalidation).
The *policy* — what a read miss, a write miss, an upgrade, or a
prefetch fill do to coherence state, and what traffic they cost —
lives here, behind the message vocabulary of
:mod:`repro.mem.messages`.

Three policies register out of the box:

``msi``
    The reference protocol the paper's numbers were captured under.
    Its transaction code is a line-for-line port of the original
    ``CoherenceSystem`` internals, so the default configuration stays
    *bitwise identical* to the goldens (cycle counts and stats
    digests), which ``tests/bench/test_equivalence.py`` gates.

``mesi``
    Adds the E state: a read miss that finds no other L1 holder
    installs clean-exclusive, and the later write upgrades E -> M
    *silently* — no Upgrade message, no directory round-trip, an L1-hit
    latency instead of an L2 one.  The saved messages are tallied as
    ``silent_upgrade``.

``moesi``
    Adds the O state on top of MESI: when a remote reader hits a
    modified line, the owner forwards the data and keeps it dirty
    (M -> O) instead of writing back to the L2; the requester is added
    as a sharer *alongside* the owner, and the writeback is deferred to
    the O line's eviction or invalidation.

Adding a protocol is: subclass :class:`CoherenceProtocol` (usually one
of the concrete policies), override the fill/forward/upgrade hooks,
declare ``name``/``dirty_states``/``TRANSITIONS``, and decorate with
:func:`register_protocol`.  Select it via ``MachineConfig.protocol``
(CLI ``--protocol``).

Every policy keeps an always-on per-kind message tally in
:attr:`CoherenceProtocol.counts` (plain ints — cheap enough for
unobserved runs) and, when a sink subscribes to the ``protocol`` event
category, emits the actual message dataclasses on the bus.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple, Type

from repro.errors import ConfigError, SimulationError
from repro.mem.cache import MESI_E, MOESI_O, MSI_M, MSI_S
from repro.mem.messages import (
    Ack,
    Fwd,
    GetM,
    GetS,
    MSG_KINDS,
    SilentUpgrade,
    Upgrade,
)
from repro.obs.events import CacheHit, CacheMiss, Writeback

__all__ = [
    "AccessResult",
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_REMOTE",
    "LEVEL_MEM",
    "DEFAULT_PROTOCOL",
    "CoherenceProtocol",
    "MsiProtocol",
    "MesiProtocol",
    "MoesiProtocol",
    "register_protocol",
    "protocol_names",
    "make_protocol",
]

#: Deepest level a transaction reached (for tests and debugging).
LEVEL_L1 = "L1"
LEVEL_L2 = "L2"
LEVEL_REMOTE = "REMOTE"
LEVEL_MEM = "MEM"


class AccessResult(NamedTuple):
    """Outcome of one coherence transaction."""

    latency: int
    level: str


DEFAULT_PROTOCOL = "msi"

#: name -> policy class, in registration order (msi, mesi, moesi).
_REGISTRY: Dict[str, Type["CoherenceProtocol"]] = {}


def register_protocol(cls: Type["CoherenceProtocol"]):
    """Class decorator: make ``cls`` selectable by its ``name``."""
    name = cls.name
    if not name or name == "?":
        raise ConfigError(f"protocol class {cls.__name__} has no name")
    if name in _REGISTRY:
        raise ConfigError(f"duplicate coherence protocol {name!r}")
    _REGISTRY[name] = cls
    return cls


def protocol_names() -> Tuple[str, ...]:
    """The registered protocol names, in registration order."""
    return tuple(_REGISTRY)


def make_protocol(name: str, host) -> "CoherenceProtocol":
    """Instantiate the policy ``name`` bound to ``host``."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown coherence protocol {name!r}; "
            f"expected one of {protocol_names()}"
        )
    return cls(host)


class CoherenceProtocol:
    """Policy half of the coherence seam.

    Concrete policies implement the three transaction entry points the
    :class:`~repro.mem.coherence.CoherenceSystem` delegates to —
    :meth:`read_miss` (GetS), :meth:`obtain_modified` (GetM /
    Upgrade / silent upgrade), :meth:`prefetch_fill` — plus the
    invariant vocabulary (:attr:`dirty_states`,
    :meth:`expected_l1_states`, :meth:`check_entry`) and a declarative
    :attr:`TRANSITIONS` table of legal L1 state edges.

    The shared GetS/GetM plumbing lives in this base class; policies
    differentiate through the fill/forward/upgrade hooks.
    """

    #: Registry key; subclasses must override.
    name = "?"
    #: L1 states whose departure writes data back (M, plus O in MOESI).
    dirty_states = frozenset((MSI_M,))
    #: Legal (from, to) L1 state edges by name; "I" means not resident.
    TRANSITIONS: frozenset = frozenset()

    def __init__(self, host) -> None:
        self.host = host
        #: Always-on per-kind message tally (see MSG_KINDS).
        self.counts: Dict[str, int] = {kind: 0 for kind in MSG_KINDS}

    # -- declarative state machine ---------------------------------------

    @classmethod
    def legal_transition(cls, source: str, dest: str) -> bool:
        """Whether the L1 edge ``source`` -> ``dest`` can occur."""
        return (source, dest) in cls.TRANSITIONS

    @classmethod
    def states(cls) -> Tuple[str, ...]:
        """Every state the protocol's transition table mentions."""
        seen = {"I"}
        for source, dest in cls.TRANSITIONS:
            seen.add(source)
            seen.add(dest)
        return tuple(sorted(seen))

    # -- policy hooks ------------------------------------------------------

    def _fill_state_for_read(self, entry, core: int) -> int:
        """L1 state a read fill installs (after any owner forward)."""
        raise NotImplementedError

    def _grant_read(self, entry, core: int, state: int) -> None:
        """Record the read fill in the directory."""
        raise NotImplementedError

    def _forward_for_read(self, entry, core: int, line_addr: int,
                          now: int) -> None:
        """A remote owner holds the line a reader wants: forward it.

        Performs the owner-side state change, any writeback
        accounting, and the directory update; the caller charges the
        ``remote_l1_latency`` hop (demand misses) or ignores it
        (prefetch fills).
        """
        raise NotImplementedError

    def _write_hit(self, core: int, slot: int, line_addr: int, line,
                   now: int) -> AccessResult:
        """Obtain M for a line already resident in the writer's L1."""
        raise NotImplementedError

    # -- transactions ------------------------------------------------------

    def read_miss(
        self, core: int, slot: int, line_addr: int, now: int, victim_ok
    ) -> Optional[AccessResult]:
        """Service a GetS; returns None if the install was refused."""
        host = self.host
        cfg = host.config
        obs = host.obs
        wants_cache = obs is not None and obs.wants_cache
        wants_protocol = obs is not None and obs.wants_protocol
        host.stats.l1_misses += 1
        self.counts["GetS"] += 1
        if wants_cache:
            obs.emit(CacheMiss(now, core, slot, line_addr, "L1", "read"))
        latency = cfg.l1_hit_latency + cfg.l2_latency
        wait = host._book_l2_bank(line_addr, now)
        latency += wait
        level = LEVEL_L2
        if wants_protocol:
            obs.emit(GetS(now, core, slot, line_addr, wait))
        entry, l2_hit, l2_victim = host.l2.fetch(line_addr, now)
        host.stats.l2_accesses += 1
        if l2_victim is not None:
            host._back_invalidate(l2_victim, now,
                                  attacker_core=core, attacker_slot=slot)
        if not l2_hit:
            host.stats.l2_misses += 1
            latency += host.dram.access()
            host.stats.mem_accesses += 1
            level = LEVEL_MEM
        if wants_cache:
            obs.emit(
                CacheMiss(now, core, slot, line_addr, "L2", "read")
                if not l2_hit
                else CacheHit(now, core, slot, line_addr, "L2", "read")
            )
        if entry.owner is not None and entry.owner != core:
            self._forward_for_read(entry, core, line_addr, now)
            latency += cfg.remote_l1_latency
            if level != LEVEL_MEM:
                level = LEVEL_REMOTE
        state = self._fill_state_for_read(entry, core)
        installed = host._install_l1(core, line_addr, state, now, victim_ok,
                                     attacker_slot=slot)
        self.counts["Ack"] += 1
        if not installed:
            if wants_protocol:
                obs.emit(Ack(now, core, line_addr, latency, level, None))
            return None
        self._grant_read(entry, core, state)
        if wants_protocol:
            obs.emit(Ack(now, core, line_addr, latency, level, state))
        return AccessResult(latency, level)

    def obtain_modified(
        self, core: int, slot: int, line_addr: int, now: int
    ) -> AccessResult:
        """Bring ``line_addr`` to M state in ``core``'s L1.

        The already-M outcome (repeated stores to the same line) is by
        far the hottest and means the same thing in every registered
        protocol — exclusive dirty, nothing to do — so it is resolved
        here without the ``_write_hit`` hook call.  A protocol whose M
        state is not "already exclusive dirty" must override this.
        """
        host = self.host
        line = host._l1_lookups[core](line_addr)
        if line is not None:
            if line.state == MSI_M:
                line.last_use = now
                host.stats.l1_hits += 1
                obs = host.obs
                if obs is not None and obs.wants_cache:
                    obs.emit(CacheHit(now, core, slot, line_addr, "L1",
                                      "write"))
                return host._hit_l1
            return self._write_hit(core, slot, line_addr, line, now)
        return self._write_miss(core, slot, line_addr, now)

    def _upgrade(
        self, core: int, slot: int, line_addr: int, line, now: int
    ) -> AccessResult:
        """Directory upgrade (S -> M, or O -> M) for a resident line.

        Not counted as an L1 hit or miss by the stats, so no L1
        hit/miss event is emitted either.
        """
        host = self.host
        cfg = host.config
        obs = host.obs
        self.counts["Upgrade"] += 1
        latency = cfg.l1_hit_latency + cfg.l2_latency
        wait = host._book_l2_bank(line_addr, now)
        latency += wait
        level = LEVEL_L2
        host.stats.l2_accesses += 1
        if obs is not None and obs.wants_protocol:
            obs.emit(Upgrade(now, core, slot, line_addr, wait))
        entry = host.l2.lookup(line_addr)
        if entry is None:
            raise SimulationError(
                f"L1 of core {core} holds {line_addr:#x} but the "
                f"inclusive L2 does not"
            )
        others = entry.sharers - {core}
        if others:
            latency += cfg.remote_l1_latency
            level = LEVEL_REMOTE
            for other in sorted(others):
                host._invalidate_l1(other, line_addr, now,
                                    attacker_core=core, attacker_slot=slot)
        entry.set_owner(core)
        entry.last_use = now
        line.state = MSI_M
        line.last_use = now
        self.counts["Ack"] += 1
        if obs is not None and obs.wants_protocol:
            obs.emit(Ack(now, core, line_addr, latency, level, MSI_M))
        return AccessResult(latency, level)

    def _write_miss(
        self, core: int, slot: int, line_addr: int, now: int
    ) -> AccessResult:
        """Service a GetM (write miss: read-for-ownership)."""
        host = self.host
        cfg = host.config
        obs = host.obs
        wants_cache = obs is not None and obs.wants_cache
        wants_protocol = obs is not None and obs.wants_protocol
        host.stats.l1_misses += 1
        self.counts["GetM"] += 1
        if wants_cache:
            obs.emit(CacheMiss(now, core, slot, line_addr, "L1", "write"))
        host._train_prefetcher(core, slot, line_addr, now)
        latency = cfg.l1_hit_latency + cfg.l2_latency
        wait = host._book_l2_bank(line_addr, now)
        latency += wait
        level = LEVEL_L2
        if wants_protocol:
            obs.emit(GetM(now, core, slot, line_addr, wait))
        entry, l2_hit, l2_victim = host.l2.fetch(line_addr, now)
        host.stats.l2_accesses += 1
        if l2_victim is not None:
            host._back_invalidate(l2_victim, now,
                                  attacker_core=core, attacker_slot=slot)
        if not l2_hit:
            host.stats.l2_misses += 1
            latency += host.dram.access()
            host.stats.mem_accesses += 1
            level = LEVEL_MEM
        if wants_cache:
            obs.emit(
                CacheMiss(now, core, slot, line_addr, "L2", "write")
                if not l2_hit
                else CacheHit(now, core, slot, line_addr, "L2", "write")
            )
        holders = set(entry.sharers)
        if holders - {core}:
            latency += cfg.remote_l1_latency
            if level != LEVEL_MEM:
                level = LEVEL_REMOTE
            for other in sorted(holders - {core}):
                host._invalidate_l1(other, line_addr, now,
                                    attacker_core=core, attacker_slot=slot)
        if not host._install_l1(core, line_addr, MSI_M, now, victim_ok=None,
                                attacker_slot=slot):
            raise SimulationError("unfiltered L1 install refused")
        entry.set_owner(core)
        self.counts["Ack"] += 1
        if wants_protocol:
            obs.emit(Ack(now, core, line_addr, latency, level, MSI_M))
        return AccessResult(latency, level)

    def prefetch_fill(self, core: int, line_addr: int, now: int) -> None:
        """Install a prefetched line with no thread-visible latency."""
        host = self.host
        obs = host.obs
        entry, l2_hit, l2_victim = host.l2.fetch(line_addr, now)
        host.stats.l2_accesses += 1
        if l2_victim is not None:
            host._back_invalidate(l2_victim, now, attacker_core=core)
        if not l2_hit:
            host.stats.l2_misses += 1
            host.dram.access()
            host.stats.mem_accesses += 1
        if entry.owner is not None and entry.owner != core:
            self._forward_for_read(entry, core, line_addr, now)
        self.counts["GetS"] += 1
        if obs is not None and obs.wants_protocol:
            obs.emit(GetS(now, core, -1, line_addr, 0))
        state = self._fill_state_for_read(entry, core)
        if host._install_l1(
            core,
            line_addr,
            state,
            now,
            victim_ok=host._victim_filter(core),
            prefetched=True,
        ):
            self._grant_read(entry, core, state)

    # -- invariants --------------------------------------------------------

    def expected_l1_states(self, entry, core: int) -> Tuple[int, ...]:
        """L1 states the directory entry permits ``core`` to hold."""
        raise NotImplementedError

    def check_entry(self, entry) -> None:
        """Directory-entry consistency (protocol-specific shape)."""
        entry.check()


@register_protocol
class MsiProtocol(CoherenceProtocol):
    """The paper's baseline directory MSI protocol.

    A line-for-line port of the pre-seam ``CoherenceSystem``
    internals: every stat increment, directory mutation, and latency
    term happens in the original order, so default-``msi`` runs stay
    bitwise identical to the goldens.
    """

    name = "msi"
    dirty_states = frozenset((MSI_M,))
    TRANSITIONS = frozenset((
        ("I", "S"),   # GetS fill
        ("I", "M"),   # GetM fill
        ("S", "M"),   # Upgrade
        ("M", "S"),   # Fwd: remote read downgrades the owner
        ("S", "I"),   # Inv / eviction
        ("M", "I"),   # Inv / eviction (with writeback)
    ))

    def _fill_state_for_read(self, entry, core: int) -> int:
        return MSI_S

    def _grant_read(self, entry, core: int, state: int) -> None:
        entry.add_sharer(core)

    def _forward_for_read(self, entry, core: int, line_addr: int,
                          now: int) -> None:
        # Dirty in a remote L1: forward + downgrade (M -> S) and write
        # the data back to the L2.  Reservations survive a remote
        # *read*; only writes kill them.
        host = self.host
        obs = host.obs
        owner = entry.owner
        if host.l1s[owner].downgrade(line_addr) is None:
            raise SimulationError(
                f"directory says core {owner} owns {line_addr:#x} "
                f"but its L1 does not hold it"
            )
        host.stats.writebacks += 1
        if obs is not None and obs.wants_coherence:
            obs.emit(Writeback(now, owner, line_addr, "downgrade"))
        entry.clear_owner()
        self.counts["Fwd"] += 1
        if obs is not None and obs.wants_protocol:
            obs.emit(Fwd(now, owner, line_addr, True))

    def _write_hit(self, core: int, slot: int, line_addr: int, line,
                   now: int) -> AccessResult:
        host = self.host
        if line.state == MSI_M:
            line.last_use = now
            host.stats.l1_hits += 1
            obs = host.obs
            if obs is not None and obs.wants_cache:
                obs.emit(CacheHit(now, core, slot, line_addr, "L1",
                                  "write"))
            return host._hit_l1
        return self._upgrade(core, slot, line_addr, line, now)

    def expected_l1_states(self, entry, core: int) -> Tuple[int, ...]:
        return (MSI_M,) if entry.owner == core else (MSI_S,)


@register_protocol
class MesiProtocol(MsiProtocol):
    """MESI: clean-exclusive fills, silent E -> M upgrades.

    The E state is represented in the directory as an owner (sole
    copy); whether the owner's data is clean or dirty is read off the
    owner's actual L1 line state when a forward is needed.
    """

    name = "mesi"
    TRANSITIONS = MsiProtocol.TRANSITIONS | frozenset((
        ("I", "E"),   # GetS fill with no other holder
        ("E", "M"),   # silent upgrade — no directory traffic
        ("E", "S"),   # Fwd: remote read, clean downgrade (no writeback)
        ("E", "I"),   # Inv / eviction (clean, no writeback)
    ))

    def _fill_state_for_read(self, entry, core: int) -> int:
        if entry.owner is None and not entry.sharers:
            return MESI_E
        return MSI_S

    def _grant_read(self, entry, core: int, state: int) -> None:
        if state == MESI_E:
            entry.set_owner(core)
        else:
            entry.add_sharer(core)

    def _forward_for_read(self, entry, core: int, line_addr: int,
                          now: int) -> None:
        host = self.host
        obs = host.obs
        owner = entry.owner
        line = host.l1s[owner].lookup(line_addr)
        if line is None:
            raise SimulationError(
                f"directory says core {owner} owns {line_addr:#x} "
                f"but its L1 does not hold it"
            )
        writeback = line.state == MSI_M
        if writeback:
            host.stats.writebacks += 1
            if obs is not None and obs.wants_coherence:
                obs.emit(Writeback(now, owner, line_addr, "downgrade"))
        line.state = MSI_S
        entry.clear_owner()
        self.counts["Fwd"] += 1
        if obs is not None and obs.wants_protocol:
            obs.emit(Fwd(now, owner, line_addr, writeback))

    def _write_hit(self, core: int, slot: int, line_addr: int, line,
                   now: int) -> AccessResult:
        if line.state == MESI_E:
            # The whole point of MESI: sole clean copy goes M with no
            # directory round-trip; the directory already records this
            # core as owner, so nothing moves.  Costs an L1 hit.
            host = self.host
            obs = host.obs
            line.state = MSI_M
            line.last_use = now
            host.stats.l1_hits += 1
            self.counts["silent_upgrade"] += 1
            if obs is not None:
                if obs.wants_cache:
                    obs.emit(CacheHit(now, core, slot, line_addr, "L1",
                                      "write"))
                if obs.wants_protocol:
                    obs.emit(SilentUpgrade(now, core, slot, line_addr))
            return host._hit_l1
        return super()._write_hit(core, slot, line_addr, line, now)

    def expected_l1_states(self, entry, core: int) -> Tuple[int, ...]:
        if entry.owner == core:
            return (MSI_M, MESI_E)
        return (MSI_S,)


@register_protocol
class MoesiProtocol(MesiProtocol):
    """MOESI: owner-forwarding — a remote read leaves the owner dirty.

    M -> O on a forward; the requester joins the sharer set while the
    owner stays recorded, and the L2 writeback is deferred until the O
    line itself is evicted or invalidated (``dirty_states`` includes
    O, so the shared retire/invalidate paths account it).
    """

    name = "moesi"
    dirty_states = frozenset((MSI_M, MOESI_O))
    TRANSITIONS = (
        MesiProtocol.TRANSITIONS - frozenset((("M", "S"),))
    ) | frozenset((
        ("M", "O"),   # Fwd: owner keeps the dirty data
        ("O", "M"),   # Upgrade: owner reclaims exclusivity
        ("O", "I"),   # Inv / eviction (deferred writeback happens now)
    ))

    def _forward_for_read(self, entry, core: int, line_addr: int,
                          now: int) -> None:
        host = self.host
        obs = host.obs
        owner = entry.owner
        line = host.l1s[owner].lookup(line_addr)
        if line is None:
            raise SimulationError(
                f"directory says core {owner} owns {line_addr:#x} "
                f"but its L1 does not hold it"
            )
        if line.state == MESI_E:
            # Clean exclusive: plain downgrade, ownership dissolves.
            line.state = MSI_S
            entry.clear_owner()
        else:
            # M or O: the owner keeps the dirty data and stays owner;
            # no L2 writeback now (that is MOESI's point).
            line.state = MOESI_O
        self.counts["Fwd"] += 1
        if obs is not None and obs.wants_protocol:
            obs.emit(Fwd(now, owner, line_addr, False))

    def _grant_read(self, entry, core: int, state: int) -> None:
        if state == MESI_E:
            entry.set_owner(core)
        else:
            entry.add_sharer(core, shared_owner_ok=True)

    def expected_l1_states(self, entry, core: int) -> Tuple[int, ...]:
        if entry.owner == core:
            return (MSI_M, MESI_E, MOESI_O)
        return (MSI_S,)

    def check_entry(self, entry) -> None:
        entry.check(shared_owner_ok=True)


def describe_transitions(cls: Type[CoherenceProtocol]) -> str:
    """Human-readable transition table (for docs and debugging)."""
    lines = [f"{cls.name}: states {', '.join(cls.states())}"]
    for source, dest in sorted(cls.TRANSITIONS):
        lines.append(f"  {source} -> {dest}")
    return "\n".join(lines)
