"""Scalar load-linked / store-conditional reservation file.

The Base architecture's atomic primitive (Section 2.3): ``ll`` sets a
reservation on the accessed cache line for the issuing hardware
thread; ``sc`` succeeds only if the reservation is still held.  A
reservation dies when the line is written by anyone, invalidated, or
evicted from the reserver's L1 — the classic conservative semantics
the paper builds on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mem.layout import LineGeometry

__all__ = ["ReservationFile"]

ThreadKey = Tuple[int, int]  # (core_id, smt_slot)


class ReservationFile:
    """Per-hardware-thread line reservations for scalar ll/sc."""

    def __init__(self, geometry: LineGeometry) -> None:
        self.geometry = geometry
        self._held: Dict[ThreadKey, int] = {}

    def set(self, core_id: int, slot: int, addr: int) -> None:
        """``ll``: reserve the line containing ``addr`` for this thread."""
        self._held[(core_id, slot)] = self.geometry.line_addr(addr)

    def holds(self, core_id: int, slot: int, addr: int) -> bool:
        """Whether the thread still holds a reservation covering ``addr``."""
        line_addr = self.geometry.line_addr(addr)
        return self._held.get((core_id, slot)) == line_addr

    def clear_thread(self, core_id: int, slot: int) -> None:
        """Drop this thread's reservation (``sc`` consumes it either way)."""
        self._held.pop((core_id, slot), None)

    def clear_line(self, line_addr: int) -> List[ThreadKey]:
        """A write hit ``line_addr``: kill every reservation on it.

        Returns the ``(core, slot)`` keys of the destroyed
        reservations (stat + event hook).
        """
        if not self._held:
            return []
        victims = [
            key for key, held in self._held.items() if held == line_addr
        ]
        for key in victims:
            del self._held[key]
        return victims

    def clear_core_line(
        self, core_id: int, line_addr: int
    ) -> List[ThreadKey]:
        """Line left ``core_id``'s L1 (eviction/invalidation).

        Only that core's threads lose their reservations; their keys
        are returned.
        """
        if not self._held:
            return []
        victims = [
            key
            for key, held in self._held.items()
            if key[0] == core_id and held == line_addr
        ]
        for key in victims:
            del self._held[key]
        return victims

    def holder_count(self) -> int:
        """Number of live reservations (test/debug hook)."""
        return len(self._held)

    def held_line(self, core_id: int, slot: int) -> Optional[int]:
        """The line this thread has reserved, or None."""
        return self._held.get((core_id, slot))

    def live_keys(self) -> "list[ThreadKey]":
        """Threads currently holding reservations (failure injection)."""
        return list(self._held)
