"""Observability layer: typed event bus, sinks, and run telemetry.

The simulator's end-of-run counters (:class:`~repro.sim.stats.
MachineStats`) say *how much* happened; this package says *when* and
*why*.  The paper's whole argument rests on micro-event attribution —
which reservation died to which invalidation, which lanes aliased,
which L1 accesses the GSU combined away (Sections 3-5, Table 4) — so
the model exposes the same attribution as a stream of typed events.

Three pieces:

* :mod:`repro.obs.events` — the event taxonomy (frozen dataclasses,
  one category per subsystem: ``instr``, ``cache``, ``coherence``,
  ``reservation``, ``glsc``);
* :mod:`repro.obs.bus` — :class:`EventBus`, the dispatch fabric.
  Emission sites are guarded by per-category boolean flags, so with no
  bus (or no sink subscribed to a category) a run allocates **no event
  objects at all** — the disabled path is a single attribute test;
* sinks — :class:`MetricsSink` (in-memory aggregation: reservation
  lifetime histograms, per-cause failure timelines, per-thread
  occupancy), :class:`JsonlSink` (bounded newline-delimited JSON), and
  :class:`PerfettoSink` (Chrome trace-event JSON: open the output in
  https://ui.perfetto.dev with threads x cores laid out as tracks).

Quickstart::

    from repro.obs import EventBus, MetricsSink, PerfettoSink
    from repro.sim.executor import RunSpec, execute_spec

    bus = EventBus()
    metrics = bus.attach(MetricsSink())
    perfetto = bus.attach(PerfettoSink())
    stats = execute_spec(RunSpec("tms", "A"), obs=bus)
    bus.close()
    perfetto.write("tms-glsc.trace.json")   # -> ui.perfetto.dev
    print(metrics.render())

Run-level telemetry (wall time, sim throughput, cache provenance)
lives in :mod:`repro.obs.telemetry` and is collected by the
:class:`~repro.sim.executor.Executor` for every spec it serves.
"""

from repro.obs.bus import EventBus, Sink
from repro.obs.contention import ContentionSink, ContentionSummary
from repro.obs.events import (
    CATEGORIES,
    CacheHit,
    CacheMiss,
    ElementOutcome,
    Eviction,
    EVENT_TYPES,
    Invalidation,
    LineCombine,
    ReservationLost,
    ReservationSet,
    TaskPhase,
    Writeback,
    event_to_dict,
)
from repro.obs.log import NULL_LOGGER, StructLogger, to_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.perfetto import PerfettoSink, SweepTraceExporter
from repro.obs.sinks import JsonlSink, MetricsSink
from repro.obs.sweeptrace import (
    SpanLog,
    collect_spans,
    new_trace_id,
    read_heartbeats,
    write_heartbeat,
)
from repro.obs.telemetry import RunTelemetry, run_provenance

__all__ = [
    "CATEGORIES",
    "CacheHit",
    "CacheMiss",
    "ContentionSink",
    "ContentionSummary",
    "Counter",
    "ElementOutcome",
    "EVENT_TYPES",
    "EventBus",
    "Eviction",
    "Gauge",
    "Histogram",
    "Invalidation",
    "JsonlSink",
    "LineCombine",
    "MetricsRegistry",
    "MetricsSink",
    "NULL_LOGGER",
    "PerfettoSink",
    "ReservationLost",
    "ReservationSet",
    "RunTelemetry",
    "Sink",
    "SpanLog",
    "StructLogger",
    "SweepTraceExporter",
    "TaskPhase",
    "Writeback",
    "collect_spans",
    "event_to_dict",
    "get_registry",
    "new_trace_id",
    "read_heartbeats",
    "run_provenance",
    "to_logger",
    "write_heartbeat",
]
