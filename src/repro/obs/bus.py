"""The event bus: near-zero overhead dispatch from model to sinks.

:class:`EventBus` is the generalization of the old single-purpose
``Machine(tracer=...)`` seam: any number of sinks, each subscribed to
any subset of event categories (see :mod:`repro.obs.events`).

The hot-path contract
---------------------

Simulator code *never* builds an event unconditionally.  Every
emission site is written::

    obs = self.obs
    if obs is not None and obs.wants_cache:
        obs.emit(CacheMiss(...))

``wants_<category>`` are plain boolean attributes recomputed on
:meth:`attach`, so the disabled path costs one attribute load and one
test — no event allocation, no dynamic lookup, no call.  The test
suite enforces this by poisoning every event constructor and running
an un-instrumented simulation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, TypeVar

from repro.errors import ConfigError
from repro.obs.events import CATEGORIES

__all__ = ["Sink", "EventBus"]

S = TypeVar("S", bound="Sink")


class Sink:
    """Observer protocol: receives every event of its categories.

    ``categories`` is the default subscription (``None`` = all); an
    explicit set passed to :meth:`EventBus.attach` overrides it.
    """

    #: Default categories this sink wants (None = every category).
    categories: Optional[Iterable[str]] = None

    def on_event(self, event: Any) -> None:
        """Called once per event, in emission order."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush/teardown; called once by :meth:`EventBus.close`."""


class EventBus:
    """Routes typed events to subscribed sinks by category."""

    def __init__(self) -> None:
        self._sinks: List[Sink] = []
        self._routes: Dict[str, List[Sink]] = {cat: [] for cat in CATEGORIES}
        self._closed = False
        self.wants_instr = False
        self.wants_cache = False
        self.wants_coherence = False
        self.wants_reservation = False
        self.wants_glsc = False
        self.wants_protocol = False
        self.wants_service = False

    # -- subscription ----------------------------------------------------

    def attach(
        self, sink: S, categories: Optional[Iterable[str]] = None
    ) -> S:
        """Subscribe ``sink``; returns it (for one-line construction)."""
        wanted = categories if categories is not None else sink.categories
        cats = tuple(wanted) if wanted is not None else CATEGORIES
        unknown = [c for c in cats if c not in self._routes]
        if unknown:
            raise ConfigError(
                f"unknown event categories {unknown}; "
                f"expected a subset of {CATEGORIES}"
            )
        self._sinks.append(sink)
        for cat in cats:
            self._routes[cat].append(sink)
        self._refresh_flags()
        return sink

    def _refresh_flags(self) -> None:
        self.wants_instr = bool(self._routes["instr"])
        self.wants_cache = bool(self._routes["cache"])
        self.wants_coherence = bool(self._routes["coherence"])
        self.wants_reservation = bool(self._routes["reservation"])
        self.wants_glsc = bool(self._routes["glsc"])
        self.wants_protocol = bool(self._routes["protocol"])
        self.wants_service = bool(self._routes["service"])

    def wants(self, category: str) -> bool:
        """Whether any sink subscribes to ``category``."""
        return bool(self._routes[category])

    @property
    def sinks(self) -> List[Sink]:
        """The attached sinks, in attach order."""
        return list(self._sinks)

    # -- dispatch ----------------------------------------------------------

    def emit(self, event: Any) -> None:
        """Deliver ``event`` to every sink of its category."""
        for sink in self._routes[event.category]:
            sink.on_event(event)

    def close(self) -> None:
        """Close every sink exactly once (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
