"""The contention observatory: who-kills-whom attribution.

The paper's evaluation (Table 4, Figure 6) turns on *where* and
*between whom* GLSC conflicts happen, but the aggregate counters in
:class:`~repro.sim.stats.MachineStats` only say how often.  This sink
consumes the ``reservation``/``glsc``/``coherence`` event categories
and attributes every conflict:

* **kill matrix** — thread x thread counts of destroyed reservations,
  split by cause, using the ``attacker_core``/``attacker_slot`` fields
  :class:`~repro.obs.events.ReservationLost` carries.  Self-inflicted
  retirements (``consumed``) are excluded; chaos injection and other
  unattributable losses land in the ``env`` row.
* **hot-line table** — top-K line addresses ranked by kills +
  invalidations + failed GLSC element lanes, symbolized through the
  memory image's named regions (:class:`~repro.mem.layout.RegionMap`).
* **contention timeline** — kills and failed lanes per fixed cycle
  window, with *retry-storm* flagging: any window whose failed-lane
  count reaches ``storm_threshold`` is a storm (the signature of the
  livelock-adjacent behaviour Section 4 describes).
* **retry-depth histogram** — for each (thread, line) the length of
  its consecutive-failure streak before a successful scatter-cond,
  binned log-2.

Everything here is *observer-side*: the simulator emits the same
events whether or not this sink is attached, and an unobserved run
still allocates nothing (the ``wants_*`` guards are unchanged).
Aggregation is deterministic — dicts are only ever rendered sorted —
so two observed replays of one spec produce identical reports.

Thread identity follows the machine's cyclic distribution: software
thread ``tid`` runs on core ``tid % n_cores`` in SMT slot
``tid // n_cores``, so a hardware thread ``(core, slot)`` is global
thread ``slot * n_cores + core``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.bus import Sink
from repro.sim.stats import FAILURE_CAUSES, MachineStats

__all__ = ["ContentionSink", "ContentionSummary", "ENV_THREAD"]

#: Attacker id used when the killer is not a thread (chaos injection,
#: prefetch-driven evictions, unknown).
ENV_THREAD = -1

#: Default timeline window, in simulated cycles.
DEFAULT_WINDOW = 2048

#: Default failed-lane count that marks a window as a retry storm.
DEFAULT_STORM_THRESHOLD = 64

#: Default hot-line table size.
DEFAULT_TOP_K = 10


def _depth_bucket(depth: int) -> int:
    """Log-2 lower bound for a retry-depth histogram bin (1,2,4,8,...)."""
    bucket = 1
    while bucket * 2 <= depth:
        bucket *= 2
    return bucket


class ContentionSink(Sink):
    """Accumulates contention attribution from one observed run."""

    categories = ("reservation", "glsc", "coherence")

    def __init__(
        self,
        n_cores: int = 1,
        window: int = DEFAULT_WINDOW,
        top_k: int = DEFAULT_TOP_K,
        storm_threshold: int = DEFAULT_STORM_THRESHOLD,
    ) -> None:
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.n_cores = n_cores
        self.window = window
        self.top_k = top_k
        self.storm_threshold = storm_threshold
        # (attacker_tid, victim_tid, cause) -> kills
        self._matrix: Dict[Tuple[int, int, str], int] = {}
        # cause -> kills (matrix marginal, kept for cheap cross-checks)
        self._kills_by_cause: Dict[str, int] = {}
        # "consumed" retirements per kind (scalar consumed == successful
        # sc count, an exact MachineStats cross-check)
        self._consumed: Dict[str, int] = {"scalar": 0, "glsc": 0}
        # line_addr -> [kills, invalidations, failed_lanes]
        self._lines: Dict[int, List[int]] = {}
        # failure cause -> failed element lanes (reproduces
        # MachineStats.glsc_element_failures exactly)
        self._failed_lanes: Dict[str, int] = {c: 0 for c in FAILURE_CAUSES}
        # window index -> [kills, failed_lanes]
        self._timeline: Dict[int, List[int]] = {}
        # (tid, line_addr) -> current consecutive-failure streak
        self._streaks: Dict[Tuple[int, int], int] = {}
        # log2 bucket -> completed streak count
        self._retry_depths: Dict[int, int] = {}
        self._threads: set = set()

    # -- identity ---------------------------------------------------------

    def _tid(self, core: int, slot: int) -> int:
        """Global software-thread id of hardware thread (core, slot)."""
        if core < 0 or slot < 0:
            return ENV_THREAD
        return slot * self.n_cores + core

    # -- event intake -----------------------------------------------------

    def on_event(self, event: Any) -> None:
        name = type(event).__name__
        if name == "ReservationLost":
            self._on_loss(event)
        elif name == "ElementOutcome":
            self._on_element(event)
        elif name == "Invalidation":
            line = self._lines.setdefault(event.line_addr, [0, 0, 0])
            line[1] += 1
        # Other coherence/glsc events (Writeback, LineCombine,
        # ReservationSet) carry no conflict signal.

    def _on_loss(self, event: Any) -> None:
        victim = self._tid(event.core, event.slot)
        self._threads.add(victim)
        if event.cause == "consumed":
            self._consumed[event.kind] = (
                self._consumed.get(event.kind, 0) + 1
            )
            return
        attacker = self._tid(
            getattr(event, "attacker_core", -1),
            getattr(event, "attacker_slot", -1),
        )
        if attacker != ENV_THREAD:
            self._threads.add(attacker)
        key = (attacker, victim, event.cause)
        self._matrix[key] = self._matrix.get(key, 0) + 1
        self._kills_by_cause[event.cause] = (
            self._kills_by_cause.get(event.cause, 0) + 1
        )
        line = self._lines.setdefault(event.line_addr, [0, 0, 0])
        line[0] += 1
        bucket = self._timeline.setdefault(
            event.cycle // self.window, [0, 0]
        )
        bucket[0] += 1

    def _on_element(self, event: Any) -> None:
        tid = self._tid(event.core, event.slot)
        self._threads.add(tid)
        streak_key = (tid, event.line_addr)
        if event.ok:
            if event.op == "scattercond":
                depth = self._streaks.pop(streak_key, 0)
                if depth:
                    bucket = _depth_bucket(depth)
                    self._retry_depths[bucket] = (
                        self._retry_depths.get(bucket, 0) + 1
                    )
            return
        cause = event.cause or "thread_conflict"
        self._failed_lanes[cause] = (
            self._failed_lanes.get(cause, 0) + event.lanes
        )
        line = self._lines.setdefault(event.line_addr, [0, 0, 0])
        line[2] += event.lanes
        bucket = self._timeline.setdefault(
            event.cycle // self.window, [0, 0]
        )
        bucket[1] += event.lanes
        self._streaks[streak_key] = self._streaks.get(streak_key, 0) + 1

    # -- summary ----------------------------------------------------------

    def summary(
        self,
        regions=None,
        stats: Optional[MachineStats] = None,
    ) -> "ContentionSummary":
        """Freeze the accumulated attribution into a summary.

        ``regions`` (a :class:`~repro.mem.layout.RegionMap`) symbolizes
        hot-line addresses; ``stats`` enables the exact marginal
        cross-checks against the run's counters.
        """
        # Flush unfinished streaks: a thread that never committed its
        # line still retried that many times.
        for depth in self._streaks.values():
            if depth:
                bucket = _depth_bucket(depth)
                self._retry_depths[bucket] = (
                    self._retry_depths.get(bucket, 0) + 1
                )
        self._streaks.clear()

        matrix: Dict[int, Dict[int, Dict[str, int]]] = {}
        for (attacker, victim, cause), count in self._matrix.items():
            matrix.setdefault(attacker, {}).setdefault(victim, {})[
                cause
            ] = count

        ranked = sorted(
            self._lines.items(),
            key=lambda item: (-(sum(item[1])), item[0]),
        )
        hot_lines = []
        for line_addr, (kills, invalidations, failed) in ranked[: self.top_k]:
            hot_lines.append({
                "line_addr": line_addr,
                "region": (
                    regions.symbolize(line_addr)
                    if regions is not None
                    else f"{line_addr:#x}"
                ),
                "kills": kills,
                "invalidations": invalidations,
                "failed_lanes": failed,
                "total": kills + invalidations + failed,
            })

        timeline = []
        storms = []
        for index in sorted(self._timeline):
            kills, failed = self._timeline[index]
            storm = failed >= self.storm_threshold
            if storm:
                storms.append(index)
            timeline.append({
                "window": index,
                "start_cycle": index * self.window,
                "kills": kills,
                "failed_lanes": failed,
                "storm": storm,
            })

        return ContentionSummary(
            n_cores=self.n_cores,
            window=self.window,
            storm_threshold=self.storm_threshold,
            threads=sorted(t for t in self._threads if t != ENV_THREAD),
            matrix=matrix,
            kills_by_cause=dict(self._kills_by_cause),
            consumed=dict(self._consumed),
            failed_lanes={
                cause: lanes
                for cause, lanes in self._failed_lanes.items()
                if lanes
            },
            hot_lines=hot_lines,
            timeline=timeline,
            storms=storms,
            retry_depths=dict(self._retry_depths),
            stats=stats,
        )


class ContentionSummary:
    """The frozen output of one run's :class:`ContentionSink`."""

    def __init__(
        self,
        n_cores: int,
        window: int,
        storm_threshold: int,
        threads: List[int],
        matrix: Dict[int, Dict[int, Dict[str, int]]],
        kills_by_cause: Dict[str, int],
        consumed: Dict[str, int],
        failed_lanes: Dict[str, int],
        hot_lines: List[Dict[str, Any]],
        timeline: List[Dict[str, Any]],
        storms: List[int],
        retry_depths: Dict[int, int],
        stats: Optional[MachineStats] = None,
    ) -> None:
        self.n_cores = n_cores
        self.window = window
        self.storm_threshold = storm_threshold
        self.threads = threads
        self.matrix = matrix
        self.kills_by_cause = kills_by_cause
        self.consumed = consumed
        self.failed_lanes = failed_lanes
        self.hot_lines = hot_lines
        self.timeline = timeline
        self.storms = storms
        self.retry_depths = retry_depths
        self.stats = stats

    # -- marginals --------------------------------------------------------

    @property
    def total_kills(self) -> int:
        return sum(self.kills_by_cause.values())

    def row_sums(self) -> Dict[int, int]:
        """Kills per attacker (matrix row marginals)."""
        out: Dict[int, int] = {}
        for attacker, victims in self.matrix.items():
            out[attacker] = sum(
                count
                for causes in victims.values()
                for count in causes.values()
            )
        return out

    def col_sums(self) -> Dict[int, int]:
        """Kills per victim (matrix column marginals)."""
        out: Dict[int, int] = {}
        for victims in self.matrix.values():
            for victim, causes in victims.items():
                out[victim] = out.get(victim, 0) + sum(causes.values())
        return out

    def crosscheck(self) -> Dict[str, bool]:
        """Exact consistency checks against the run's MachineStats.

        * matrix marginals: row sums == column sums == per-cause kill
          totals (internal exactness of the attribution);
        * ``glsc_element_failures``: the sink's failed-lane tally per
          cause equals the stats counter (the Table 4 breakdown);
        * ``scalar_sc``: ``consumed`` scalar retirements equal
          successful store-conditionals (``sc_count - sc_failures``).
        """
        total = self.total_kills
        checks = {
            "matrix_marginals": (
                sum(self.row_sums().values()) == total
                and sum(self.col_sums().values()) == total
            ),
        }
        if self.stats is not None:
            stats_failures = {
                cause: count
                for cause, count in self.stats.glsc_element_failures.items()
                if count
            }
            checks["glsc_element_failures"] = (
                self.failed_lanes == stats_failures
            )
            checks["scalar_sc"] = (
                self.consumed.get("scalar", 0)
                == self.stats.sc_count - self.stats.sc_failures
            )
        return checks

    # -- serialization ----------------------------------------------------

    def _label(self, tid: int) -> str:
        return "env" if tid == ENV_THREAD else f"t{tid}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view; keys are sorted/stable for determinism."""
        matrix = {
            self._label(attacker): {
                self._label(victim): {
                    cause: self.matrix[attacker][victim][cause]
                    for cause in sorted(self.matrix[attacker][victim])
                }
                for victim in sorted(self.matrix[attacker])
            }
            for attacker in sorted(self.matrix)
        }
        doc: Dict[str, Any] = {
            "n_cores": self.n_cores,
            "window": self.window,
            "storm_threshold": self.storm_threshold,
            "threads": self.threads,
            "total_kills": self.total_kills,
            "kills_by_cause": {
                cause: self.kills_by_cause[cause]
                for cause in sorted(self.kills_by_cause)
            },
            "consumed": {
                kind: self.consumed[kind]
                for kind in sorted(self.consumed)
            },
            "failed_lanes": {
                cause: self.failed_lanes[cause]
                for cause in sorted(self.failed_lanes)
            },
            "kill_matrix": matrix,
            "row_sums": {
                self._label(t): n
                for t, n in sorted(self.row_sums().items())
            },
            "col_sums": {
                self._label(t): n
                for t, n in sorted(self.col_sums().items())
            },
            "hot_lines": self.hot_lines,
            "timeline": self.timeline,
            "storms": self.storms,
            "retry_depths": {
                str(bucket): self.retry_depths[bucket]
                for bucket in sorted(self.retry_depths)
            },
            "crosscheck": self.crosscheck(),
        }
        if self.stats is not None:
            doc["stats"] = {
                "sc_count": self.stats.sc_count,
                "sc_failures": self.stats.sc_failures,
                "glsc_element_failures": dict(
                    self.stats.glsc_element_failures
                ),
            }
        return doc

    def compact(self) -> Dict[str, Any]:
        """The small per-point block bench trajectories carry."""
        hottest = self.hot_lines[0] if self.hot_lines else None
        deepest = max(self.retry_depths) if self.retry_depths else 0
        return {
            "kills": self.total_kills,
            "by_cause": {
                cause: self.kills_by_cause[cause]
                for cause in sorted(self.kills_by_cause)
            },
            "failed_lanes": sum(self.failed_lanes.values()),
            "hot_line": hottest["region"] if hottest else None,
            "hot_line_total": hottest["total"] if hottest else 0,
            "storms": len(self.storms),
            "max_retry_depth": deepest,
        }

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """The full report as GitHub-flavoured markdown."""
        lines: List[str] = ["# Contention report", ""]
        lines.append(
            f"- threads: {len(self.threads)}  |  kills: "
            f"{self.total_kills}  |  failed lanes: "
            f"{sum(self.failed_lanes.values())}  |  storms: "
            f"{len(self.storms)}"
        )
        if self.kills_by_cause:
            causes = ", ".join(
                f"{cause}={self.kills_by_cause[cause]}"
                for cause in sorted(self.kills_by_cause)
            )
            lines.append(f"- kills by cause: {causes}")
        checks = self.crosscheck()
        verdict = ", ".join(
            f"{name}={'ok' if passed else 'MISMATCH'}"
            for name, passed in sorted(checks.items())
        )
        lines.append(f"- cross-checks: {verdict}")
        lines.append("")

        lines.append("## Kill matrix (attacker rows, victim columns)")
        lines.append("")
        attackers = sorted(self.matrix)
        victims = sorted(
            {v for victims in self.matrix.values() for v in victims}
        )
        if attackers:
            header = (
                "| attacker \\ victim | "
                + " | ".join(self._label(v) for v in victims)
                + " | total |"
            )
            lines.append(header)
            lines.append("|" + "---|" * (len(victims) + 2))
            rows = self.row_sums()
            for attacker in attackers:
                cells = []
                for victim in victims:
                    causes = self.matrix[attacker].get(victim)
                    cells.append(
                        str(sum(causes.values())) if causes else "0"
                    )
                lines.append(
                    f"| {self._label(attacker)} | "
                    + " | ".join(cells)
                    + f" | {rows[attacker]} |"
                )
        else:
            lines.append("(no reservation kills observed)")
        lines.append("")

        lines.append("## Hot lines")
        lines.append("")
        if self.hot_lines:
            lines.append(
                "| line | region | kills | invalidations | "
                "failed lanes | total |"
            )
            lines.append("|---|---|---|---|---|---|")
            for entry in self.hot_lines:
                lines.append(
                    f"| {entry['line_addr']:#x} | {entry['region']} | "
                    f"{entry['kills']} | {entry['invalidations']} | "
                    f"{entry['failed_lanes']} | {entry['total']} |"
                )
        else:
            lines.append("(no contended lines observed)")
        lines.append("")

        lines.append("## Timeline")
        lines.append("")
        if self.timeline:
            lines.append(
                f"window = {self.window} cycles; storm at >= "
                f"{self.storm_threshold} failed lanes/window"
            )
            lines.append("")
            lines.append("| window | start cycle | kills | "
                         "failed lanes | storm |")
            lines.append("|---|---|---|---|---|")
            for entry in self.timeline:
                lines.append(
                    f"| {entry['window']} | {entry['start_cycle']} | "
                    f"{entry['kills']} | {entry['failed_lanes']} | "
                    f"{'STORM' if entry['storm'] else ''} |"
                )
        else:
            lines.append("(no conflict activity observed)")
        lines.append("")

        lines.append("## Retry depth histogram")
        lines.append("")
        if self.retry_depths:
            lines.append("| depth (log2 bin) | streaks |")
            lines.append("|---|---|")
            for bucket in sorted(self.retry_depths):
                upper = bucket * 2 - 1
                label = str(bucket) if upper == bucket else (
                    f"{bucket}-{upper}"
                )
                lines.append(
                    f"| {label} | {self.retry_depths[bucket]} |"
                )
        else:
            lines.append("(every element group committed first try)")
        lines.append("")
        return "\n".join(lines)
