"""Typed observability events emitted by the memory hierarchy and GSU.

Every event is a small frozen dataclass carrying the simulation cycle
it happened at plus enough identity to attribute it (core, SMT slot,
line address, cause).  Events are grouped into *categories* — the unit
of subscription on the :class:`~repro.obs.bus.EventBus`:

=============  ========================================================
``instr``      retired instructions (:class:`~repro.sim.trace.
               TraceEvent` — the pre-existing tracer event, now also a
               bus citizen)
``cache``      L1/L2 demand hits and misses, L1 evictions
``coherence``  invalidations (remote writes, inclusive-L2 victims) and
               dirty writebacks
``reservation`` scalar ll/sc and GLSC reservation set / lost (with the
               cause of death)
``glsc``       gather-link / scatter-conditional element outcomes and
               GSU line-combining merges
``protocol``   transaction-level coherence messages (GetS/GetM/
               Upgrade/PutM/PutS/Inv/Fwd/Ack plus MESI's
               silent-upgrade marker) — the seam vocabulary of
               :mod:`repro.mem.messages`, emitted by the configured
               :class:`~repro.mem.protocol.CoherenceProtocol`
``service``    sweep-service lifecycle transitions
               (:class:`TaskPhase`: submitted/enqueued/claimed/
               simulated/saved/streamed, plus the unhappy-path
               requeued/nacked/poisoned) — wall-clock events from the
               queue/worker/server stack, not simulation-cycle events
=============  ========================================================

Design constraints:

* **Alignment with stats** — wherever a :class:`~repro.sim.stats.
  MachineStats` counter increments, the corresponding event is emitted
  with the *same* attribution, so aggregating the event stream
  reproduces the counters exactly (the test suite asserts this for L1
  misses and for the Table 4 failure-cause breakdown).
* **Zero cost when disabled** — events are only constructed behind an
  ``obs is not None and obs.wants_<category>`` guard, so an
  uninstrumented run never allocates one (guard-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from enum import Enum
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "CATEGORIES",
    "EVENT_TYPES",
    "PROTOCOL_MESSAGES",
    "CacheHit",
    "CacheMiss",
    "Eviction",
    "Writeback",
    "Invalidation",
    "ReservationSet",
    "ReservationLost",
    "ElementOutcome",
    "LineCombine",
    "TaskPhase",
    "event_to_dict",
]

#: Subscription categories, in display order.
CATEGORIES = (
    "instr", "cache", "coherence", "reservation", "glsc", "protocol",
    "service",
)


@dataclass(frozen=True)
class CacheHit:
    """A demand access that hit (counted in ``l1_hits``/L2 presence)."""

    category = "cache"

    cycle: int
    core: int
    slot: int
    line_addr: int
    level: str  # "L1" | "L2"
    op: str     # "read" | "write"


@dataclass(frozen=True)
class CacheMiss:
    """A demand access that missed at ``level`` and went deeper."""

    category = "cache"

    cycle: int
    core: int
    slot: int
    line_addr: int
    level: str  # "L1" | "L2"  (an L2 miss goes to main memory)
    op: str     # "read" | "write"


@dataclass(frozen=True)
class Eviction:
    """A line left an L1 by capacity/conflict replacement."""

    category = "cache"

    cycle: int
    core: int
    line_addr: int
    dirty: bool


@dataclass(frozen=True)
class Writeback:
    """Dirty data left an L1 (counted in ``stats.writebacks``)."""

    category = "coherence"

    cycle: int
    core: int
    line_addr: int
    reason: str  # "eviction" | "invalidation" | "downgrade"


@dataclass(frozen=True)
class Invalidation:
    """An L1 copy was invalidated by the coherence protocol."""

    category = "coherence"

    cycle: int
    core: int      # the core that *lost* the line
    line_addr: int
    cause: str     # "remote_write" | "l2_eviction"


@dataclass(frozen=True)
class ReservationSet:
    """A reservation was acquired (scalar ``ll`` or GLSC gather-link)."""

    category = "reservation"

    cycle: int
    core: int
    slot: int
    line_addr: int
    kind: str  # "scalar" | "glsc"


@dataclass(frozen=True)
class ReservationLost:
    """A live reservation was destroyed (or consumed by its owner).

    ``cause`` uses the same vocabulary as
    :data:`~repro.sim.stats.FAILURE_CAUSES` where the loss feeds a GLSC
    element failure (``thread_conflict``, ``eviction``), plus
    ``consumed`` for a successful scatter-conditional / sc retiring its
    own reservation.

    ``attacker_core``/``attacker_slot`` name the hardware thread whose
    access destroyed the reservation (the writer, the upgrader, or the
    thread whose fill evicted the line); both are -1 when the killer is
    the environment (chaos injection) or unknown.  A self-inflicted
    loss (``consumed``/``mismatch``) attributes to the holder itself.
    """

    category = "reservation"

    cycle: int
    core: int
    slot: int      # holder; -1 when unknown
    line_addr: int
    kind: str      # "scalar" | "glsc"
    cause: str
    attacker_core: int = -1
    attacker_slot: int = -1


@dataclass(frozen=True)
class ElementOutcome:
    """Outcome of GLSC element operations on one cache line.

    One event per (instruction, line, outcome) group: ``lanes`` is how
    many SIMD lanes share it.  Failures carry the Table 4 cause; the
    per-cause lane sums reproduce
    ``MachineStats.glsc_element_failures`` exactly.
    """

    category = "glsc"

    cycle: int
    core: int
    slot: int
    line_addr: int
    op: str               # "gatherlink" | "scattercond"
    lanes: int
    ok: bool
    cause: Optional[str]  # a FAILURE_CAUSES member when ok is False


@dataclass(frozen=True)
class LineCombine:
    """The GSU merged same-line lanes into one L1 access (Section 2.2)."""

    category = "glsc"

    cycle: int
    core: int
    slot: int
    line_addr: int
    op: str           # "gather" | "scatter"
    lanes_saved: int  # L1 accesses avoided (group size - 1)
    sync: bool        # whether the access counts as an atomic op


@dataclass(frozen=True)
class TaskPhase:
    """One sweep-service lifecycle transition for one spec digest.

    Unlike the simulation events above, ``ts`` is a wall-clock unix
    timestamp — service events happen in real time across processes,
    not on a simulated cycle counter.  Emission sites follow the same
    ``obs is not None and obs.wants_service`` guard, so an unobserved
    queue/worker/server allocates no event objects (guard-tested).
    """

    category = "service"

    ts: float
    digest: str
    phase: str     # a sweeptrace.PHASES member or requeued/nacked/poisoned
    actor: str     # worker id / "server" / "queue"
    trace_id: str  # "" when the task was submitted untraced


def _trace_event_type():
    from repro.sim.trace import TraceEvent

    return TraceEvent


def all_event_types() -> Tuple[type, ...]:
    """Every event class the bus can carry (including TraceEvent)."""
    return (_trace_event_type(),) + EVENT_TYPES


#: The protocol-transaction events are the coherence seam's message
#: dataclasses themselves (``category = "protocol"``), so the stream a
#: sink sees *is* the directory traffic the selected protocol spoke.
from repro.mem.messages import PROTOCOL_MESSAGES  # noqa: E402

#: Static tuple of the event classes the bus carries (TraceEvent joins
#: lazily via :func:`all_event_types` to avoid an import cycle).
EVENT_TYPES = (
    CacheHit,
    CacheMiss,
    Eviction,
    Writeback,
    Invalidation,
    ReservationSet,
    ReservationLost,
    ElementOutcome,
    LineCombine,
    TaskPhase,
) + PROTOCOL_MESSAGES


def event_to_dict(event: Any) -> Dict[str, Any]:
    """One event as a flat JSON-able dict (``type``/``cat`` + fields).

    Enum values (e.g. :class:`~repro.isa.instructions.Kind` on retired
    instructions) serialize by name.
    """
    out: Dict[str, Any] = {
        "type": type(event).__name__,
        "cat": event.category,
    }
    for f in fields(event):
        value = getattr(event, f.name)
        if isinstance(value, Enum):
            value = value.name
        out[f.name] = value
    return out
