"""Structured logging for the sweep service (JSON or text lines).

The service modules used ad-hoc ``print``-style callables
(``log("worker x done")``); those lines were fine for a human tail
but useless for correlation — which worker, which digest, which
sweep?  :class:`StructLogger` replaces them with one event-per-line
records that always carry the component and any *bound* correlation
fields (``worker_id``, ``digest``, ``trace_id``), rendered either as
JSON (machines) or as aligned text (humans; the CLI default).

The legacy ``log: Callable[[str], None]`` parameters on
``worker_loop``/``SweepServer`` keep working: :func:`to_logger` wraps
such a callable into a text-format StructLogger, so existing callers
(CLI ``--log``, ``--quiet``, tests passing ``log=``) see the same
single-line strings they always did — now structured underneath.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Dict, IO, Optional, Union

__all__ = ["StructLogger", "NULL_LOGGER", "to_logger"]

LEVELS = ("debug", "info", "warning", "error")


class StructLogger:
    """One-line-per-event logger with bound correlation fields.

    ``emit`` (a callable taking the rendered line) wins over
    ``stream``; with neither, the logger is disabled and every call
    is a cheap no-op.  ``bind(**fields)`` returns a child logger
    whose records always include ``fields`` — bind the worker id
    once, every subsequent record carries it.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        emit: Optional[Callable[[str], None]] = None,
        component: str = "",
        fmt: str = "json",
        fields: Optional[Dict[str, Any]] = None,
    ) -> None:
        if fmt not in ("json", "text"):
            raise ValueError(f"fmt must be 'json' or 'text', got {fmt!r}")
        self.stream = stream
        self.emit = emit
        self.component = component
        self.fmt = fmt
        self.fields = dict(fields or {})
        self.enabled = emit is not None or stream is not None

    @classmethod
    def null(cls) -> "StructLogger":
        """A disabled logger (every call is a no-op)."""
        return cls()

    @classmethod
    def stderr(
        cls, component: str = "", fmt: str = "text"
    ) -> "StructLogger":
        return cls(stream=sys.stderr, component=component, fmt=fmt)

    def bind(self, **fields: Any) -> "StructLogger":
        """A child logger that always includes ``fields``."""
        child = StructLogger(
            stream=self.stream,
            emit=self.emit,
            component=self.component,
            fmt=self.fmt,
            fields={**self.fields, **fields},
        )
        return child

    # -- emission --------------------------------------------------------

    def log(self, level: str, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        record = {
            "ts": time.time(),
            "level": level,
            "component": self.component,
            "event": event,
            **self.fields,
            **fields,
        }
        line = (
            self._render_text(record)
            if self.fmt == "text"
            else json.dumps(record, sort_keys=True, default=str)
        )
        if self.emit is not None:
            self.emit(line)
        elif self.stream is not None:
            print(line, file=self.stream, flush=True)

    @staticmethod
    def _render_text(record: Dict[str, Any]) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record["ts"]))
        head = f"[{stamp}] {record['level']:7s}"
        if record["component"]:
            head += f" {record['component']}"
        head += f" {record['event']}"
        extras = " ".join(
            f"{key}={record[key]}"
            for key in record
            if key not in ("ts", "level", "component", "event")
        )
        return f"{head} {extras}".rstrip()

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


#: Shared disabled logger — safe default for every component.
NULL_LOGGER = StructLogger.null()


def to_logger(
    log: Union[StructLogger, Callable[[str], None], None],
    component: str = "",
) -> StructLogger:
    """Coerce a legacy line callable (or None) into a StructLogger.

    A StructLogger passes through (re-componented when it has none);
    a plain callable becomes a text-format logger emitting through
    it; ``None`` becomes the disabled logger.
    """
    if log is None:
        return NULL_LOGGER
    if isinstance(log, StructLogger):
        if component and not log.component:
            logger = log.bind()
            logger.component = component
            return logger
        return log
    return StructLogger(emit=log, component=component, fmt="text")
