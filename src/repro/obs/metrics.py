"""Process-local metrics registry: counters, gauges, histograms.

Where :mod:`repro.obs.events` streams *simulation* micro-events, this
module counts *service* macro-events: tasks submitted and claimed,
store puts, HTTP requests and their latencies.  One
:class:`MetricsRegistry` per process aggregates everything the sweep
service does; :meth:`MetricsRegistry.render_prometheus` exposes it in
the Prometheus text format 0.0.4 (what ``GET /v1/metrics`` serves and
what CI scrapes mid-drain) and :meth:`MetricsRegistry.to_dict` as a
JSON document for programmatic consumers (``repro status --json``).

Design points:

* **Get-or-create** — ``registry.counter("queue_tasks_total", ...)``
  returns the existing metric when the name is already registered, so
  every :class:`~repro.service.queue.WorkQueue` /
  :class:`~repro.sim.store.ResultStore` instance in one process feeds
  the same series.  Re-registering a name as a different metric type
  is a :class:`~repro.errors.ConfigError`, as is re-registering a
  histogram with different ``buckets`` — two callers silently feeding
  one series with incompatible bucket layouts would corrupt it.
* **Labels** — metrics declare their label *names* up front; samples
  are keyed by label-value tuples (``counter.inc(op="acked")``).
* **Thread-safe** — one lock per registry guards registration, one
  per metric guards samples; the server's asyncio loop, worker
  threads in tests, and the CLI can share a registry.
* **No global mutable state required** — components accept a
  ``metrics=`` registry; :func:`get_registry` provides the process
  default for the common single-registry case.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds): spans sub-millisecond HTTP
#: handling up to minute-long simulations.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


def _label_key(
    labelnames: Sequence[str], labels: Dict[str, str], metric: str
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ConfigError(
            f"metric {metric!r} takes labels {tuple(labelnames)}, "
            f"got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _render_labels(
    labelnames: Sequence[str], values: Tuple[str, ...],
    extra: Optional[Tuple[Tuple[str, str], ...]] = None,
) -> str:
    pairs = list(zip(labelnames, values)) + list(extra or ())
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"')
        .replace("\n", "\\n")
    )


class _Metric:
    """Common plumbing: name/help/labelnames plus a sample lock."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        return _label_key(self.labelnames, labels, self.name)


class Counter(_Metric):
    """Monotonically increasing count (per label combination)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        with self._lock:
            return sorted(self._values.items())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(zip(self.labelnames, key)), "value": value}
                for key, value in self.samples()
            ],
        }

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} counter",
        ]
        samples = self.samples() or ([((), 0.0)] if not self.labelnames
                                     else [])
        for key, value in samples:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_fmt(value)}")
        return lines


class Gauge(Counter):
    """A value that can go up and down (depths, timestamps)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
        ]
        samples = self.samples() or ([((), 0.0)] if not self.labelnames
                                     else [])
        for key, value in samples:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_fmt(value)}")
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram of observations (latency style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ConfigError(f"histogram {name} needs >= 1 bucket")
        self.bounds = tuple(bounds)
        # per label key: [per-bound counts..., +Inf count], sum
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.setdefault(
                key, [0] * (len(self.bounds) + 1)
            )
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def sum(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def samples(self) -> List[Tuple[Tuple[str, ...], List[int], float]]:
        with self._lock:
            return sorted(
                (key, list(counts), self._sums.get(key, 0.0))
                for key, counts in self._counts.items()
            )

    def to_dict(self) -> Dict[str, Any]:
        out = []
        for key, counts, total in self.samples():
            cumulative = {}
            running = 0
            for bound, n in zip(self.bounds, counts):
                running += n
                cumulative[_fmt(bound)] = running
            cumulative["+Inf"] = running + counts[-1]
            out.append({
                "labels": dict(zip(self.labelnames, key)),
                "buckets": cumulative,
                "count": sum(counts),
                "sum": total,
            })
        return {"type": self.kind, "help": self.help, "samples": out}

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        for key, counts, total in self.samples():
            running = 0
            for bound, n in zip(self.bounds, counts):
                running += n
                labels = _render_labels(
                    self.labelnames, key, (("le", _fmt(bound)),)
                )
                lines.append(f"{self.name}_bucket{labels} {running}")
            labels = _render_labels(self.labelnames, key, (("le", "+Inf"),))
            lines.append(
                f"{self.name}_bucket{labels} {running + counts[-1]}"
            )
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_fmt(total)}")
            lines.append(
                f"{self.name}_count{plain} {sum(counts)}"
            )
        return lines


def _fmt(value: float) -> str:
    """Prometheus-style number formatting (ints without the .0)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """A named collection of metrics with text/JSON renderings."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- registration (get-or-create) ------------------------------------

    def _register(self, cls, name: str, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ConfigError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if "buckets" in kwargs:
                    wanted = tuple(sorted(
                        float(b) for b in kwargs["buckets"]
                    ))
                    if wanted != existing.bounds:
                        raise ConfigError(
                            f"histogram {name!r} already registered "
                            f"with buckets {existing.bounds}, cannot "
                            f"re-register with {wanted}"
                        )
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(
            Counter, name, help=help, labelnames=labelnames
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help=help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help=help, labelnames=labelnames,
            buckets=buckets,
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- renderings ------------------------------------------------------

    def render_prometheus(
        self, extra_lines: Iterable[str] = ()
    ) -> str:
        """The registry in Prometheus text exposition format 0.0.4.

        ``extra_lines`` lets the server append series it derives from
        outside the registry (worker heartbeat files).
        """
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            lines.extend(metric.render())
        lines.extend(extra_lines)
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        """JSON view: ``{metric name: {type, help, samples}}``."""
        return {
            name: self._metrics[name].to_dict() for name in self.names()
        }


#: The process-default registry (components take ``metrics=`` to
#: override; tests pass a fresh one).
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default (returns the previous one)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
