"""Chrome trace-event exporter: open a simulation in ui.perfetto.dev.

:class:`PerfettoSink` converts the event stream into the Chrome
trace-event JSON format (the ``traceEvents`` array understood by
https://ui.perfetto.dev and ``chrome://tracing``).  Layout:

* one **process per core** (``pid = core``, named ``core N``);
* one **thread track per hardware thread** (``tid = global thread
  id``): retired instructions appear as complete slices ("X" events)
  whose duration is the instruction's occupancy, so the interleaving
  the SMT scheduler actually produced is directly visible;
* one **memory track per core** (``tid = MEM_TRACK_BASE + core``):
  cache misses, evictions, invalidations, writebacks, GLSC element
  failures and line-combines appear as instant events; GLSC
  reservations appear as async spans ("b"/"e") from link to death, so
  a reservation's lifetime — and the cause that ended it — reads as a
  bar with a labelled end.

Timestamps are simulation cycles interpreted as microseconds (1 cycle
= 1 us); relative durations are what matter.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Optional, Set, Tuple, Union

from repro.obs.bus import Sink

__all__ = ["PerfettoSink", "SweepTraceExporter", "MEM_TRACK_BASE"]

#: tid offset for the per-core memory-hierarchy tracks (far above any
#: plausible hardware-thread id).
MEM_TRACK_BASE = 1_000_000


class PerfettoSink(Sink):
    """Collects events and serializes Chrome trace-event JSON."""

    def __init__(self, include_hits: bool = False) -> None:
        #: whether to emit an instant per L1/L2 *hit* (high volume;
        #: misses and coherence traffic are usually what you look at).
        self.include_hits = include_hits
        self._events: List[Dict[str, Any]] = []
        self._known_tracks: Set[Tuple[int, int]] = set()
        self._known_cores: Set[int] = set()
        # open async reservation spans: (core, line, kind) -> span id
        self._open_spans: Dict[Tuple[int, int, str], int] = {}
        self._next_span = 1
        self._last_ts = 0
        # running reservation-kill tally per victim core ("C" track)
        self._kill_counts: Dict[int, int] = {}

    # -- track bookkeeping -------------------------------------------------

    def _meta(self, pid: int, name: str, tid: Optional[int] = None) -> None:
        if tid is None:
            self._events.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "args": {"name": name},
            })
            self._events.append({
                "ph": "M", "name": "process_sort_index", "pid": pid,
                "args": {"sort_index": pid},
            })
        else:
            self._events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": name},
            })

    def _core_track(self, core: int) -> int:
        if core not in self._known_cores:
            self._known_cores.add(core)
            self._meta(core, f"core {core}")
            self._meta(core, "memory hierarchy", MEM_TRACK_BASE + core)
        return MEM_TRACK_BASE + core

    def _thread_track(self, core: int, thread: int) -> int:
        self._core_track(core)
        if (core, thread) not in self._known_tracks:
            self._known_tracks.add((core, thread))
            self._meta(core, f"thread {thread}", thread)
        return thread

    def _instant(
        self, ts: int, core: int, name: str, args: Dict[str, Any]
    ) -> None:
        self._events.append({
            "ph": "i", "s": "t", "ts": ts, "pid": core,
            "tid": self._core_track(core), "name": name,
            "cat": "memory", "args": args,
        })

    # -- event handling ----------------------------------------------------

    def on_event(self, event: Any) -> None:
        cycle = getattr(event, "cycle", None)
        if cycle is None:
            # Service-plane events (category "service") carry wall-clock
            # timestamps, not simulation cycles; they belong to
            # SweepTraceExporter, so a catch-all subscription skips them.
            return
        self._last_ts = max(self._last_ts, cycle)
        name = type(event).__name__
        if name == "TraceEvent":
            self._events.append({
                "ph": "X", "ts": event.cycle, "dur": event.latency,
                "pid": event.core,
                "tid": self._thread_track(event.core, event.thread),
                "name": event.kind.name, "cat": "instr",
                "args": {"sync": event.sync,
                         "completion": event.completion},
            })
        elif name == "CacheMiss":
            self._instant(
                event.cycle, event.core, f"{event.level}-miss",
                {"line": hex(event.line_addr), "op": event.op,
                 "slot": event.slot},
            )
        elif name == "CacheHit":
            if self.include_hits:
                self._instant(
                    event.cycle, event.core, f"{event.level}-hit",
                    {"line": hex(event.line_addr), "op": event.op},
                )
        elif name == "Eviction":
            self._instant(
                event.cycle, event.core, "L1-evict",
                {"line": hex(event.line_addr), "dirty": event.dirty},
            )
        elif name == "Invalidation":
            self._instant(
                event.cycle, event.core, "invalidate",
                {"line": hex(event.line_addr), "cause": event.cause},
            )
        elif name == "Writeback":
            self._instant(
                event.cycle, event.core, "writeback",
                {"line": hex(event.line_addr), "reason": event.reason},
            )
        elif name == "ReservationSet":
            key = (event.core, event.line_addr, event.kind)
            self._end_span(key, event.cycle, "relink")
            span = self._next_span
            self._next_span += 1
            self._open_spans[key] = span
            self._events.append({
                "ph": "b", "id": span, "ts": event.cycle, "pid": event.core,
                "tid": self._core_track(event.core),
                "name": f"{event.kind}-reservation", "cat": "reservation",
                "args": {"line": hex(event.line_addr), "slot": event.slot},
            })
        elif name == "ReservationLost":
            key = (event.core, event.line_addr, event.kind)
            self._end_span(key, event.cycle, event.cause)
            self._instant(
                event.cycle, event.core, f"reservation-lost:{event.cause}",
                {"line": hex(event.line_addr), "kind": event.kind,
                 "slot": event.slot, "cause": event.cause,
                 "attacker_core": getattr(event, "attacker_core", -1),
                 "attacker_slot": getattr(event, "attacker_slot", -1)},
            )
            if event.cause != "consumed":
                # Running kill tally per victim core: a "C" counter
                # track whose staircase makes contention bursts visible
                # at a glance next to the instants.
                count = self._kill_counts.get(event.core, 0) + 1
                self._kill_counts[event.core] = count
                self._events.append({
                    "ph": "C", "ts": event.cycle, "pid": event.core,
                    "name": "reservation-kills", "cat": "reservation",
                    "args": {"kills": count},
                })
        elif name == "ElementOutcome":
            if event.ok:
                return  # successes are visible as the instruction slice
            self._instant(
                event.cycle, event.core, f"glsc-fail:{event.cause}",
                {"op": event.op, "lanes": event.lanes,
                 "line": hex(event.line_addr), "cause": event.cause,
                 "slot": event.slot},
            )
        elif name == "LineCombine":
            self._instant(
                event.cycle, event.core, "line-combine",
                {"op": event.op, "lanes_saved": event.lanes_saved,
                 "line": hex(event.line_addr), "sync": event.sync},
            )
        elif getattr(event, "category", None) == "protocol":
            # Coherence-seam messages (GetS/GetM/Upgrade/.../Ack):
            # instants on the memory track, named by message kind.
            args: Dict[str, Any] = {"line": hex(event.line_addr)}
            for extra in ("occupancy", "latency", "level", "cause",
                          "writeback", "state"):
                value = getattr(event, extra, None)
                if value is not None:
                    args[extra] = value
            self._instant(
                event.cycle, event.core, f"coh:{event.kind}", args
            )

    def _end_span(
        self, key: Tuple[int, int, str], ts: int, cause: str
    ) -> None:
        span = self._open_spans.pop(key, None)
        if span is None:
            return
        core = key[0]
        self._events.append({
            "ph": "e", "id": span, "ts": ts, "pid": core,
            "tid": self._core_track(core),
            "name": f"{key[2]}-reservation", "cat": "reservation",
            "args": {"cause": cause},
        })

    def close(self) -> None:
        # Close any reservation still live at the end of the run so
        # the trace contains no dangling async begins.
        for key in list(self._open_spans):
            self._end_span(key, self._last_ts, "run_end")

    # -- output ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The complete Chrome trace-event document."""
        from repro import __version__

        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.perfetto",
                "version": __version__,
                "clock": "1 simulated cycle = 1us",
            },
        }

    def write(self, destination: Union[str, "os.PathLike", IO[str]]) -> None:
        """Serialize to ``destination`` (path or open text file)."""
        self.close()
        if isinstance(destination, (str, os.PathLike)):
            with open(destination, "w", encoding="utf-8") as fh:
                json.dump(self.to_dict(), fh)
        else:
            json.dump(self.to_dict(), destination)

    def __len__(self) -> int:
        return len(self._events)


class SweepTraceExporter(Sink):
    """Multi-process Chrome trace of one distributed sweep drain.

    Where :class:`PerfettoSink` lays out one simulation (cores as
    processes, cycles as time), this exporter lays out one *sweep*
    crossing the service (wall-clock time, microsecond resolution):

    * pid 0 — the **sweep lifecycle** process: one async span ("b"/"e")
      per spec digest, stretching from its first recorded phase
      (normally ``submitted``) to its last (normally ``streamed``),
      with an instant per phase transition;
    * one **process per actor** (each worker, the server, the queue):
      a worker's ``claimed → simulated`` interval renders as a
      ``simulate`` slice and ``simulated → saved`` as a ``save``
      slice, so a two-worker drain shows both workers' interleaved
      work as parallel process tracks.

    Feed it either live :class:`~repro.obs.events.TaskPhase` events
    (it is a ``service``-category :class:`~repro.obs.bus.Sink`) or
    span records collected from the queue's sidecar files with
    :func:`~repro.obs.sweeptrace.collect_spans` (the cross-process
    path used by ``repro sweep-trace``).
    """

    categories = ("service",)

    #: The phase pairs drawn as duration slices on actor tracks.
    SLICES = (("claimed", "simulated", "simulate"),
              ("simulated", "saved", "save"))

    def __init__(self) -> None:
        self._records: List[Dict[str, Any]] = []

    def on_event(self, event: Any) -> None:
        if getattr(event, "category", None) != "service":
            return
        self.add({
            "ts": event.ts, "phase": event.phase, "digest": event.digest,
            "actor": event.actor, "trace_id": event.trace_id,
        })

    def add(self, record: Dict[str, Any]) -> None:
        """Add one span record (``{ts, phase, digest, actor, ...}``)."""
        if "ts" in record and "digest" in record and "phase" in record:
            self._records.append(record)

    @classmethod
    def from_spans(
        cls, spans: List[Dict[str, Any]]
    ) -> "SweepTraceExporter":
        exporter = cls()
        for record in spans:
            exporter.add(record)
        return exporter

    def __len__(self) -> int:
        return len(self._records)

    # -- document --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The complete Chrome trace-event document."""
        from repro import __version__

        events: List[Dict[str, Any]] = []
        records = sorted(self._records, key=lambda r: r["ts"])
        if records:
            t0 = records[0]["ts"]

            def us(ts: float) -> int:
                return int(round((ts - t0) * 1e6))

            events.append({
                "ph": "M", "name": "process_name", "pid": 0,
                "args": {"name": "sweep lifecycle"},
            })
            events.append({
                "ph": "M", "name": "process_sort_index", "pid": 0,
                "args": {"sort_index": 0},
            })
            actor_pid: Dict[str, int] = {}
            for record in records:
                actor = str(record.get("actor", "") or "?")
                if actor not in actor_pid:
                    pid = len(actor_pid) + 1
                    actor_pid[actor] = pid
                    events.append({
                        "ph": "M", "name": "process_name", "pid": pid,
                        "args": {"name": actor},
                    })
                    events.append({
                        "ph": "M", "name": "process_sort_index",
                        "pid": pid, "args": {"sort_index": pid},
                    })

            by_digest: Dict[str, List[Dict[str, Any]]] = {}
            for record in records:
                by_digest.setdefault(record["digest"], []).append(record)

            span_id = 1
            for digest in sorted(by_digest):
                group = by_digest[digest]
                first, last = group[0], group[-1]
                name = digest[:12]
                trace_id = next(
                    (r.get("trace_id") for r in group
                     if r.get("trace_id")), "",
                )
                events.append({
                    "ph": "b", "id": span_id, "ts": us(first["ts"]),
                    "pid": 0, "tid": 0, "name": name, "cat": "lifecycle",
                    "args": {"digest": digest, "trace_id": trace_id},
                })
                events.append({
                    "ph": "e", "id": span_id,
                    "ts": max(us(last["ts"]), us(first["ts"]) + 1),
                    "pid": 0, "tid": 0, "name": name, "cat": "lifecycle",
                    "args": {"last_phase": last["phase"]},
                })
                span_id += 1
                for record in group:
                    events.append({
                        "ph": "i", "s": "t", "ts": us(record["ts"]),
                        "pid": 0, "tid": 0, "name": record["phase"],
                        "cat": "lifecycle",
                        "args": {"digest": name,
                                 "actor": record.get("actor", "")},
                    })

                # Actor-track slices: first occurrence of each phase
                # per (actor, digest) pairs into simulate/save slices.
                per_actor: Dict[str, Dict[str, float]] = {}
                for record in group:
                    actor = str(record.get("actor", "") or "?")
                    per_actor.setdefault(actor, {}).setdefault(
                        record["phase"], record["ts"]
                    )
                for actor, phases in per_actor.items():
                    pid = actor_pid[actor]
                    sliced: set = set()
                    for begin, end, label in self.SLICES:
                        if begin in phases and end in phases:
                            start = us(phases[begin])
                            events.append({
                                "ph": "X", "ts": start,
                                "dur": max(us(phases[end]) - start, 1),
                                "pid": pid, "tid": 0,
                                "name": f"{label} {name}", "cat": "work",
                                "args": {"digest": digest},
                            })
                            sliced.update((begin, end))
                    for phase, ts in phases.items():
                        if phase in sliced:
                            continue
                        events.append({
                            "ph": "i", "s": "t", "ts": us(ts),
                            "pid": pid, "tid": 0,
                            "name": f"{phase} {name}", "cat": "work",
                            "args": {"digest": digest},
                        })

        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.perfetto.SweepTraceExporter",
                "version": __version__,
                "clock": "wall time, us since first span",
                "spans": len(self._records),
            },
        }

    def write(self, destination: Union[str, "os.PathLike", IO[str]]) -> None:
        """Serialize to ``destination`` (path or open text file)."""
        if isinstance(destination, (str, os.PathLike)):
            with open(destination, "w", encoding="utf-8") as fh:
                json.dump(self.to_dict(), fh)
        else:
            json.dump(self.to_dict(), destination)
