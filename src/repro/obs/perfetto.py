"""Chrome trace-event exporter: open a simulation in ui.perfetto.dev.

:class:`PerfettoSink` converts the event stream into the Chrome
trace-event JSON format (the ``traceEvents`` array understood by
https://ui.perfetto.dev and ``chrome://tracing``).  Layout:

* one **process per core** (``pid = core``, named ``core N``);
* one **thread track per hardware thread** (``tid = global thread
  id``): retired instructions appear as complete slices ("X" events)
  whose duration is the instruction's occupancy, so the interleaving
  the SMT scheduler actually produced is directly visible;
* one **memory track per core** (``tid = MEM_TRACK_BASE + core``):
  cache misses, evictions, invalidations, writebacks, GLSC element
  failures and line-combines appear as instant events; GLSC
  reservations appear as async spans ("b"/"e") from link to death, so
  a reservation's lifetime — and the cause that ended it — reads as a
  bar with a labelled end.

Timestamps are simulation cycles interpreted as microseconds (1 cycle
= 1 us); relative durations are what matter.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Set, Tuple, Union

from repro.obs.bus import Sink

__all__ = ["PerfettoSink", "MEM_TRACK_BASE"]

#: tid offset for the per-core memory-hierarchy tracks (far above any
#: plausible hardware-thread id).
MEM_TRACK_BASE = 1_000_000


class PerfettoSink(Sink):
    """Collects events and serializes Chrome trace-event JSON."""

    def __init__(self, include_hits: bool = False) -> None:
        #: whether to emit an instant per L1/L2 *hit* (high volume;
        #: misses and coherence traffic are usually what you look at).
        self.include_hits = include_hits
        self._events: List[Dict[str, Any]] = []
        self._known_tracks: Set[Tuple[int, int]] = set()
        self._known_cores: Set[int] = set()
        # open async reservation spans: (core, line, kind) -> span id
        self._open_spans: Dict[Tuple[int, int, str], int] = {}
        self._next_span = 1
        self._last_ts = 0

    # -- track bookkeeping -------------------------------------------------

    def _meta(self, pid: int, name: str, tid: Optional[int] = None) -> None:
        if tid is None:
            self._events.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "args": {"name": name},
            })
            self._events.append({
                "ph": "M", "name": "process_sort_index", "pid": pid,
                "args": {"sort_index": pid},
            })
        else:
            self._events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": name},
            })

    def _core_track(self, core: int) -> int:
        if core not in self._known_cores:
            self._known_cores.add(core)
            self._meta(core, f"core {core}")
            self._meta(core, "memory hierarchy", MEM_TRACK_BASE + core)
        return MEM_TRACK_BASE + core

    def _thread_track(self, core: int, thread: int) -> int:
        self._core_track(core)
        if (core, thread) not in self._known_tracks:
            self._known_tracks.add((core, thread))
            self._meta(core, f"thread {thread}", thread)
        return thread

    def _instant(
        self, ts: int, core: int, name: str, args: Dict[str, Any]
    ) -> None:
        self._events.append({
            "ph": "i", "s": "t", "ts": ts, "pid": core,
            "tid": self._core_track(core), "name": name,
            "cat": "memory", "args": args,
        })

    # -- event handling ----------------------------------------------------

    def on_event(self, event: Any) -> None:
        self._last_ts = max(self._last_ts, event.cycle)
        name = type(event).__name__
        if name == "TraceEvent":
            self._events.append({
                "ph": "X", "ts": event.cycle, "dur": event.latency,
                "pid": event.core,
                "tid": self._thread_track(event.core, event.thread),
                "name": event.kind.name, "cat": "instr",
                "args": {"sync": event.sync,
                         "completion": event.completion},
            })
        elif name == "CacheMiss":
            self._instant(
                event.cycle, event.core, f"{event.level}-miss",
                {"line": hex(event.line_addr), "op": event.op,
                 "slot": event.slot},
            )
        elif name == "CacheHit":
            if self.include_hits:
                self._instant(
                    event.cycle, event.core, f"{event.level}-hit",
                    {"line": hex(event.line_addr), "op": event.op},
                )
        elif name == "Eviction":
            self._instant(
                event.cycle, event.core, "L1-evict",
                {"line": hex(event.line_addr), "dirty": event.dirty},
            )
        elif name == "Invalidation":
            self._instant(
                event.cycle, event.core, "invalidate",
                {"line": hex(event.line_addr), "cause": event.cause},
            )
        elif name == "Writeback":
            self._instant(
                event.cycle, event.core, "writeback",
                {"line": hex(event.line_addr), "reason": event.reason},
            )
        elif name == "ReservationSet":
            key = (event.core, event.line_addr, event.kind)
            self._end_span(key, event.cycle, "relink")
            span = self._next_span
            self._next_span += 1
            self._open_spans[key] = span
            self._events.append({
                "ph": "b", "id": span, "ts": event.cycle, "pid": event.core,
                "tid": self._core_track(event.core),
                "name": f"{event.kind}-reservation", "cat": "reservation",
                "args": {"line": hex(event.line_addr), "slot": event.slot},
            })
        elif name == "ReservationLost":
            key = (event.core, event.line_addr, event.kind)
            self._end_span(key, event.cycle, event.cause)
            self._instant(
                event.cycle, event.core, f"reservation-lost:{event.cause}",
                {"line": hex(event.line_addr), "kind": event.kind,
                 "slot": event.slot, "cause": event.cause},
            )
        elif name == "ElementOutcome":
            if event.ok:
                return  # successes are visible as the instruction slice
            self._instant(
                event.cycle, event.core, f"glsc-fail:{event.cause}",
                {"op": event.op, "lanes": event.lanes,
                 "line": hex(event.line_addr), "cause": event.cause,
                 "slot": event.slot},
            )
        elif name == "LineCombine":
            self._instant(
                event.cycle, event.core, "line-combine",
                {"op": event.op, "lanes_saved": event.lanes_saved,
                 "line": hex(event.line_addr), "sync": event.sync},
            )
        elif getattr(event, "category", None) == "protocol":
            # Coherence-seam messages (GetS/GetM/Upgrade/.../Ack):
            # instants on the memory track, named by message kind.
            args: Dict[str, Any] = {"line": hex(event.line_addr)}
            for extra in ("occupancy", "latency", "level", "cause",
                          "writeback", "state"):
                value = getattr(event, extra, None)
                if value is not None:
                    args[extra] = value
            self._instant(
                event.cycle, event.core, f"coh:{event.kind}", args
            )

    def _end_span(
        self, key: Tuple[int, int, str], ts: int, cause: str
    ) -> None:
        span = self._open_spans.pop(key, None)
        if span is None:
            return
        core = key[0]
        self._events.append({
            "ph": "e", "id": span, "ts": ts, "pid": core,
            "tid": self._core_track(core),
            "name": f"{key[2]}-reservation", "cat": "reservation",
            "args": {"cause": cause},
        })

    def close(self) -> None:
        # Close any reservation still live at the end of the run so
        # the trace contains no dangling async begins.
        for key in list(self._open_spans):
            self._end_span(key, self._last_ts, "run_end")

    # -- output ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The complete Chrome trace-event document."""
        from repro import __version__

        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.perfetto",
                "version": __version__,
                "clock": "1 simulated cycle = 1us",
            },
        }

    def write(self, destination: Union[str, IO[str]]) -> None:
        """Serialize to ``destination`` (path or open text file)."""
        self.close()
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as fh:
                json.dump(self.to_dict(), fh)
        else:
            json.dump(self.to_dict(), destination)

    def __len__(self) -> int:
        return len(self._events)
