"""Standard sinks: in-memory aggregation and bounded JSONL capture.

:class:`MetricsSink` answers the calibration-debugging questions the
paper's analysis sections ask (why did a reservation die? how long do
links live? which thread burned the cycles?) without storing the raw
stream.  :class:`JsonlSink` stores the raw stream — bounded, one JSON
object per line — for ad-hoc analysis with standard tools.
"""

from __future__ import annotations

import json
import warnings
from collections import Counter, defaultdict
from typing import IO, Any, Dict, List, Optional, Tuple, Union

from repro.obs.bus import Sink
from repro.obs.events import (
    CacheHit,
    CacheMiss,
    ElementOutcome,
    Eviction,
    Invalidation,
    LineCombine,
    PROTOCOL_MESSAGES,
    ReservationLost,
    ReservationSet,
    Writeback,
    event_to_dict,
)

__all__ = ["MetricsSink", "JsonlSink"]


class MetricsSink(Sink):
    """Aggregates the event stream into attribution-grade metrics.

    * **Reservation lifetimes** — cycles between a GLSC link being set
      and destroyed (or consumed), as a power-of-two histogram plus
      exact totals, split by cause of death;
    * **Failure timelines** — per-cause GLSC element-failure lane
      counts bucketed by cycle window (``bucket`` cycles wide), so a
      contention burst is visible as a spike, not a final-total blur;
    * **Per-thread occupancy** — busy/sync cycles and instruction
      counts per hardware thread, from retired-instruction events;
    * **Hierarchy counters** — hits/misses by level, evictions,
      invalidations, writebacks, combining savings; these reproduce
      the matching :class:`~repro.sim.stats.MachineStats` counters
      exactly (asserted by tests).
    """

    def __init__(self, bucket: int = 1024) -> None:
        if bucket < 1:
            raise ValueError(f"bucket must be >= 1, got {bucket}")
        self.bucket = bucket
        # cache/coherence counters
        self.hits: Dict[str, int] = Counter()          # level -> count
        self.misses: Dict[str, int] = Counter()        # level -> count
        self.evictions = 0
        self.invalidations: Dict[str, int] = Counter()  # cause -> count
        self.writebacks: Dict[str, int] = Counter()     # reason -> count
        # coherence-seam traffic: message kind -> count (MSG_KINDS
        # vocabulary; mirrors CoherenceProtocol.counts when the sink
        # subscribes to the "protocol" category)
        self.protocol_traffic: Dict[str, int] = Counter()
        # GLSC / reservation attribution
        self.element_failures: Dict[str, int] = Counter()   # cause -> lanes
        self.element_successes: Dict[str, int] = Counter()  # op -> lanes
        self.lanes_saved_by_combining = 0
        self.reservation_deaths: Dict[str, int] = Counter()  # cause -> count
        self.failure_timeline: Dict[str, Dict[int, int]] = defaultdict(Counter)
        # lifetime tracking: (core, line) -> set cycle, for GLSC links
        self._live_links: Dict[Tuple[int, int], int] = {}
        self.lifetime_hist: Dict[str, Dict[int, int]] = defaultdict(Counter)
        self.lifetime_total: Dict[str, int] = Counter()
        self.lifetime_count: Dict[str, int] = Counter()
        # per-thread occupancy, from instr events
        self.thread_busy: Dict[int, int] = Counter()
        self.thread_sync: Dict[int, int] = Counter()
        self.thread_instructions: Dict[int, int] = Counter()
        self.events_seen = 0

    # -- event handling ----------------------------------------------------

    def on_event(self, event: Any) -> None:
        self.events_seen += 1
        handler = self._HANDLERS.get(type(event).__name__)
        if handler is not None:
            handler(self, event)

    def _on_instr(self, event: Any) -> None:
        self.thread_busy[event.thread] += event.latency
        self.thread_instructions[event.thread] += 1
        if event.sync:
            self.thread_sync[event.thread] += event.latency

    def _on_hit(self, event: CacheHit) -> None:
        self.hits[event.level] += 1

    def _on_miss(self, event: CacheMiss) -> None:
        self.misses[event.level] += 1

    def _on_eviction(self, event: Eviction) -> None:
        self.evictions += 1

    def _on_invalidation(self, event: Invalidation) -> None:
        self.invalidations[event.cause] += 1

    def _on_writeback(self, event: Writeback) -> None:
        self.writebacks[event.reason] += 1

    def _on_reservation_set(self, event: ReservationSet) -> None:
        if event.kind == "glsc":
            self._live_links[(event.core, event.line_addr)] = event.cycle

    def _on_reservation_lost(self, event: ReservationLost) -> None:
        self.reservation_deaths[event.cause] += 1
        if event.kind != "glsc":
            return
        born = self._live_links.pop((event.core, event.line_addr), None)
        if born is None:
            return
        age = max(event.cycle - born, 0)
        self.lifetime_hist[event.cause][age.bit_length()] += 1
        self.lifetime_total[event.cause] += age
        self.lifetime_count[event.cause] += 1

    def _on_element(self, event: ElementOutcome) -> None:
        if event.ok:
            self.element_successes[event.op] += event.lanes
        else:
            self.element_failures[event.cause] += event.lanes
            self.failure_timeline[event.cause][
                event.cycle // self.bucket
            ] += event.lanes

    def _on_combine(self, event: LineCombine) -> None:
        if event.sync:
            self.lanes_saved_by_combining += event.lanes_saved

    def _on_protocol(self, event: Any) -> None:
        self.protocol_traffic[event.kind] += 1

    _HANDLERS = {
        "TraceEvent": _on_instr,
        "CacheHit": _on_hit,
        "CacheMiss": _on_miss,
        "Eviction": _on_eviction,
        "Invalidation": _on_invalidation,
        "Writeback": _on_writeback,
        "ReservationSet": _on_reservation_set,
        "ReservationLost": _on_reservation_lost,
        "ElementOutcome": _on_element,
        "LineCombine": _on_combine,
    }
    for _msg in PROTOCOL_MESSAGES:
        _HANDLERS[_msg.__name__] = _on_protocol
    del _msg

    # -- queries ----------------------------------------------------------

    def mean_lifetime(self, cause: str) -> float:
        """Mean GLSC reservation age at death for ``cause`` (cycles)."""
        count = self.lifetime_count.get(cause, 0)
        if count == 0:
            return 0.0
        return self.lifetime_total[cause] / count

    def summary(self) -> Dict[str, Any]:
        """The headline aggregates as plain JSON-able data."""
        return {
            "events": self.events_seen,
            "l1_hits": self.hits.get("L1", 0),
            "l1_misses": self.misses.get("L1", 0),
            "l2_hits": self.hits.get("L2", 0),
            "l2_misses": self.misses.get("L2", 0),
            "evictions": self.evictions,
            "invalidations": dict(self.invalidations),
            "writebacks": dict(self.writebacks),
            "protocol_traffic": dict(self.protocol_traffic),
            "element_failures": dict(self.element_failures),
            "element_successes": dict(self.element_successes),
            "lanes_saved_by_combining": self.lanes_saved_by_combining,
            "reservation_deaths": dict(self.reservation_deaths),
            "mean_link_lifetime": {
                cause: self.mean_lifetime(cause)
                for cause in sorted(self.lifetime_count)
            },
            "thread_busy_cycles": dict(self.thread_busy),
            "thread_sync_cycles": dict(self.thread_sync),
        }

    def render(self) -> str:
        """Human-readable metrics report (harness ``profile`` output)."""
        lines = [f"events observed: {self.events_seen}"]
        if self.hits or self.misses:
            lines.append(
                f"L1 {self.hits.get('L1', 0)} hits / "
                f"{self.misses.get('L1', 0)} misses;  "
                f"L2 {self.hits.get('L2', 0)} hits / "
                f"{self.misses.get('L2', 0)} misses;  "
                f"{self.evictions} L1 evictions"
            )
        if self.invalidations or self.writebacks:
            inv = ", ".join(
                f"{cause}={n}" for cause, n in sorted(self.invalidations.items())
            )
            wb = ", ".join(
                f"{reason}={n}" for reason, n in sorted(self.writebacks.items())
            )
            lines.append(f"invalidations: {inv or '-'};  writebacks: {wb or '-'}")
        if self.protocol_traffic:
            traffic = ", ".join(
                f"{kind}={n}"
                for kind, n in sorted(self.protocol_traffic.items())
            )
            lines.append(f"protocol traffic: {traffic}")
        if self.element_failures or self.element_successes:
            ok = sum(self.element_successes.values())
            fails = ", ".join(
                f"{cause}={n}"
                for cause, n in sorted(self.element_failures.items())
            )
            lines.append(
                f"GLSC element lanes: {ok} ok;  failures: {fails or 'none'};  "
                f"{self.lanes_saved_by_combining} L1 accesses saved by "
                f"combining"
            )
        if self.lifetime_count:
            ages = ", ".join(
                f"{cause}={self.mean_lifetime(cause):.0f}cyc"
                for cause in sorted(self.lifetime_count)
            )
            lines.append(f"mean link lifetime by cause of death: {ages}")
        if self.thread_busy:
            top = sorted(
                self.thread_busy.items(), key=lambda kv: -kv[1]
            )[:8]
            occ = ", ".join(f"t{tid}={busy}" for tid, busy in top)
            lines.append(f"busiest threads (occupied cycles): {occ}")
        return "\n".join(lines)


class JsonlSink(Sink):
    """Writes events as newline-delimited JSON, bounded by ``limit``.

    Once ``limit`` events are written, further events only increment
    :attr:`dropped` — the file stays a prefix of the stream, like
    :class:`~repro.sim.trace.InstructionTrace`'s event list.  The
    first dropped event emits a one-time :class:`RuntimeWarning` (a
    truncated dump silently passing for a complete one is exactly the
    kind of observability gap this layer exists to close);
    :meth:`summary` reports the written/dropped totals and the CLI
    prints it after every ``trace --jsonl`` run.
    """

    def __init__(
        self, destination: Union[str, IO[str]], limit: Optional[int] = None
    ) -> None:
        if isinstance(destination, str):
            self._fh: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = destination
            self._owns_fh = False
        self.limit = limit
        self.written = 0
        self.dropped = 0

    def on_event(self, event: Any) -> None:
        if self.limit is not None and self.written >= self.limit:
            if self.dropped == 0:
                warnings.warn(
                    f"JsonlSink hit its {self.limit}-event bound; "
                    "further events are dropped (the file is a prefix "
                    "of the stream, not the whole run)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self.dropped += 1
            return
        json.dump(event_to_dict(event), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.written += 1

    def summary(self) -> str:
        """One-line accounting of what made it to disk."""
        bound = "unbounded" if self.limit is None else f"limit {self.limit}"
        return (
            f"jsonl: {self.written} events written, "
            f"{self.dropped} dropped ({bound})"
        )

    def close(self) -> None:
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()
