"""Distributed sweep tracing: lifecycle spans + worker heartbeats.

A sweep crossing the service (``POST /v1/sweep`` → queue → N worker
processes → store → streamed back) has no single process that saw the
whole story.  This module gives it one: every participant appends
*span records* — ``{trace_id, digest, phase, ts, actor, pid, host}``
— to its own O_APPEND sidecar under ``<queue>/spans/``, and
:func:`collect_spans` merges them afterwards into one timeline that
:class:`~repro.obs.perfetto.SweepTraceExporter` renders as a single
Chrome trace (workers as process tracks; see ``repro sweep-trace``).

Phases, in lifecycle order::

    submitted -> enqueued -> claimed -> simulated -> saved -> streamed

(``requeued``/``nacked``/``poisoned`` may interleave on unhappy
paths.)  The ``trace_id`` is minted per sweep submission (server or
executor), rides in every queue payload, and lands in the stored
record's provenance — so a number in the store names the drain that
produced it.

Workers also drop *heartbeat* files (``<queue>/workers/<id>.json``,
atomic replace) carrying their live counter snapshot; the server's
``/v1/metrics`` merges them into per-worker series, which is how one
scrape shows claims/acks across processes that share nothing but the
queue directory.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "PHASES",
    "new_trace_id",
    "SpanLog",
    "collect_spans",
    "write_heartbeat",
    "read_heartbeats",
    "SPANS_DIRNAME",
    "WORKERS_DIRNAME",
]

#: Lifecycle phases in canonical order (unhappy-path phases excluded).
PHASES = (
    "submitted", "enqueued", "claimed", "simulated", "saved", "streamed",
)

SPANS_DIRNAME = "spans"
WORKERS_DIRNAME = "workers"


def new_trace_id() -> str:
    """A fresh sweep-scoped trace id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


def _sanitize(actor: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in actor
    ) or "anon"


class SpanLog:
    """Appends one actor's span records to its sidecar (crash-safe).

    One JSON line per record via a single ``os.write`` on an
    ``O_APPEND`` descriptor — same contract as the store's index
    journal: concurrent actors each own their file, a crash can at
    worst tear the final line, and :func:`collect_spans` skips torn
    lines.  Never raises: tracing must not take a worker down.
    """

    def __init__(self, queue_root: Path, actor: str) -> None:
        self.actor = actor
        self.path = (
            Path(queue_root) / SPANS_DIRNAME / f"{_sanitize(actor)}.jsonl"
        )
        self._pid = os.getpid()
        self._host = platform.node()

    def record(
        self,
        phase: str,
        digest: str,
        trace_id: str = "",
        **extra: Any,
    ) -> None:
        entry = {
            "ts": time.time(),
            "phase": phase,
            "digest": digest,
            "trace_id": trace_id,
            "actor": self.actor,
            "pid": self._pid,
            "host": self._host,
            **extra,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            line = json.dumps(entry, sort_keys=True) + "\n"
            fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            pass


def collect_spans(
    queue_root: Path, trace_id: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Every span record under ``<queue>/spans/``, sorted by time.

    ``trace_id`` filters to one sweep; torn/unparsable lines are
    skipped (a live actor may be mid-append).
    """
    spans_dir = Path(queue_root) / SPANS_DIRNAME
    records: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(spans_dir))
    except OSError:
        return records
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        try:
            with open(spans_dir / name, encoding="utf-8") as fh:
                for line in fh:
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(entry, dict) or "phase" not in entry:
                        continue
                    if trace_id and entry.get("trace_id") != trace_id:
                        continue
                    records.append(entry)
        except OSError:
            continue
    records.sort(key=lambda r: (r.get("ts", 0.0), r.get("digest", "")))
    return records


# -- worker heartbeats -----------------------------------------------------

def write_heartbeat(
    queue_root: Path, worker_id: str, counters: Dict[str, Any]
) -> None:
    """Atomically publish one worker's live counter snapshot.

    ``<queue>/workers/<worker_id>.json`` is replaced whole (mkstemp +
    ``os.replace``), so readers never see a torn heartbeat.  Best
    effort: a failed write never raises into the drain loop.
    """
    workers_dir = Path(queue_root) / WORKERS_DIRNAME
    payload = {
        "worker_id": worker_id,
        "pid": os.getpid(),
        "host": platform.node(),
        "ts": time.time(),
        **counters,
    }
    try:
        workers_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(workers_dir), prefix=".hb.", suffix=".tmp"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(
            tmp_name, workers_dir / f"{_sanitize(worker_id)}.json"
        )
    except OSError:
        pass


def read_heartbeats(
    queue_root: Path, max_age_s: Optional[float] = None
) -> List[Dict[str, Any]]:
    """Every worker heartbeat under the queue dir (newest-write wins).

    ``max_age_s`` drops heartbeats older than that — the distinction
    between "workers this drain ever had" (None) and "workers alive
    right now".  Each returned dict gains an ``age_s`` field.
    """
    workers_dir = Path(queue_root) / WORKERS_DIRNAME
    now = time.time()
    out: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(workers_dir))
    except OSError:
        return out
    for name in names:
        if not name.endswith(".json") or name.startswith("."):
            continue
        try:
            with open(workers_dir / name, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            continue
        if not isinstance(entry, dict) or "worker_id" not in entry:
            continue
        try:
            # A torn or hand-edited file can hold a non-numeric ts;
            # treat it like any other unreadable heartbeat.
            age = now - float(entry.get("ts", 0.0) or 0.0)
        except (TypeError, ValueError):
            continue
        if max_age_s is not None and age > max_age_s:
            continue
        entry["age_s"] = age
        out.append(entry)
    return out
