"""Run-level telemetry and provenance for the executor layer.

Where :mod:`repro.obs.events` watches *inside* a simulation,
telemetry watches the run itself: how long one spec took on the wall
clock, what simulation throughput that is, which worker ran it, and
whether the result was simulated fresh or served from the memo /
on-disk store.  The :class:`~repro.sim.executor.Executor` records one
:class:`RunTelemetry` per spec it serves; the harness surfaces them
with ``--telemetry`` and the ``profile`` subcommand, and the
:class:`~repro.sim.store.ResultStore` persists them (plus
:func:`run_provenance`) next to each cached result so stored numbers
stay auditable.
"""

from __future__ import annotations

import os
import platform
import time
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Iterable, List

__all__ = ["RunTelemetry", "run_provenance", "render_telemetry"]

#: How a result was obtained.  ``queue`` means a detached service
#: worker simulated it and the executor collected it from the shared
#: store (the ``queue://`` backend); ``batch`` means it was simulated
#: fresh in-process alongside other specs by the batched backend
#: (:mod:`repro.sim.batch`).
SOURCES = ("simulated", "memo", "store", "queue", "batch")


@dataclass
class RunTelemetry:
    """One spec's execution record (reporting, not measurement)."""

    label: str
    digest: str
    source: str            # one of SOURCES
    cycles: int = 0
    instructions: int = 0
    wall_time_s: float = 0.0
    worker_pid: int = 0
    worker_host: str = ""  # host that simulated it ("" = this one)
    created: float = 0.0   # unix timestamp
    trace_id: str = ""     # sweep trace this run belonged to ("" = none)
    batch_id: str = ""     # batch this run was simulated in ("" = solo)
    batch_occupancy: int = 0  # specs sharing that batch (0 = solo)

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per wall-clock second (hot-path health)."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.cycles / self.wall_time_s

    @property
    def sim_khz(self) -> float:
        """Simulated kilocycles per wall-clock second.

        The headline throughput unit: a 100 sim_khz simulator retires
        100k simulated cycles per real second.
        """
        return self.cycles_per_second / 1e3

    @property
    def instr_per_sec(self) -> float:
        """Simulated instructions retired per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.instructions / self.wall_time_s

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["cycles_per_second"] = self.cycles_per_second
        out["sim_khz"] = self.sim_khz
        out["instr_per_sec"] = self.instr_per_sec
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunTelemetry":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def run_provenance(wall_time_s: float) -> Dict[str, Any]:
    """Audit fields stored with every fresh result (satellite of the
    store schema: version is recorded separately by the store itself).

    With the store now shared between hosts by the sweep service,
    every record carries *who* produced it: ``host`` (the machine) and
    ``worker_id`` (the service worker's name, from ``REPRO_WORKER_ID``
    when running under ``repro worker``; ``""`` for plain executors).
    The worker additionally stamps the sweep's ``trace_id`` into the
    provenance it saves (see :mod:`repro.obs.sweeptrace`), so a stored
    number names the distributed drain that produced it.
    """
    from repro import __version__

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host": platform.node(),
        "worker_id": os.environ.get("REPRO_WORKER_ID", ""),
        "wall_time_s": wall_time_s,
        "worker_pid": os.getpid(),
        "created": time.time(),
    }


def render_telemetry(entries: Iterable[RunTelemetry]) -> str:
    """Fixed-width telemetry table (harness ``--telemetry`` output)."""
    rows: List[RunTelemetry] = list(entries)
    lines = [
        f"{'spec':44s} {'source':>9s} {'cycles':>10s} "
        f"{'wall(s)':>8s} {'cyc/s':>12s} {'pid':>7s}"
    ]
    for t in rows:
        lines.append(
            f"{t.label[:44]:44s} {t.source:>9s} {t.cycles:10d} "
            f"{t.wall_time_s:8.3f} {t.cycles_per_second:12.0f} "
            f"{t.worker_pid:7d}"
        )
    simulated = [t for t in rows if t.source in ("simulated", "batch")]
    total_wall = sum(t.wall_time_s for t in simulated)
    total_cycles = sum(t.cycles for t in simulated)
    lines.append(
        f"{len(rows)} specs ({len(simulated)} simulated, "
        f"{len(rows) - len(simulated)} cached); "
        f"{total_cycles} fresh cycles in {total_wall:.2f}s wall"
        + (
            f" ({total_cycles / total_wall:.0f} cyc/s)"
            if total_wall > 0
            else ""
        )
    )
    return "\n".join(lines)
