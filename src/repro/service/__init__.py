"""Sweep service: the executor/store pair as a multi-host backend.

The run layer already makes every simulation a content-addressed
value (:class:`~repro.sim.executor.RunSpec` digests keying a
:class:`~repro.sim.store.ResultStore`).  This package promotes that
pair into an always-on service:

* :class:`~repro.service.queue.WorkQueue` — a file-based work queue
  (``queue://<dir>``) with atomic-rename claims and lease/requeue-on-
  timeout semantics, so N independent worker processes drain one
  sweep and stragglers are retried;
* :mod:`~repro.service.worker` — the ``repro worker`` drain loop:
  claim, simulate, persist to the shared store, acknowledge;
* :class:`~repro.service.server.SweepServer` — a stdlib-only asyncio
  HTTP frontend (``repro serve``) answering spec-digest queries from
  the store, enqueueing misses, and streaming batched results;
* :class:`~repro.service.client.SweepClient` — a typed client that
  submits a :class:`~repro.sim.executor.Sweep`, polls, streams, and
  reconstructs :class:`~repro.sim.stats.MachineStats` identically to
  a local run.

Determinism is the contract that makes this safe: a spec's result is
a pure function of its digest, so any worker on any host produces the
same record (byte-identical apart from provenance), racing writers
are harmless, and a warm store answers without simulating.
"""

from repro.service.client import SweepClient
from repro.service.queue import WorkQueue, parse_queue_url
from repro.service.server import SweepServer
from repro.service.worker import worker_loop

__all__ = [
    "SweepClient",
    "SweepServer",
    "WorkQueue",
    "parse_queue_url",
    "worker_loop",
]
