"""Typed client for the sweep service (``repro serve``).

:class:`SweepClient` speaks the small JSON protocol of
:class:`~repro.service.server.SweepServer` with nothing beyond
``http.client``: submit a :class:`~repro.sim.executor.Sweep`, poll
its digests, stream batched results, and reconstruct
``{RunSpec: MachineStats}`` exactly as a local
:meth:`~repro.sim.executor.Executor.run_sweep` would — the stats
objects compare equal field-for-field, which the service tests
assert.

Example::

    from repro import Sweep, SweepClient

    client = SweepClient("http://127.0.0.1:8787")
    sweep = Sweep.product(kernels=("tms", "hip"), datasets=("A",))
    stats = client.run_sweep(sweep)        # blocks until drained
    print(stats[next(iter(sweep))].cycles)
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigError, SimulationError
from repro.sim.stats import MachineStats

__all__ = ["SweepClient", "SweepHandle", "ServiceError"]


class ServiceError(SimulationError):
    """The service answered with an error, or not at all."""


@dataclass
class SweepHandle:
    """A submitted sweep: input specs and their resolved digests."""

    specs: List[Any] = field(default_factory=list)   # RunSpec, input order
    digests: List[str] = field(default_factory=list)  # aligned with specs
    hits: int = 0
    enqueued: int = 0
    pending: int = 0
    trace_ids: List[str] = field(default_factory=list)  # one per batch

    @property
    def trace_id(self) -> str:
        """The sweep's trace id (first batch's, the common case)."""
        return self.trace_ids[0] if self.trace_ids else ""

    @property
    def digest_of(self) -> Dict[Any, str]:
        return dict(zip(self.specs, self.digests))

    @property
    def distinct_digests(self) -> List[str]:
        return list(dict.fromkeys(self.digests))


class SweepClient:
    """HTTP client over one sweep service endpoint."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8787",
        timeout_s: float = 30.0,
        batch: int = 500,
    ) -> None:
        if base_url.startswith("http://"):
            netloc = base_url[len("http://"):]
        elif "://" in base_url:
            raise ConfigError(
                f"unsupported service URL {base_url!r} (http:// only)"
            )
        else:
            netloc = base_url
        netloc = netloc.rstrip("/")
        host, _, port = netloc.partition(":")
        if not host:
            raise ConfigError(f"service URL {base_url!r} names no host")
        self.host = host
        self.port = int(port) if port else 80
        self.timeout_s = timeout_s
        self.batch = max(1, batch)

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, http.client.HTTPResponse, http.client.HTTPConnection]:
        """One request; the caller must close the returned connection."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        body = None
        headers = {"Connection": "close"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        except OSError as exc:
            conn.close()
            raise ServiceError(
                f"sweep service at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        return response.status, response, conn

    def _request_json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        allow: Tuple[int, ...] = (200,),
    ) -> Tuple[int, Any]:
        status, response, conn = self._request(method, path, payload)
        try:
            raw = response.read()
        finally:
            conn.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError as exc:
            raise ServiceError(
                f"non-JSON response from {path} (status {status})"
            ) from exc
        if status not in allow:
            raise ServiceError(
                f"{method} {path} -> {status}: {decoded}"
            )
        return status, decoded

    # -- protocol --------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The server's ``/healthz`` document (raises if unreachable)."""
        return self._request_json("GET", "/healthz")[1]

    def record(self, digest: str) -> Optional[Dict[str, Any]]:
        """The full store record for a digest, or None on a miss."""
        status, decoded = self._request_json(
            "GET", f"/v1/result/{digest}", allow=(200, 404)
        )
        return decoded if status == 200 else None

    def result(self, digest: str) -> Optional[MachineStats]:
        """Stats for a digest the store already holds, else None."""
        record = self.record(digest)
        if record is None:
            return None
        return MachineStats.from_dict(record["stats"])

    def metrics(self) -> Dict[str, Any]:
        """The server's ``/v1/metrics`` JSON view (registry + workers)."""
        return self._request_json("GET", "/v1/metrics?format=json")[1]

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition from ``/v1/metrics``."""
        status, response, conn = self._request("GET", "/v1/metrics")
        try:
            raw = response.read()
        finally:
            conn.close()
        if status != 200:
            raise ServiceError(f"GET /v1/metrics -> {status}")
        return raw.decode("utf-8")

    def submit(
        self, sweep: Union["Sweep", Any], trace_id: str = ""
    ) -> SweepHandle:
        """Submit every spec of a sweep; misses are enqueued server-side.

        Accepts a :class:`~repro.sim.executor.Sweep` or any iterable
        of specs.  Large sweeps are submitted in client-side batches.
        ``trace_id`` pins the sweep's trace; left blank, the server
        mints one per batch (``handle.trace_id`` reports the first).
        """
        specs = list(sweep)
        handle = SweepHandle(specs=specs)
        for start in range(0, len(specs), self.batch):
            group = specs[start:start + self.batch]
            payload: Dict[str, Any] = {
                "specs": [spec.to_dict() for spec in group],
            }
            if trace_id:
                payload["trace_id"] = trace_id
            _, decoded = self._request_json(
                "POST", "/v1/sweep", payload
            )
            handle.digests.extend(decoded["digests"])
            handle.hits += decoded["hits"]
            handle.enqueued += decoded["enqueued"]
            handle.pending += decoded["pending"]
            handle.trace_ids.append(str(decoded.get("trace_id", "")))
        return handle

    def status(self, handle: SweepHandle) -> Dict[str, Any]:
        """Aggregate done/pending split for a submitted sweep."""
        total = done = 0
        pending: List[str] = []
        digests = handle.distinct_digests
        for start in range(0, len(digests), self.batch):
            _, decoded = self._request_json(
                "POST", "/v1/status",
                {"digests": digests[start:start + self.batch]},
            )
            total += decoded["total"]
            done += decoded["done"]
            pending.extend(decoded["pending"])
        return {"total": total, "done": done, "pending": pending}

    def stream_records(
        self, digests: List[str]
    ) -> Iterator[Dict[str, Any]]:
        """Yield available store records for ``digests`` as they stream.

        Digests the store does not hold yet are silently absent —
        callers poll and re-request (as :meth:`run_sweep` does).
        """
        for start in range(0, len(digests), self.batch):
            group = digests[start:start + self.batch]
            status, response, conn = self._request(
                "POST", "/v1/results", {"digests": group}
            )
            try:
                if status != 200:
                    raise ServiceError(
                        f"POST /v1/results -> {status}: "
                        f"{response.read()[:200]!r}"
                    )
                for line in response:  # http.client de-chunks for us
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
            finally:
                conn.close()

    # -- the high-level verb --------------------------------------------

    def run_sweep(
        self,
        sweep: Union["Sweep", Any],
        poll_s: float = 0.5,
        timeout_s: Optional[float] = 600.0,
    ) -> Dict[Any, MachineStats]:
        """Submit, wait for workers to drain, return ``{spec: stats}``.

        The mapping is keyed by the *input* specs (like
        :meth:`Executor.run_sweep`), duplicates and digest-sharing
        spellings included.  Raises :class:`ServiceError` when the
        deadline passes with results still missing — e.g. no worker is
        draining the queue.
        """
        handle = self.submit(sweep)
        deadline = (
            None if timeout_s is None
            else time.monotonic() + timeout_s
        )
        stats_of: Dict[str, MachineStats] = {}
        remaining = set(handle.distinct_digests)
        while remaining:
            for record in self.stream_records(sorted(remaining)):
                digest = record["digest"]
                stats_of[digest] = MachineStats.from_dict(record["stats"])
                remaining.discard(digest)
            if not remaining:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"sweep not drained before timeout: {len(remaining)}"
                    f"/{len(handle.distinct_digests)} results missing "
                    "(are any workers running?)"
                )
            time.sleep(poll_s)
        return {
            spec: stats_of[digest]
            for spec, digest in zip(handle.specs, handle.digests)
        }
