"""File-based work queue with lease/requeue-on-timeout semantics.

One queue directory is the rendezvous for a whole sweep: any number
of submitters enqueue :class:`~repro.sim.executor.RunSpec` payloads,
any number of ``repro worker`` processes (on any host sharing the
filesystem) drain them.  No daemon owns the queue — every mutation is
a single atomic filesystem operation, so crashed participants never
wedge it.

Layout::

    <root>/
      pending/<digest>.json          submitted, unclaimed tasks
      leased/<digest>.<nonce>.json   claimed tasks, with lease metadata
      spans/<actor>.jsonl            sweep-trace sidecars (see
                                     :mod:`repro.obs.sweeptrace`)
      workers/<worker_id>.json       worker heartbeat snapshots

A task's payload is its spec (plus the digest, submission time, and —
for traced sweeps — the sweep's trace id).  :meth:`WorkQueue.submit_many`
additionally publishes *batch* files (``batch-<sha>.json``) carrying up
to N specs each; a batch claims/acks/nacks/requeues as one unit, and
workers drain it through one in-process
:class:`~repro.sim.batch.BatchRunner` instead of N solo simulations.
The ``queue_batch_size`` histogram records specs-per-file either way.
The state machine:

* **submit** — atomic publish into ``pending/`` (temp file +
  ``os.replace``).  Submitting a digest that is already pending or
  leased is a no-op, so many clients can submit overlapping sweeps.
* **claim** — ``os.rename(pending/<d>.json, leased/<d>.<nonce>.json)``.
  Rename is atomic and fails for every process but one, so a task can
  never be claimed twice; the winner then rewrites the leased file
  with its identity and a lease deadline.
* **ack** — the worker persisted the result to the shared store;
  unlink the leased file.  The store write happens *before* the ack,
  so a crash between the two leaves a lease that expires and requeues
  — the re-run produces a value-equal record (simulations are
  deterministic), which the next worker skips via the store check.
* **requeue** — anyone (workers between claims, the server on a
  timer, the executor while polling) may call
  :meth:`WorkQueue.requeue_expired`: leased files whose deadline
  passed are renamed back into ``pending/``.  The nonce in the leased
  filename keeps a straggler's late ``ack`` from deleting a lease now
  held by the replacement worker.

Telemetry: every transition bumps a ``queue_tasks_total{op=...}``
counter in the queue's :class:`~repro.obs.metrics.MetricsRegistry`
(submitted/claimed/acked/nacked/requeued/poisoned), and
:meth:`WorkQueue.counts` serves pending/leased depths from
registry-backed tallies maintained incrementally by this instance's
own operations — refreshed by a directory scan at most once per
``counts_ttl_s`` (other processes mutate the same directories), or on
demand with ``counts(verify=True)`` / :meth:`verify_counts`, the
``--verify`` cross-check.  When an :class:`~repro.obs.bus.EventBus`
is attached (``obs=``), transitions additionally emit
:class:`~repro.obs.events.TaskPhase` events behind the standard
``wants_service`` zero-allocation guard.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Collection,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigError
from repro.obs.log import NULL_LOGGER, StructLogger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.sweeptrace import SpanLog
from repro.sim.executor import RunSpec

__all__ = ["Task", "WorkQueue", "parse_queue_url", "DEFAULT_LEASE_S"]

#: How long a claim holds a task before anyone may requeue it.
DEFAULT_LEASE_S = 120.0

#: How long cached queue depths are served before a rescan (seconds).
DEFAULT_COUNTS_TTL_S = 1.0

#: URL scheme selecting this backend (``queue:///abs`` or ``queue://rel``).
QUEUE_SCHEME = "queue://"


def parse_queue_url(url: str) -> Path:
    """The directory a ``queue://<dir>`` backend URL names."""
    if not url.startswith(QUEUE_SCHEME):
        raise ConfigError(
            f"unsupported backend URL {url!r} (expected {QUEUE_SCHEME}<dir>)"
        )
    root = url[len(QUEUE_SCHEME):]
    if not root:
        raise ConfigError(f"backend URL {url!r} names no directory")
    return Path(root)


@dataclass(frozen=True)
class Task:
    """One claimed unit of work (hold it only between claim and ack).

    A task is normally one spec; :meth:`WorkQueue.submit_many` also
    publishes *batch* tasks — one queue file carrying several specs —
    in which case :attr:`members` lists every ``(digest, spec)`` pair
    (in submission order), :attr:`digest` is the batch's content id
    (``batch-<sha>``), and :attr:`spec` echoes the first member for
    display.  Batches claim, ack, nack, and requeue as one unit.
    """

    digest: str
    spec: RunSpec
    lease_path: Path
    trace_id: str = ""  # sweep trace the submitter threaded through
    members: Tuple[Tuple[str, RunSpec], ...] = ()

    @property
    def is_batch(self) -> bool:
        return bool(self.members)


class WorkQueue:
    """Shared-directory task queue of :class:`RunSpec` payloads."""

    def __init__(
        self,
        root: Path,
        lease_s: float = DEFAULT_LEASE_S,
        metrics: Optional[MetricsRegistry] = None,
        logger: Optional[StructLogger] = None,
        obs: Optional[Any] = None,
        counts_ttl_s: float = DEFAULT_COUNTS_TTL_S,
    ) -> None:
        if lease_s <= 0:
            raise ConfigError(f"lease_s must be > 0, got {lease_s}")
        self.root = Path(root)
        self.lease_s = lease_s
        self.pending_dir = self.root / "pending"
        self.leased_dir = self.root / "leased"
        self._nonce = 0
        self.metrics = metrics if metrics is not None else get_registry()
        self.logger = (logger or NULL_LOGGER).bind(queue=str(self.root))
        self.obs = obs
        self.counts_ttl_s = counts_ttl_s
        self._tasks_total = self.metrics.counter(
            "queue_tasks_total",
            "Queue state transitions by operation",
            labelnames=("op",),
        )
        self._pending_gauge = self.metrics.gauge(
            "queue_pending_depth", "Unclaimed tasks in the queue",
            labelnames=("queue",),
        )
        self._leased_gauge = self.metrics.gauge(
            "queue_leased_depth", "Claimed (leased) tasks in the queue",
            labelnames=("queue",),
        )
        self._batch_size_hist = self.metrics.histogram(
            "queue_batch_size",
            "Specs per submitted queue file (1 = unbatched)",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        )
        # Instance-local depth cache: None until the first scan; then
        # maintained incrementally by this instance's own transitions
        # and refreshed by TTL (other processes share the directory).
        self._depth: Optional[Dict[str, int]] = None
        self._scanned_at = 0.0
        self._span_log: Optional[SpanLog] = None

    @classmethod
    def from_url(
        cls, url: str, lease_s: float = DEFAULT_LEASE_S, **kwargs: Any
    ) -> "WorkQueue":
        """Construct from a ``queue://<dir>`` backend URL."""
        return cls(parse_queue_url(url), lease_s=lease_s, **kwargs)

    # -- telemetry plumbing ----------------------------------------------

    def _count(self, op: str, pending_delta: int, leased_delta: int) -> None:
        """One transition: bump the op counter, track the depths."""
        self._tasks_total.inc(op=op)
        if self._depth is not None:
            self._depth["pending"] = max(
                0, self._depth["pending"] + pending_delta
            )
            self._depth["leased"] = max(
                0, self._depth["leased"] + leased_delta
            )
            self._publish_depth()

    def _publish_depth(self) -> None:
        if self._depth is not None:
            queue = str(self.root)
            self._pending_gauge.set(self._depth["pending"], queue=queue)
            self._leased_gauge.set(self._depth["leased"], queue=queue)

    def _phase(
        self, phase: str, digest: str, actor: str, trace_id: str
    ) -> None:
        obs = self.obs
        if obs is not None and obs.wants_service:
            from repro.obs.events import TaskPhase

            obs.emit(TaskPhase(
                ts=time.time(), digest=digest, phase=phase,
                actor=actor, trace_id=trace_id,
            ))

    def span_log(self, actor: str = "queue") -> SpanLog:
        """The sweep-trace sidecar writer for ``actor`` in this queue."""
        if self._span_log is None or self._span_log.actor != actor:
            self._span_log = SpanLog(self.root, actor)
        return self._span_log

    # -- submit ----------------------------------------------------------

    def submit(
        self,
        spec: RunSpec,
        digest: Optional[str] = None,
        trace_id: str = "",
    ) -> bool:
        """Enqueue one spec; False if its digest is already in flight.

        ``digest`` may be passed to spare re-hashing when the caller
        (the executor, the server) already resolved it.  ``trace_id``
        threads a sweep-scoped trace through the payload: claimed
        tasks carry it, the worker stamps it into the stored record's
        provenance, and an ``enqueued`` span lands in the queue's
        trace sidecar (see :mod:`repro.obs.sweeptrace`).
        """
        digest = digest or spec.digest()
        if self._in_flight(digest):
            return False
        self.pending_dir.mkdir(parents=True, exist_ok=True)
        self.leased_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "digest": digest,
            "spec": spec.to_dict(),
            "enqueued": time.time(),
        }
        if trace_id:
            payload["trace"] = {"id": trace_id}
        self._publish_pending(digest, payload)
        self._count("submitted", +1, 0)
        self._batch_size_hist.observe(1.0)
        self.logger.debug("submit", digest=digest[:12], trace_id=trace_id)
        self._phase("enqueued", digest, "queue", trace_id)
        if trace_id:
            self.span_log().record("enqueued", digest, trace_id)
        return True

    def _publish_pending(self, digest: str, payload: Dict[str, Any]) -> None:
        """Atomically land one payload as ``pending/<digest>.json``."""
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.pending_dir), prefix=f".{digest[:12]}.",
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp_name, self.pending_dir / f"{digest}.json")
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def submit_many(
        self,
        specs: Sequence[RunSpec],
        batch_size: int,
        digests: Optional[Sequence[str]] = None,
        trace_id: str = "",
    ) -> int:
        """Enqueue specs as batch files of up to ``batch_size`` each.

        One queue file per group keeps the filesystem traffic (and the
        claim/ack round-trips) at ``N / batch_size`` instead of ``N``,
        and lets the claiming worker drain the whole group through one
        :class:`~repro.sim.batch.BatchRunner`.  A group of one falls
        back to a plain :meth:`submit` so singletons keep the classic
        shape.  The batch digest (``batch-<sha>`` over the member
        digests) keys the file; resubmitting an identical group while
        it is pending or leased is a no-op, mirroring :meth:`submit`.
        ``digests`` optionally provides pre-computed member digests
        (parallel to ``specs``).  Returns how many *specs* were newly
        queued.
        """
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        specs = list(specs)
        if digests is None:
            digests = [spec.digest() for spec in specs]
        else:
            digests = list(digests)
            if len(digests) != len(specs):
                raise ConfigError(
                    f"{len(digests)} digests for {len(specs)} specs"
                )
        queued = 0
        for base in range(0, len(specs), batch_size):
            group = list(zip(digests[base:base + batch_size],
                             specs[base:base + batch_size]))
            if len(group) == 1:
                digest, spec = group[0]
                if self.submit(spec, digest=digest, trace_id=trace_id):
                    queued += 1
                continue
            batch_digest = "batch-" + hashlib.sha256(
                "".join(digest for digest, _ in group).encode("utf-8")
            ).hexdigest()[:40]
            if self._in_flight(batch_digest):
                continue
            self.pending_dir.mkdir(parents=True, exist_ok=True)
            self.leased_dir.mkdir(parents=True, exist_ok=True)
            payload: Dict[str, Any] = {
                "digest": batch_digest,
                "batch": [
                    {"digest": digest, "spec": spec.to_dict()}
                    for digest, spec in group
                ],
                "enqueued": time.time(),
            }
            if trace_id:
                payload["trace"] = {"id": trace_id}
            self._publish_pending(batch_digest, payload)
            queued += len(group)
            self._count("submitted", +1, 0)
            self._batch_size_hist.observe(float(len(group)))
            self.logger.debug(
                "submit-batch", digest=batch_digest[:18],
                size=len(group), trace_id=trace_id,
            )
            self._phase("enqueued", batch_digest, "queue", trace_id)
            if trace_id:
                for digest, _ in group:
                    self.span_log().record("enqueued", digest, trace_id)
        return queued

    def submit_sweep(
        self, specs: Iterable[RunSpec], trace_id: str = ""
    ) -> int:
        """Enqueue every spec; returns how many were newly queued."""
        return sum(
            1 for spec in specs if self.submit(spec, trace_id=trace_id)
        )

    def _in_flight(self, digest: str) -> bool:
        if (self.pending_dir / f"{digest}.json").exists():
            return True
        return any(self.leased_dir.glob(f"{digest}.*.json"))

    # -- claim / ack -----------------------------------------------------

    def claim(
        self,
        worker_id: str = "",
        exclude: Collection[str] = (),
    ) -> Optional[Task]:
        """Atomically take one pending task, or None if none remain.

        The rename is the claim; losing a race for one task just moves
        on to the next.  The winner stamps the leased file with its
        identity and deadline (sweepers fall back to the file's mtime
        if that rewrite never lands).  ``exclude`` digests are skipped
        without claiming — workers pass the specs they already failed,
        so a poison task stays pending for *other* workers instead of
        livelocking this one (pending tasks sort stably, so a nacked
        task would otherwise be the very next claim again).
        """
        try:
            candidates = sorted(os.listdir(self.pending_dir))
        except OSError:
            return None
        for name in candidates:
            if not name.endswith(".json") or name.startswith("."):
                continue
            digest = name[: -len(".json")]
            if digest in exclude:
                continue
            self._nonce += 1
            nonce = f"{os.getpid()}-{self._nonce}-{time.time_ns() % 10**9}"
            lease_path = self.leased_dir / f"{digest}.{nonce}.json"
            try:
                os.rename(self.pending_dir / name, lease_path)
            except OSError:
                continue  # someone else won this task
            task = self._load_task(digest, lease_path)
            if task is None:
                # Unreadable payload: drop the lease rather than loop
                # on a poison task forever.
                try:
                    os.unlink(lease_path)
                except OSError:
                    pass
                self._count("poisoned", -1, 0)
                self.logger.warning(
                    "poison-drop", digest=digest[:12], worker_id=worker_id
                )
                self._phase("poisoned", digest, worker_id or "queue", "")
                continue
            self._stamp_lease(task, worker_id)
            self._count("claimed", -1, +1)
            self.logger.debug(
                "claim", digest=digest[:12], worker_id=worker_id,
                trace_id=task.trace_id,
            )
            self._phase(
                "claimed", digest, worker_id or "queue", task.trace_id
            )
            return task
        return None

    def _load_task(self, digest: str, path: Path) -> Optional[Task]:
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            trace_id = str((payload.get("trace") or {}).get("id", ""))
            if "batch" in payload:
                members = tuple(
                    (str(entry["digest"]), RunSpec.from_dict(entry["spec"]))
                    for entry in payload["batch"]
                )
                if not members:
                    return None
                return Task(
                    digest=digest, spec=members[0][1], lease_path=path,
                    trace_id=trace_id, members=members,
                )
            spec = RunSpec.from_dict(payload["spec"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None
        return Task(
            digest=digest, spec=spec, lease_path=path, trace_id=trace_id
        )

    def _stamp_lease(self, task: Task, worker_id: str) -> None:
        """Rewrite the leased file with holder identity + deadline."""
        import platform

        payload: Dict[str, Any] = {
            "digest": task.digest,
            "lease": {
                "worker_id": worker_id,
                "host": platform.node(),
                "pid": os.getpid(),
                "claimed": time.time(),
                "deadline": time.time() + self.lease_s,
            },
        }
        if task.members:
            # A batch lease must keep its member list: an expired
            # lease renames back to pending, and the next claimer
            # re-reads the payload.
            payload["batch"] = [
                {"digest": digest, "spec": spec.to_dict()}
                for digest, spec in task.members
            ]
        else:
            payload["spec"] = task.spec.to_dict()
        if task.trace_id:
            payload["trace"] = {"id": task.trace_id}
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.leased_dir), prefix=".lease.", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp_name, task.lease_path)
        except OSError:
            pass

    def ack(self, task: Task) -> None:
        """Mark a claimed task done (call only after the store save).

        A missing lease file means the lease expired and the task was
        requeued; that is not an error — the result is already in the
        store, and the requeued copy will be skipped by the next
        worker's store check.  (A late ack of a requeued task is not
        counted: the nonce-named unlink fails, so the replacement's
        lease — and the leased depth — stays intact.)
        """
        try:
            os.unlink(task.lease_path)
        except OSError:
            return
        self._count("acked", 0, -1)
        self.logger.debug("ack", digest=task.digest[:12])

    def nack(self, task: Task) -> None:
        """Return a claimed task to pending immediately (failed run)."""
        try:
            os.rename(
                task.lease_path, self.pending_dir / f"{task.digest}.json"
            )
        except OSError:
            return
        self._count("nacked", +1, -1)
        self.logger.info(
            "nack", digest=task.digest[:12], trace_id=task.trace_id
        )
        self._phase("nacked", task.digest, "queue", task.trace_id)

    # -- lease expiry ----------------------------------------------------

    def requeue_expired(self, now: Optional[float] = None) -> List[str]:
        """Move every expired lease back to pending; returns digests.

        The deadline comes from the lease stamp; an unstamped or
        unreadable lease falls back to the file's mtime plus the
        queue's lease window.  The pending-side rename target is the
        plain digest name, so a requeue racing a fresh submit of the
        same digest collapses to one (value-identical) pending task.
        """
        now = time.time() if now is None else now
        requeued: List[str] = []
        try:
            names = sorted(os.listdir(self.leased_dir))
        except OSError:
            return requeued
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            path = self.leased_dir / name
            digest = name.split(".", 1)[0]
            deadline = None
            trace_id = ""
            try:
                with open(path, encoding="utf-8") as fh:
                    payload = json.load(fh)
                deadline = (payload.get("lease") or {}).get("deadline")
                trace_id = str((payload.get("trace") or {}).get("id", ""))
            except (OSError, ValueError, AttributeError):
                pass
            if deadline is None:
                try:
                    deadline = path.stat().st_mtime + self.lease_s
                except OSError:
                    continue  # vanished: acked under us
            if now <= float(deadline):
                continue
            try:
                os.rename(path, self.pending_dir / f"{digest}.json")
                requeued.append(digest)
            except OSError:
                continue  # acked or requeued by someone else
            self._count("requeued", +1, -1)
            self.logger.info(
                "requeue-expired", digest=digest[:12], trace_id=trace_id
            )
            self._phase("requeued", digest, "queue", trace_id)
            if trace_id:
                self.span_log().record("requeued", digest, trace_id)
        return requeued

    # -- introspection ---------------------------------------------------

    def _scan_counts(self) -> Dict[str, int]:
        """Ground truth by directory scan (the pre-telemetry counts)."""
        out = {}
        for key, directory in (
            ("pending", self.pending_dir), ("leased", self.leased_dir)
        ):
            try:
                out[key] = sum(
                    1 for name in os.listdir(directory)
                    if name.endswith(".json") and not name.startswith(".")
                )
            except OSError:
                out[key] = 0
        return out

    def counts(self, verify: bool = False) -> Dict[str, int]:
        """``{"pending": n, "leased": n}`` — tracked, scan-refreshed.

        Served from the registry-backed depth tallies this instance
        maintains on its own transitions; a directory scan refreshes
        them when they have never been primed, when ``counts_ttl_s``
        has elapsed since the last scan (other processes move files
        too), or always with ``verify=True``.
        """
        now = time.monotonic()
        if (
            verify
            or self._depth is None
            or now - self._scanned_at > self.counts_ttl_s
        ):
            self._depth = self._scan_counts()
            self._scanned_at = now
            self._publish_depth()
        return dict(self._depth)

    def verify_counts(self) -> Dict[str, Any]:
        """Cross-check the tracked depths against a directory scan.

        Returns ``{"tracked", "scan", "match"}`` and resyncs the
        tracked depths to the scan — the ``repro status --verify`` /
        ``/v1/metrics?verify=1`` view.  A mismatch is not corruption:
        tracked depths lag other processes' transitions by up to the
        scan TTL by design.
        """
        tracked = dict(self._depth) if self._depth is not None else None
        scan = self._scan_counts()
        self._depth = dict(scan)
        self._scanned_at = time.monotonic()
        self._publish_depth()
        return {
            "tracked": tracked,
            "scan": scan,
            "match": tracked is None or tracked == scan,
        }

    def is_empty(self) -> bool:
        counts = self.counts(verify=True)
        return counts["pending"] == 0 and counts["leased"] == 0

    def pending_digests(self) -> List[str]:
        """Digests currently pending (claim order), leased excluded."""
        try:
            names = sorted(os.listdir(self.pending_dir))
        except OSError:
            return []
        return [
            name[: -len(".json")] for name in names
            if name.endswith(".json") and not name.startswith(".")
        ]

    def describe(self) -> Dict[str, Any]:
        return {"root": str(self.root), "lease_s": self.lease_s,
                **self.counts()}
