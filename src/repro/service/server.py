"""``repro serve``: stdlib-only asyncio HTTP frontend over the store.

The server owns no simulation state — it answers spec-digest queries
from the shared :class:`~repro.sim.store.ResultStore`, enqueues
misses onto the :class:`~repro.service.queue.WorkQueue` for detached
workers to drain, and streams batched results back for large grids.
It also sweeps expired leases on a timer, so stragglers are requeued
even when no worker is between claims.

Endpoints (JSON unless noted; one request per connection)::

    GET  /healthz              liveness + store/queue counts
    GET  /v1/metrics           Prometheus text exposition (0.0.4) of
                               the process registry plus worker
                               heartbeat series; ``?format=json`` for
                               the JSON view, ``?verify=1`` to
                               cross-check queue depths by scan
    GET  /v1/result/<digest>   one full store record, 404 on a miss
                               (the 404 body says whether it is queued)
    POST /v1/sweep             {"specs": [RunSpec.to_dict(), ...],
                                "trace_id": optional} -> digests
                               (input order), hits, enqueued, pending,
                               trace_id (minted when absent)
    POST /v1/status            {"digests": [...]} -> done/pending split
    POST /v1/results           {"digests": [...]} -> chunked NDJSON
                               stream, one store record per line, only
                               digests the store has (clients re-poll
                               for the rest)

Every request lands in ``http_requests_total{route,method}`` and a
per-route latency histogram; streamed records are counted; worker
heartbeat files under the queue dir surface as
``worker_heartbeat_*{worker_id=...}`` series, so a single
``/v1/metrics`` scrape shows a whole multi-process drain.  Sweeps are
traced: ``POST /v1/sweep`` mints (or accepts) a sweep trace id,
threads it through every enqueued payload, and appends ``submitted``
/ ``streamed`` spans to the server's sidecar — see
:mod:`repro.obs.sweeptrace`.

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection:
close``, ``Content-Length`` or chunked bodies) — enough for
:class:`~repro.service.client.SweepClient` and ``curl``, with no
dependency beyond the standard library.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs.log import StructLogger, to_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.sweeptrace import SpanLog, new_trace_id, read_heartbeats
from repro.service.queue import WorkQueue
from repro.sim.executor import RunSpec
from repro.sim.store import ResultStore

__all__ = ["SweepServer"]

#: Hard cap on request bodies (a million-point sweep submits in
#: batches well under this).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Records per flushed chunk when streaming results.
DEFAULT_BATCH = 256

#: Heartbeat counter fields surfaced as per-worker metric series.
_HEARTBEAT_SERIES = (
    ("claims", "worker_heartbeat_claims",
     "Tasks claimed, per worker heartbeat"),
    ("executed", "worker_heartbeat_executed",
     "Tasks simulated fresh, per worker heartbeat"),
    ("skipped", "worker_heartbeat_skipped",
     "Tasks skipped via store hit, per worker heartbeat"),
    ("failed", "worker_heartbeat_failed",
     "Tasks nacked after a failed simulation, per worker heartbeat"),
    ("requeued", "worker_heartbeat_requeued",
     "Expired leases recycled, per worker heartbeat"),
    ("sim_wall_s", "worker_heartbeat_sim_wall_seconds",
     "Wall seconds spent simulating, per worker heartbeat"),
    ("contention_failed_lanes", "contention_failed_lanes",
     "Failed GLSC element lanes across executed tasks, per worker"),
    ("contention_sc_failures", "contention_sc_failures",
     "Failed scalar store-conditionals across executed tasks, "
     "per worker"),
)


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _parse_query(raw_query: str) -> Dict[str, str]:
    """``a=1&b=2`` -> dict (no %-decoding: our params are plain)."""
    out: Dict[str, str] = {}
    for pair in raw_query.split("&"):
        if not pair:
            continue
        name, _, value = pair.partition("=")
        out[name] = value
    return out


class SweepServer:
    """Asyncio HTTP frontend for one store (+ optional work queue)."""

    def __init__(
        self,
        store: ResultStore,
        queue: Optional[WorkQueue] = None,
        host: str = "127.0.0.1",
        port: int = 8787,
        batch: int = DEFAULT_BATCH,
        log: Union[StructLogger, Callable[[str], None], None] = None,
        sweep_interval_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store
        self.queue = queue
        self.host = host
        self.port = port
        self.batch = max(1, batch)
        self.logger = to_logger(log, component="server")
        if sweep_interval_s is None and queue is not None:
            sweep_interval_s = max(1.0, queue.lease_s / 2.0)
        self.sweep_interval_s = sweep_interval_s
        if metrics is not None:
            self.metrics = metrics
        elif queue is not None:
            self.metrics = queue.metrics  # one registry per process
        else:
            from repro.obs.metrics import get_registry

            self.metrics = get_registry()
        self._http_requests = self.metrics.counter(
            "http_requests_total", "Requests served, by route",
            labelnames=("route", "method"),
        )
        self._http_seconds = self.metrics.histogram(
            "http_request_seconds", "Request handling latency",
            labelnames=("route",),
        )
        self._streamed = self.metrics.counter(
            "records_streamed_total",
            "Store records streamed over /v1/results",
        )
        self._spans = (
            SpanLog(queue.root, "server") if queue is not None else None
        )
        self.started = threading.Event()  # set once the port is bound
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.requests = 0

    # -- lifecycle -------------------------------------------------------

    async def serve_forever(self) -> None:
        """Bind, serve until :meth:`stop`, sweeping leases on a timer."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port)
        self.port = server.sockets[0].getsockname()[1]
        self.logger.info(
            "serving", url=f"http://{self.host}:{self.port}",
            store=str(self.store.root),
            queue=str(self.queue.root) if self.queue else "",
        )
        self.started.set()
        sweeper = (
            asyncio.ensure_future(self._sweep_leases())
            if self.queue is not None and self.sweep_interval_s
            else None
        )
        try:
            async with server:
                await self._stop.wait()
        finally:
            if sweeper is not None:
                sweeper.cancel()
            self.logger.info("stopped")

    def stop(self) -> None:
        """Thread-safe shutdown request."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)

    async def _sweep_leases(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval_s)
            requeued = self.queue.requeue_expired()
            if requeued:
                self.logger.info(
                    "requeue-sweep", expired=len(requeued)
                )

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        route = ""
        method = ""
        begun = time.perf_counter()
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            self.requests += 1
            route = self._route_label(path)
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 — keep serving
            self.logger.error("request-error", error=repr(exc),
                              route=route)
            try:
                await self._respond(
                    writer, 500, {"error": "internal", "detail": repr(exc)}
                )
            except Exception:
                pass
        finally:
            if route:
                self._http_requests.inc(route=route, method=method)
                self._http_seconds.observe(
                    time.perf_counter() - begun, route=route
                )
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    def _route_label(path: str) -> str:
        """Bounded-cardinality route name for metric labels."""
        path = path.split("?", 1)[0]
        if path.startswith("/v1/result/"):
            return "/v1/result"
        known = ("/healthz", "/v1/metrics", "/v1/sweep", "/v1/status",
                 "/v1/results")
        return path if path in known else "unknown"

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            return None
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_BODY_BYTES:
            return None
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method.upper(), path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
    ) -> None:
        await self._respond_bytes(
            writer, status, _json_bytes(payload), "application/json"
        )

    async def _respond_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        await self._respond_bytes(
            writer, status, text.encode("utf-8"), content_type
        )

    async def _respond_bytes(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 400: "Bad Request",
                  405: "Method Not Allowed", 500: "Internal Server Error"}
        writer.write(
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
        )
        writer.write(body)
        await writer.drain()

    # -- routing ---------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        path, _, raw_query = path.partition("?")
        query = _parse_query(raw_query)
        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, self._health())
            return
        if method == "GET" and path == "/v1/metrics":
            await self._get_metrics(query, writer)
            return
        if method == "GET" and path.startswith("/v1/result/"):
            await self._get_result(path[len("/v1/result/"):], writer)
            return
        if method == "POST" and path == "/v1/sweep":
            await self._post_sweep(body, writer)
            return
        if method == "POST" and path == "/v1/status":
            await self._post_status(body, writer)
            return
        if method == "POST" and path == "/v1/results":
            await self._post_results(body, writer)
            return
        await self._respond(
            writer, 404, {"error": "no such endpoint", "path": path}
        )

    def _health(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "store": {
                "root": str(self.store.root),
                "indexed": len(self.store.index()),
            },
            "queue": self.queue.describe() if self.queue else None,
            "requests": self.requests,
            "time": time.time(),
        }

    # -- metrics ---------------------------------------------------------

    def _heartbeat_lines(self) -> List[str]:
        """Worker heartbeat files rendered as Prometheus series.

        Workers are separate processes; their registries live in their
        own memory.  Their heartbeat snapshots under the queue dir are
        the cross-process bridge: one scrape of this server shows the
        whole drain.  (Distinct ``worker_heartbeat_*`` names keep
        these from colliding with the in-process ``worker_*`` series
        a same-process drain — tests, mostly — registers directly.)
        """
        if self.queue is None:
            return []
        beats = read_heartbeats(self.queue.root)
        if not beats:
            return []
        lines: List[str] = []
        for key, name, help_text in _HEARTBEAT_SERIES:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            for beat in beats:
                worker = str(beat.get("worker_id", "")).replace('"', "'")
                value = beat.get(key, 0)
                lines.append(
                    f'{name}{{worker_id="{worker}"}} {value}'
                )
        lines.append(
            "# HELP worker_heartbeat_age_seconds "
            "Seconds since each worker's last heartbeat"
        )
        lines.append("# TYPE worker_heartbeat_age_seconds gauge")
        for beat in beats:
            worker = str(beat.get("worker_id", "")).replace('"', "'")
            lines.append(
                f'worker_heartbeat_age_seconds'
                f'{{worker_id="{worker}"}} {beat.get("age_s", 0.0):.3f}'
            )
        return lines

    async def _get_metrics(
        self, query: Dict[str, str], writer: asyncio.StreamWriter
    ) -> None:
        verify = query.get("verify", "") not in ("", "0", "false")
        verification = None
        if self.queue is not None:
            if verify:
                verification = self.queue.verify_counts()
            else:
                self.queue.counts()  # refresh depth gauges (TTL-capped)
        if query.get("format") == "json":
            payload: Dict[str, Any] = {
                "metrics": self.metrics.to_dict(),
                "workers": (
                    read_heartbeats(self.queue.root)
                    if self.queue is not None else []
                ),
                "queue": self.queue.describe() if self.queue else None,
                "requests": self.requests,
            }
            if verification is not None:
                payload["queue_verify"] = verification
            await self._respond(writer, 200, payload)
            return
        extra = self._heartbeat_lines()
        if verification is not None:
            extra = extra + [
                "# queue depth cross-check (scan vs tracked): "
                + json.dumps(verification, sort_keys=True)
            ]
        text = self.metrics.render_prometheus(extra_lines=extra)
        await self._respond_text(writer, 200, text)

    async def _get_result(
        self, digest: str, writer: asyncio.StreamWriter
    ) -> None:
        record = self.store.load_record(digest)
        if record is not None:
            await self._respond(writer, 200, record)
            return
        queued = bool(self.queue and self.queue._in_flight(digest))
        await self._respond(
            writer, 404,
            {"error": "miss", "digest": digest, "queued": queued},
        )

    @staticmethod
    def _parse_payload(body: bytes) -> Optional[Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    @classmethod
    def _parse_body(cls, body: bytes, key: str) -> Optional[List[Any]]:
        payload = cls._parse_payload(body)
        items = payload.get(key) if payload is not None else None
        return items if isinstance(items, list) else None

    async def _post_sweep(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Resolve digests for submitted specs; enqueue the misses.

        Every sweep gets a trace id — the client's, when the payload
        carries one, else freshly minted — returned in the response
        and threaded through each enqueued task so workers and the
        result stream can be stitched into one distributed trace.
        """
        payload = self._parse_payload(body)
        spec_dicts = (
            payload.get("specs") if payload is not None else None
        )
        if not isinstance(spec_dicts, list):
            await self._respond(
                writer, 400, {"error": "body must be {'specs': [...]}"}
            )
            return
        trace_id = str(payload.get("trace_id") or "") or new_trace_id()
        digests: List[str] = []
        hits = enqueued = pending = 0
        for spec_dict in spec_dicts:
            try:
                spec = RunSpec.from_dict(spec_dict)
                digest = spec.digest()
            except Exception:
                await self._respond(
                    writer, 400,
                    {"error": "unparsable spec", "spec": spec_dict},
                )
                return
            digests.append(digest)
            if self.store.load_record(digest) is not None:
                hits += 1
            elif self.queue is None:
                pending += 1
            else:
                if self._spans is not None:
                    self._spans.record("submitted", digest, trace_id)
                if self.queue.submit(
                    spec, digest=digest, trace_id=trace_id
                ):
                    enqueued += 1
                else:
                    pending += 1  # already in flight
        self.logger.info(
            "sweep", specs=len(digests), hits=hits, enqueued=enqueued,
            pending=pending, trace_id=trace_id,
        )
        await self._respond(
            writer, 200,
            {
                "digests": digests,
                "hits": hits,
                "enqueued": enqueued,
                "pending": pending,
                "queue": self.queue is not None,
                "trace_id": trace_id,
            },
        )

    async def _post_status(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        digests = self._parse_body(body, "digests")
        if digests is None:
            await self._respond(
                writer, 400, {"error": "body must be {'digests': [...]}"}
            )
            return
        done = [d for d in digests
                if self.store.load_record(d) is not None]
        done_set = set(done)
        await self._respond(
            writer, 200,
            {
                "total": len(digests),
                "done": len(done),
                "pending": [d for d in digests if d not in done_set],
            },
        )

    async def _post_results(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Stream available records as chunked NDJSON, batch-flushed."""
        digests = self._parse_body(body, "digests")
        if digests is None:
            await self._respond(
                writer, 400, {"error": "body must be {'digests': [...]}"}
            )
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        chunk: List[bytes] = []
        sent = 0
        for digest in dict.fromkeys(digests):  # dedup, keep order
            record = self.store.load_record(digest)
            if record is None:
                continue
            chunk.append(_json_bytes(record) + b"\n")
            sent += 1
            if self._spans is not None:
                trace_id = str(
                    (record.get("provenance") or {}).get("trace_id", "")
                )
                if trace_id:
                    self._spans.record("streamed", digest, trace_id)
            if len(chunk) >= self.batch:
                self._write_chunk(writer, b"".join(chunk))
                chunk.clear()
                await writer.drain()
        if chunk:
            self._write_chunk(writer, b"".join(chunk))
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        self._streamed.inc(sent)
        self.logger.info(
            "streamed", sent=sent, requested=len(digests)
        )

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        writer.write(data)
        writer.write(b"\r\n")


def _default_log(stream=None) -> Callable[[str], None]:
    """A timestamped line logger (the pre-StructLogger CLI default)."""
    stream = stream or sys.stderr

    def log(message: str) -> None:
        stamp = time.strftime("%H:%M:%S")
        print(f"[{stamp}] {message}", file=stream, flush=True)

    return log
