"""``repro serve``: stdlib-only asyncio HTTP frontend over the store.

The server owns no simulation state — it answers spec-digest queries
from the shared :class:`~repro.sim.store.ResultStore`, enqueues
misses onto the :class:`~repro.service.queue.WorkQueue` for detached
workers to drain, and streams batched results back for large grids.
It also sweeps expired leases on a timer, so stragglers are requeued
even when no worker is between claims.

Endpoints (all JSON; one request per connection)::

    GET  /healthz              liveness + store/queue counts
    GET  /v1/result/<digest>   one full store record, 404 on a miss
                               (the 404 body says whether it is queued)
    POST /v1/sweep             {"specs": [RunSpec.to_dict(), ...]}
                               -> digests (input order), hits,
                                  enqueued, pending
    POST /v1/status            {"digests": [...]} -> done/pending split
    POST /v1/results           {"digests": [...]} -> chunked NDJSON
                               stream, one store record per line, only
                               digests the store has (clients re-poll
                               for the rest)

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection:
close``, ``Content-Length`` or chunked bodies) — enough for
:class:`~repro.service.client.SweepClient` and ``curl``, with no
dependency beyond the standard library.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.queue import WorkQueue
from repro.sim.executor import RunSpec
from repro.sim.store import ResultStore

__all__ = ["SweepServer"]

#: Hard cap on request bodies (a million-point sweep submits in
#: batches well under this).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Records per flushed chunk when streaming results.
DEFAULT_BATCH = 256


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class SweepServer:
    """Asyncio HTTP frontend for one store (+ optional work queue)."""

    def __init__(
        self,
        store: ResultStore,
        queue: Optional[WorkQueue] = None,
        host: str = "127.0.0.1",
        port: int = 8787,
        batch: int = DEFAULT_BATCH,
        log: Optional[Callable[[str], None]] = None,
        sweep_interval_s: Optional[float] = None,
    ) -> None:
        self.store = store
        self.queue = queue
        self.host = host
        self.port = port
        self.batch = max(1, batch)
        self._log = log or (lambda message: None)
        if sweep_interval_s is None and queue is not None:
            sweep_interval_s = max(1.0, queue.lease_s / 2.0)
        self.sweep_interval_s = sweep_interval_s
        self.started = threading.Event()  # set once the port is bound
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.requests = 0

    # -- lifecycle -------------------------------------------------------

    async def serve_forever(self) -> None:
        """Bind, serve until :meth:`stop`, sweeping leases on a timer."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._log(
            f"serving http://{self.host}:{self.port} "
            f"(store {self.store.root}"
            + (f", queue {self.queue.root}" if self.queue else "")
            + ")"
        )
        self.started.set()
        sweeper = (
            asyncio.ensure_future(self._sweep_leases())
            if self.queue is not None and self.sweep_interval_s
            else None
        )
        try:
            async with server:
                await self._stop.wait()
        finally:
            if sweeper is not None:
                sweeper.cancel()
            self._log("server stopped")

    def stop(self) -> None:
        """Thread-safe shutdown request."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)

    async def _sweep_leases(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval_s)
            requeued = self.queue.requeue_expired()
            if requeued:
                self._log(f"requeued {len(requeued)} expired leases")

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            self.requests += 1
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 — keep serving
            self._log(f"error handling request: {exc!r}")
            try:
                await self._respond(
                    writer, 500, {"error": "internal", "detail": repr(exc)}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            return None
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_BODY_BYTES:
            return None
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method.upper(), path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
    ) -> None:
        body = _json_bytes(payload)
        reason = {200: "OK", 404: "Not Found", 400: "Bad Request",
                  405: "Method Not Allowed", 500: "Internal Server Error"}
        writer.write(
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
        )
        writer.write(body)
        await writer.drain()

    # -- routing ---------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, self._health())
            return
        if method == "GET" and path.startswith("/v1/result/"):
            await self._get_result(path[len("/v1/result/"):], writer)
            return
        if method == "POST" and path == "/v1/sweep":
            await self._post_sweep(body, writer)
            return
        if method == "POST" and path == "/v1/status":
            await self._post_status(body, writer)
            return
        if method == "POST" and path == "/v1/results":
            await self._post_results(body, writer)
            return
        await self._respond(
            writer, 404, {"error": "no such endpoint", "path": path}
        )

    def _health(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "store": {
                "root": str(self.store.root),
                "indexed": len(self.store.index()),
            },
            "queue": self.queue.describe() if self.queue else None,
            "requests": self.requests,
            "time": time.time(),
        }

    async def _get_result(
        self, digest: str, writer: asyncio.StreamWriter
    ) -> None:
        record = self.store.load_record(digest)
        if record is not None:
            await self._respond(writer, 200, record)
            return
        queued = bool(self.queue and self.queue._in_flight(digest))
        await self._respond(
            writer, 404,
            {"error": "miss", "digest": digest, "queued": queued},
        )

    @staticmethod
    def _parse_body(body: bytes, key: str) -> Optional[List[Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        items = payload.get(key) if isinstance(payload, dict) else None
        return items if isinstance(items, list) else None

    async def _post_sweep(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Resolve digests for submitted specs; enqueue the misses."""
        spec_dicts = self._parse_body(body, "specs")
        if spec_dicts is None:
            await self._respond(
                writer, 400, {"error": "body must be {'specs': [...]}"}
            )
            return
        digests: List[str] = []
        hits = enqueued = pending = 0
        for spec_dict in spec_dicts:
            try:
                spec = RunSpec.from_dict(spec_dict)
                digest = spec.digest()
            except Exception:
                await self._respond(
                    writer, 400,
                    {"error": "unparsable spec", "spec": spec_dict},
                )
                return
            digests.append(digest)
            if self.store.load_record(digest) is not None:
                hits += 1
            elif self.queue is None:
                pending += 1
            elif self.queue.submit(spec, digest=digest):
                enqueued += 1
            else:
                pending += 1  # already in flight
        self._log(
            f"sweep: {len(digests)} specs, {hits} hits, "
            f"{enqueued} enqueued, {pending} already pending"
        )
        await self._respond(
            writer, 200,
            {
                "digests": digests,
                "hits": hits,
                "enqueued": enqueued,
                "pending": pending,
                "queue": self.queue is not None,
            },
        )

    async def _post_status(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        digests = self._parse_body(body, "digests")
        if digests is None:
            await self._respond(
                writer, 400, {"error": "body must be {'digests': [...]}"}
            )
            return
        done = [d for d in digests
                if self.store.load_record(d) is not None]
        done_set = set(done)
        await self._respond(
            writer, 200,
            {
                "total": len(digests),
                "done": len(done),
                "pending": [d for d in digests if d not in done_set],
            },
        )

    async def _post_results(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Stream available records as chunked NDJSON, batch-flushed."""
        digests = self._parse_body(body, "digests")
        if digests is None:
            await self._respond(
                writer, 400, {"error": "body must be {'digests': [...]}"}
            )
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        chunk: List[bytes] = []
        sent = 0
        for digest in dict.fromkeys(digests):  # dedup, keep order
            record = self.store.load_record(digest)
            if record is None:
                continue
            chunk.append(_json_bytes(record) + b"\n")
            sent += 1
            if len(chunk) >= self.batch:
                self._write_chunk(writer, b"".join(chunk))
                chunk.clear()
                await writer.drain()
        if chunk:
            self._write_chunk(writer, b"".join(chunk))
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        self._log(f"streamed {sent}/{len(digests)} records")

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        writer.write(data)
        writer.write(b"\r\n")


def _default_log(stream=None) -> Callable[[str], None]:
    """A timestamped line logger (used by the CLI verb)."""
    stream = stream or sys.stderr

    def log(message: str) -> None:
        stamp = time.strftime("%H:%M:%S")
        print(f"[{stamp}] {message}", file=stream, flush=True)

    return log
