"""The ``repro worker`` drain loop: claim, simulate, persist, ack.

A worker owns nothing: it binds a :class:`~repro.service.queue.WorkQueue`
and a shared :class:`~repro.sim.store.ResultStore`, and repeats

    requeue expired leases -> claim -> (skip if the store already has
    the digest) -> :func:`~repro.sim.executor.execute_spec` -> store
    save with worker/host provenance -> ack

until told to stop.  N workers on N hosts drain one sweep with no
coordination beyond the queue directory and the store; determinism
guarantees their records are byte-identical (sans provenance) to a
serial run's, which the service tests and CI assert.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.obs.telemetry import run_provenance
from repro.service.queue import Task, WorkQueue
from repro.sim.executor import execute_spec
from repro.sim.store import ResultStore

__all__ = ["WorkerSummary", "worker_loop", "default_worker_id"]


def default_worker_id() -> str:
    """A reasonably unique worker name: ``<host>-<pid>``."""
    import platform

    return f"{platform.node()}-{os.getpid()}"


@dataclass
class WorkerSummary:
    """What one :func:`worker_loop` invocation did."""

    worker_id: str = ""
    executed: int = 0        # tasks simulated fresh
    skipped: int = 0         # tasks whose digest the store already had
    failed: int = 0          # tasks whose simulation raised (nacked)
    requeued: int = 0        # expired leases this worker recycled
    wall_time_s: float = 0.0
    digests: List[str] = field(default_factory=list)


def worker_loop(
    queue: WorkQueue,
    store: ResultStore,
    worker_id: Optional[str] = None,
    poll_s: float = 0.2,
    exit_when_empty: bool = False,
    idle_exit_s: Optional[float] = None,
    max_tasks: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> WorkerSummary:
    """Drain the queue until a stop condition holds.

    ``exit_when_empty`` returns as soon as the queue has neither
    pending nor leased tasks (the batch-drain mode CI uses);
    ``idle_exit_s`` returns after that many seconds without claiming
    anything (lets a worker outlive brief gaps between submissions);
    ``max_tasks`` bounds fresh executions.  With none of them set the
    loop runs forever — the always-on service worker.

    A failed simulation is nacked back to pending and counted; the
    worker moves on rather than dying, so one poison spec cannot take
    a fleet down.  A worker never re-claims a digest it already failed
    (the task stays pending for *other* workers, visible in ``failed``
    tallies and the server's queue counts), and ``exit_when_empty``
    treats a queue holding only this worker's failures as drained.
    """
    worker_id = worker_id or default_worker_id()
    # Provenance picks the id up from the environment so the single
    # execute/save path needs no plumbing through execute_spec.
    os.environ["REPRO_WORKER_ID"] = worker_id
    summary = WorkerSummary(worker_id=worker_id)
    say = log or (lambda message: None)
    started = time.perf_counter()
    last_work = time.monotonic()
    say(f"worker {worker_id} draining {queue.root} -> {store.root}")
    poisoned: set = set()    # digests this worker failed; never re-claim
    try:
        while True:
            summary.requeued += len(queue.requeue_expired())
            task = queue.claim(worker_id, exclude=poisoned)
            if task is None:
                if exit_when_empty and _drained(queue, poisoned):
                    break
                if (
                    idle_exit_s is not None
                    and time.monotonic() - last_work > idle_exit_s
                ):
                    break
                time.sleep(poll_s)
                continue
            last_work = time.monotonic()
            if store.load_record(task.digest) is not None:
                # Another worker (or a requeued straggler's original
                # run) already produced this record; determinism makes
                # re-simulating pure waste.
                queue.ack(task)
                summary.skipped += 1
                say(f"skip {task.digest[:12]} (already in store)")
                continue
            if not _execute_one(task, queue, store, summary, say):
                poisoned.add(task.digest)
                continue
            if max_tasks is not None and summary.executed >= max_tasks:
                break
    finally:
        summary.wall_time_s = time.perf_counter() - started
        say(
            f"worker {worker_id} done: {summary.executed} executed, "
            f"{summary.skipped} skipped, {summary.failed} failed, "
            f"{summary.requeued} requeued, {summary.wall_time_s:.2f}s"
        )
    return summary


def _drained(queue: WorkQueue, poisoned: set) -> bool:
    """Nothing left this worker could make progress on."""
    counts = queue.counts()
    if counts["leased"]:
        return False                   # someone may still nack/expire
    if counts["pending"] == 0:
        return True
    return set(queue.pending_digests()) <= poisoned


def _execute_one(
    task: Task,
    queue: WorkQueue,
    store: ResultStore,
    summary: WorkerSummary,
    say: Callable[[str], None],
) -> bool:
    """Simulate one claimed task; save-then-ack on success."""
    begun = time.perf_counter()
    try:
        stats = execute_spec(task.spec)
    except Exception as exc:  # noqa: BLE001 — a worker must survive
        queue.nack(task)
        summary.failed += 1
        say(f"fail {task.digest[:12]} ({task.spec.label()}): {exc!r}")
        return False
    wall_s = time.perf_counter() - begun
    store.save(
        task.digest,
        stats,
        spec=task.spec.to_dict(),
        config=task.spec.config().to_dict(),
        provenance=run_provenance(wall_s),
    )
    queue.ack(task)
    summary.executed += 1
    summary.digests.append(task.digest)
    say(
        f"done {task.digest[:12]} ({task.spec.label()}): "
        f"{stats.cycles} cycles in {wall_s:.2f}s"
    )
    return True
