"""The ``repro worker`` drain loop: claim, simulate, persist, ack.

A worker owns nothing: it binds a :class:`~repro.service.queue.WorkQueue`
and a shared :class:`~repro.sim.store.ResultStore`, and repeats

    requeue expired leases -> claim -> (skip if the store already has
    the digest) -> :func:`~repro.sim.executor.execute_spec` -> store
    save with worker/host provenance -> ack

until told to stop.  N workers on N hosts drain one sweep with no
coordination beyond the queue directory and the store; determinism
guarantees their records are byte-identical (sans provenance) to a
serial run's, which the service tests and CI assert.

Telemetry: the loop counts claims, store-skips, and task outcomes in
the queue's metrics registry (``worker_claims_total`` etc., labelled
by worker id), observes per-task simulation wall time into a
``worker_sim_seconds`` histogram, and — because workers are separate
*processes* whose registries the server cannot see — periodically
snapshots its tallies into ``<queue>/workers/<worker_id>.json``
heartbeat files (:func:`~repro.obs.sweeptrace.write_heartbeat`) that
the server's ``/v1/metrics`` endpoint aggregates.  When a claimed
task carries a sweep ``trace_id``, the worker appends
``claimed``/``simulated``/``saved`` spans to its sidecar in the queue
directory and stamps the trace id into the stored record's
provenance, so ``repro sweep-trace`` can rebuild the whole
distributed drain afterwards.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.obs.log import StructLogger, to_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.sweeptrace import write_heartbeat
from repro.obs.telemetry import run_provenance
from repro.service.queue import Task, WorkQueue
from repro.sim.executor import execute_spec
from repro.sim.store import ResultStore

__all__ = ["WorkerSummary", "worker_loop", "default_worker_id"]

#: How often a live worker refreshes its heartbeat file (seconds).
DEFAULT_HEARTBEAT_S = 5.0


def default_worker_id() -> str:
    """A reasonably unique worker name: ``<host>-<pid>``."""
    import platform

    return f"{platform.node()}-{os.getpid()}"


@dataclass
class WorkerSummary:
    """What one :func:`worker_loop` invocation did."""

    worker_id: str = ""
    executed: int = 0        # tasks simulated fresh
    skipped: int = 0         # tasks whose digest the store already had
    failed: int = 0          # tasks whose simulation raised (nacked)
    requeued: int = 0        # expired leases this worker recycled
    claims: int = 0          # successful claims (executed+skipped+failed)
    sim_wall_s: float = 0.0  # wall seconds spent inside execute_spec
    wall_time_s: float = 0.0
    digests: List[str] = field(default_factory=list)
    # contention roll-up across executed tasks (from MachineStats)
    contention_failed_lanes: int = 0
    contention_sc_failures: int = 0

    def heartbeat_counters(self) -> dict:
        """The tallies a worker publishes in its heartbeat file."""
        return {
            "claims": self.claims,
            "executed": self.executed,
            "skipped": self.skipped,
            "failed": self.failed,
            "requeued": self.requeued,
            "sim_wall_s": round(self.sim_wall_s, 6),
            "contention_failed_lanes": self.contention_failed_lanes,
            "contention_sc_failures": self.contention_sc_failures,
        }


class _WorkerMetrics:
    """The worker-side series, bound to one worker id."""

    def __init__(self, registry: MetricsRegistry, worker_id: str) -> None:
        self.worker_id = worker_id
        self.claims = registry.counter(
            "worker_claims_total", "Tasks this worker claimed",
            labelnames=("worker_id",),
        )
        self.tasks = registry.counter(
            "worker_tasks_total", "Claimed-task outcomes",
            labelnames=("worker_id", "outcome"),
        )
        self.sim_seconds = registry.histogram(
            "worker_sim_seconds",
            "Wall seconds per fresh simulation",
            labelnames=("worker_id",),
        )
        # Contention roll-up: workers run unobserved (no event bus),
        # so these series derive from each task's end-of-run counters
        # rather than the contention sink — coarser, but free.
        self.contention_lanes = registry.counter(
            "contention_failed_lanes_total",
            "Failed GLSC element lanes across simulated tasks, by cause",
            labelnames=("worker_id", "cause"),
        )
        self.contention_sc = registry.counter(
            "contention_sc_failures_total",
            "Failed scalar store-conditionals across simulated tasks",
            labelnames=("worker_id",),
        )
        self.contention_rate = registry.histogram(
            "contention_failure_rate",
            "Per-task GLSC element failure rate",
            labelnames=("worker_id",),
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0),
        )

    def claim(self) -> None:
        self.claims.inc(worker_id=self.worker_id)

    def outcome(self, outcome: str) -> None:
        self.tasks.inc(worker_id=self.worker_id, outcome=outcome)

    def simulated(self, wall_s: float) -> None:
        self.sim_seconds.observe(wall_s, worker_id=self.worker_id)

    def contention(self, stats) -> None:
        """Fold one task's conflict counters into the series."""
        for cause, lanes in stats.glsc_element_failures.items():
            if lanes:
                self.contention_lanes.inc(
                    lanes, worker_id=self.worker_id, cause=cause
                )
        if stats.sc_failures:
            self.contention_sc.inc(
                stats.sc_failures, worker_id=self.worker_id
            )
        self.contention_rate.observe(
            stats.glsc_failure_rate, worker_id=self.worker_id
        )


def worker_loop(
    queue: WorkQueue,
    store: ResultStore,
    worker_id: Optional[str] = None,
    poll_s: float = 0.2,
    exit_when_empty: bool = False,
    idle_exit_s: Optional[float] = None,
    max_tasks: Optional[int] = None,
    log: Union[StructLogger, Callable[[str], None], None] = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
) -> WorkerSummary:
    """Drain the queue until a stop condition holds.

    ``exit_when_empty`` returns as soon as the queue has neither
    pending nor leased tasks (the batch-drain mode CI uses);
    ``idle_exit_s`` returns after that many seconds without claiming
    anything (lets a worker outlive brief gaps between submissions);
    ``max_tasks`` bounds fresh executions.  With none of them set the
    loop runs forever — the always-on service worker.

    ``log`` accepts a :class:`~repro.obs.log.StructLogger`, a plain
    ``Callable[[str], None]`` (the pre-telemetry interface, wrapped),
    or ``None`` for silence.

    A failed simulation is nacked back to pending and counted; the
    worker moves on rather than dying, so one poison spec cannot take
    a fleet down.  A worker never re-claims a digest it already failed
    (the task stays pending for *other* workers, visible in ``failed``
    tallies and the server's queue counts), and ``exit_when_empty``
    treats a queue holding only this worker's failures as drained.
    """
    worker_id = worker_id or default_worker_id()
    # Provenance picks the id up from the environment so the single
    # execute/save path needs no plumbing through execute_spec.
    os.environ["REPRO_WORKER_ID"] = worker_id
    summary = WorkerSummary(worker_id=worker_id)
    logger = to_logger(log, component="worker").bind(worker_id=worker_id)
    metrics = _WorkerMetrics(queue.metrics, worker_id)
    spans = queue.span_log(worker_id)
    started = time.perf_counter()
    last_work = time.monotonic()
    last_beat = 0.0
    logger.info(
        "start", event_detail="draining",
        queue=str(queue.root), store=str(store.root),
    )
    poisoned: set = set()    # digests this worker failed; never re-claim

    def beat(force: bool = False) -> None:
        nonlocal last_beat
        now = time.monotonic()
        if force or now - last_beat >= heartbeat_s:
            write_heartbeat(
                queue.root, worker_id, summary.heartbeat_counters()
            )
            last_beat = now

    try:
        beat(force=True)
        while True:
            summary.requeued += len(queue.requeue_expired())
            task = queue.claim(worker_id, exclude=poisoned)
            if task is None:
                beat()
                if exit_when_empty and _drained(queue, poisoned):
                    break
                if (
                    idle_exit_s is not None
                    and time.monotonic() - last_work > idle_exit_s
                ):
                    break
                time.sleep(poll_s)
                continue
            last_work = time.monotonic()
            summary.claims += 1
            metrics.claim()
            if task.trace_id:
                spans.record("claimed", task.digest, task.trace_id)
            if task.is_batch:
                if not _execute_batch(task, queue, store, summary,
                                      metrics, logger, spans):
                    poisoned.add(task.digest)
                beat()
                if (
                    max_tasks is not None
                    and summary.executed >= max_tasks
                ):
                    break
                continue
            if store.load_record(task.digest) is not None:
                # Another worker (or a requeued straggler's original
                # run) already produced this record; determinism makes
                # re-simulating pure waste.
                queue.ack(task)
                summary.skipped += 1
                metrics.outcome("skipped")
                logger.debug("skip", digest=task.digest[:12],
                             reason="already in store")
                continue
            if not _execute_one(task, queue, store, summary,
                                metrics, logger, spans):
                poisoned.add(task.digest)
            beat()
            if (
                max_tasks is not None
                and summary.executed >= max_tasks
            ):
                break
    finally:
        summary.wall_time_s = time.perf_counter() - started
        beat(force=True)
        logger.info(
            "done", executed=summary.executed, skipped=summary.skipped,
            failed=summary.failed, requeued=summary.requeued,
            wall_s=round(summary.wall_time_s, 3),
        )
    return summary


def _drained(queue: WorkQueue, poisoned: set) -> bool:
    """Nothing left this worker could make progress on.

    Other worker processes mutate the queue directory, so this always
    rescans (``verify=True``) instead of trusting this instance's
    tracked depths — exiting early on a stale zero would strand tasks.
    """
    counts = queue.counts(verify=True)
    if counts["leased"]:
        return False                   # someone may still nack/expire
    if counts["pending"] == 0:
        return True
    return set(queue.pending_digests()) <= poisoned


def _execute_batch(
    task: Task,
    queue: WorkQueue,
    store: ResultStore,
    summary: WorkerSummary,
    metrics: _WorkerMetrics,
    logger: StructLogger,
    spans,
) -> bool:
    """Drain one claimed batch through an in-process BatchRunner.

    Members whose digest the store already has are skipped (the same
    determinism argument as the single-task path, applied per member);
    the rest simulate together — shared interned inputs, one merged
    event heap.  Save-then-ack covers the whole file, so a crash
    mid-batch requeues it and the re-run skips whatever did land.  A
    simulation error nacks the *whole file* back to pending: members
    are independent, but the file is the queue's unit of retry.
    """
    from repro.sim.batch import BatchRunner

    fresh = [
        (digest, spec) for digest, spec in task.members
        if store.load_record(digest) is None
    ]
    skipped = len(task.members) - len(fresh)
    if skipped:
        summary.skipped += skipped
        for _ in range(skipped):
            metrics.outcome("skipped")
    if not fresh:
        queue.ack(task)
        logger.debug(
            "skip-batch", digest=task.digest[:18],
            reason="every member already in store",
        )
        return True
    begun = time.perf_counter()
    try:
        results = BatchRunner([spec for _, spec in fresh]).run()
    except Exception as exc:  # noqa: BLE001 — a worker must survive
        queue.nack(task)
        summary.failed += 1
        metrics.outcome("failed")
        logger.warning(
            "fail-batch", digest=task.digest[:18],
            size=len(fresh), error=repr(exc), trace_id=task.trace_id,
        )
        return False
    wall_s = time.perf_counter() - begun
    summary.sim_wall_s += wall_s
    for (digest, spec), result in zip(fresh, results):
        stats = result.stats
        metrics.simulated(result.wall_s)
        metrics.contention(stats)
        summary.contention_failed_lanes += stats.glsc_failures_total
        summary.contention_sc_failures += stats.sc_failures
        if task.trace_id:
            spans.record(
                "simulated", digest, task.trace_id,
                wall_s=round(result.wall_s, 6), cycles=stats.cycles,
            )
        provenance = run_provenance(result.wall_s)
        provenance["batch_id"] = task.digest
        provenance["batch_occupancy"] = len(fresh)
        if task.trace_id:
            provenance["trace_id"] = task.trace_id
        store.save(
            digest,
            stats,
            spec=spec.to_dict(),
            config=spec.config().to_dict(),
            provenance=provenance,
        )
        if task.trace_id:
            spans.record("saved", digest, task.trace_id)
        summary.executed += 1
        metrics.outcome("executed")
        summary.digests.append(digest)
    queue.ack(task)
    logger.info(
        "done-batch", digest=task.digest[:18], size=len(fresh),
        skipped=skipped, wall_s=round(wall_s, 3),
        trace_id=task.trace_id,
    )
    return True


def _execute_one(
    task: Task,
    queue: WorkQueue,
    store: ResultStore,
    summary: WorkerSummary,
    metrics: _WorkerMetrics,
    logger: StructLogger,
    spans,
) -> bool:
    """Simulate one claimed task; save-then-ack on success."""
    begun = time.perf_counter()
    try:
        stats = execute_spec(task.spec)
    except Exception as exc:  # noqa: BLE001 — a worker must survive
        queue.nack(task)
        summary.failed += 1
        metrics.outcome("failed")
        logger.warning(
            "fail", digest=task.digest[:12], spec=task.spec.label(),
            error=repr(exc), trace_id=task.trace_id,
        )
        return False
    wall_s = time.perf_counter() - begun
    summary.sim_wall_s += wall_s
    metrics.simulated(wall_s)
    metrics.contention(stats)
    summary.contention_failed_lanes += stats.glsc_failures_total
    summary.contention_sc_failures += stats.sc_failures
    if task.trace_id:
        spans.record(
            "simulated", task.digest, task.trace_id,
            wall_s=round(wall_s, 6), cycles=stats.cycles,
        )
    provenance = run_provenance(wall_s)
    if task.trace_id:
        provenance["trace_id"] = task.trace_id
    store.save(
        task.digest,
        stats,
        spec=task.spec.to_dict(),
        config=task.spec.config().to_dict(),
        provenance=provenance,
    )
    if task.trace_id:
        spans.record("saved", task.digest, task.trace_id)
    queue.ack(task)
    summary.executed += 1
    metrics.outcome("executed")
    summary.digests.append(task.digest)
    logger.info(
        "done-task", digest=task.digest[:12], spec=task.spec.label(),
        cycles=stats.cycles, wall_s=round(wall_s, 3),
        trace_id=task.trace_id,
    )
    return True
