"""Simulation layer: machine config, cycle loop, and the run API.

The public run surface is the declarative one::

    from repro.sim import Executor, RunSpec, Sweep, ResultStore

Specs in, verified :class:`~repro.sim.stats.MachineStats` out — with
deduplication, process-pool parallelism, and a persistent result
store.  The lower-level pieces (:class:`~repro.sim.machine.Machine`,
:mod:`~repro.sim.runner`) remain importable for direct use.
"""

from repro.sim.config import CONFIG_NAMES, MachineConfig, named_config
from repro.sim.executor import Executor, RunSpec, Sweep, execute_spec
from repro.sim.stats import MachineStats, ThreadStats
from repro.sim.store import ResultStore, STORE_VERSION, default_cache_dir

__all__ = [
    "CONFIG_NAMES",
    "Executor",
    "MachineConfig",
    "MachineStats",
    "ResultStore",
    "RunSpec",
    "STORE_VERSION",
    "Sweep",
    "ThreadStats",
    "default_cache_dir",
    "execute_spec",
    "named_config",
]
