"""Batched simulation backend: many machines, one event heap.

A bench grid is dozens of near-identical, fully independent machines.
Simulating them one at a time pays three avoidable costs: every spec
re-generates its dataset, re-allocates (word by word) its memory
image, and spins up a fresh Python event loop whose dispatch state
goes cold between runs.  :class:`BatchRunner` simulates N specs in one
process by

* **interning immutable inputs** — datasets are built once per batch
  (:func:`~repro.workloads.interning.intern_datasets`), and each
  distinct (kernel, dataset, thread count, geometry) combination is
  allocated once into a template image whose snapshot hydrates one
  private copy per machine (:class:`ImageCache`, one bulk dict copy
  instead of thousands of ``store_word`` calls); program objects are
  validated once per combination (:class:`ProgramCache`);
* **merging the wakeup heaps of all live machines** into one
  interleaved event heap keyed ``(cycle, machine_id, core_id)``, so a
  single Python loop drains the whole batch and the per-iteration
  bookkeeping of :meth:`~repro.sim.machine.Machine.batch_step` stays
  hot across machines.

Machines in a batch share *nothing* mutable: each gets its own
hydrated image, its own rebound kernel, its own coherence system.
The interleave order across machines is therefore unobservable, and
every batched result is **bitwise identical** (cycles + stats digest)
to the solo path — ``tests/bench/test_equivalence.py`` pins all 84
grid points through this runner, and ``tests/sim/test_batch.py``
property-checks random mixed batches against serial
:func:`~repro.sim.executor.execute_spec`.

Observed runs (tracer / event-bus sinks) never come here: the
executor keeps them on the solo path so the zero-allocation guard and
contention/phase attribution are untouched.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.isa.program import check_program
from repro.mem.image import ImageSnapshot, MemoryImage
from repro.sim.machine import Machine
from repro.sim.stats import MachineStats
from repro.workloads.interning import intern_datasets

__all__ = ["BatchResult", "BatchRunner", "ImageCache", "ProgramCache"]


def _intern_key(spec: "RunSpec", config) -> Tuple[Any, ...]:
    """The content key under which a spec's allocated image is shared.

    Everything the kernel constructor and ``allocate`` depend on:
    kernel + dataset identity, the thread count (work splits and
    per-thread arrays), and the image dimensions.  Width, variant, and
    the remaining machine parameters only affect *execution*, so specs
    differing in just those share one entry.
    """
    return (
        spec.kernel,
        spec.dataset,
        config.n_threads,
        config.mem_size_bytes,
        config.line_bytes,
    )


class ImageCache:
    """Batch-scoped cache of allocated kernels and image snapshots.

    One entry per :func:`_intern_key`: the template kernel (allocated
    into a pristine template image that is never run) and the image
    snapshot.  :meth:`materialize` hands out a private hydrated image
    plus a kernel rebound onto it — the copy-on-write boundary is the
    word dict, copied once per machine.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[Any, ...], Tuple[Any, ImageSnapshot]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def materialize(self, spec: "RunSpec", config):
        """``(kernel, image)`` for ``spec``, building the template once."""
        from repro.sim.executor import _make_spec_kernel

        key = _intern_key(spec, config)
        entry = self._entries.get(key)
        if entry is None:
            kernel = _make_spec_kernel(spec, config.n_threads)
            template = MemoryImage(config.mem_size_bytes, config.geometry)
            kernel.allocate(template)
            entry = (kernel, template.snapshot())
            self._entries[key] = entry
        template_kernel, snap = entry
        image = MemoryImage.from_snapshot(snap)
        return template_kernel.rebound(image), image


class ProgramCache:
    """Once-per-batch program validation.

    Rebound kernels share their template's code objects, so one
    :func:`~repro.isa.program.check_program` per (intern key, variant)
    covers every thread of every machine in the combination.
    """

    def __init__(self) -> None:
        self._checked: set = set()

    def program(self, kernel, key: Tuple[Any, ...], variant: str):
        program = kernel.program(variant)
        cache_key = (key, variant)
        if cache_key not in self._checked:
            check_program(program)
            self._checked.add(cache_key)
        return program


@dataclass
class BatchResult:
    """One spec's outcome within a batch."""

    spec: "RunSpec"
    stats: MachineStats
    #: Estimated wall seconds attributable to this spec: the batch's
    #: simulation wall shared out proportionally to retired cycles
    #: (individual specs are interleaved, so their walls are not
    #: separately measurable), plus this spec's own setup/verify time.
    wall_s: float = 0.0


class BatchRunner:
    """Simulate many independent specs through one interleaved loop.

    ``specs`` may mix kernels, datasets, topologies, widths, variants,
    protocols, and warm/cold — each entry gets its own machine.  The
    caller (normally the executor) deduplicates; duplicate specs here
    would each simulate.

    ``chunk_cycles`` is the scheduling quantum: each heap pop runs one
    machine for up to that many simulated cycles before it rejoins the
    heap.  Machines never observe each other, so the quantum sets only
    the cross-machine interleave granularity (and the heap's overhead
    share), never any result — the determinism tests sweep it.
    """

    #: Default scheduling quantum.  Grid machines retire ~1e5 cycles,
    #: so this keeps the global heap to a few dozen ops per machine
    #: while still rotating the batch often enough that progress (and
    #: a hung machine's max_cycles abort) stays interleaved.
    CHUNK_CYCLES = 1 << 14

    def __init__(
        self,
        specs: Sequence["RunSpec"],
        verify: bool = True,
        chunk_cycles: Optional[int] = None,
    ) -> None:
        self.specs = list(specs)
        self.verify = verify
        self.chunk_cycles = chunk_cycles or self.CHUNK_CYCLES
        #: Filled by :meth:`run`: batch occupancy + timing facts.
        self.info: Dict[str, Any] = {}

    def run(self) -> List[BatchResult]:
        """Simulate every spec; results are in input order.

        Any simulation or verification error propagates (as on the
        solo path); machines are independent, so a failure says
        nothing about the other specs' correctness — callers that need
        isolation (the queue worker) catch and retry solo.
        """
        from repro.sim.runner import verify_run

        # The simulation loop allocates heavily but creates no cycles
        # that must die mid-batch; pausing the cyclic GC removes its
        # periodic full-heap scans (a measured ~7% of batch wall).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run(verify_run)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self, verify_run) -> List[BatchResult]:
        began = time.perf_counter()
        images = ImageCache()
        programs = ProgramCache()
        machines: List[Machine] = []
        kernels = []
        with intern_datasets():
            for spec in self.specs:
                config = spec.config()
                kernel, image = images.materialize(spec, config)
                machine = Machine(config, image=image)
                program = programs.program(
                    kernel, _intern_key(spec, config), spec.variant
                )
                for _ in range(config.n_threads):
                    machine.add_program(program, check=False)
                if spec.warm:
                    machine.warm_caches()
                machines.append(machine)
                kernels.append(kernel)
        setup_s = time.perf_counter() - began

        # -- the merged event heap ------------------------------------
        # One entry per live machine: (cycle, machine_id, core_id).
        # Each pop runs that machine's own loop from its next cycle up
        # to a chunk horizon; per-machine cycle sequences (and hence
        # stats) are identical to Machine.run's.
        sim_began = time.perf_counter()
        chunk = self.chunk_cycles
        heap: List[Tuple[int, int, int]] = []
        for machine_id, machine in enumerate(machines):
            start = machine.batch_begin()
            heap.append((start, machine_id, machine.next_core_id()))
        heapify(heap)
        while heap:
            cycle, machine_id, _ = heappop(heap)
            machine = machines[machine_id]
            nxt = machine.batch_step(cycle, cycle + chunk)
            if nxt is not None:
                heappush(heap, (nxt, machine_id, machine.next_core_id()))
        sim_s = time.perf_counter() - sim_began

        verify_began = time.perf_counter()
        if self.verify:
            for kernel, machine in zip(kernels, machines):
                verify_run(kernel, machine)
        verify_s = time.perf_counter() - verify_began

        total_cycles = sum(m.stats.cycles for m in machines) or 1
        overhead_each = (setup_s + verify_s) / len(machines) if machines else 0.0
        results = [
            BatchResult(
                spec=spec,
                stats=machine.stats,
                wall_s=(
                    sim_s * machine.stats.cycles / total_cycles
                    + overhead_each
                ),
            )
            for spec, machine in zip(self.specs, machines)
        ]
        self.info = {
            "occupancy": len(self.specs),
            "interned_images": len(images),
            "setup_s": setup_s,
            "sim_s": sim_s,
            "verify_s": verify_s,
            "wall_s": time.perf_counter() - began,
            "cycles": sum(m.stats.cycles for m in machines),
        }
        return results
