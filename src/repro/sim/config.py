"""Machine configuration.

Defaults reproduce Table 1 of the paper:

====================  =======================================
Number of cores       1-4
Threads per core      1-4 (SMT)
SIMD width            1, 4, 16
Core issue width      2
Private L1            32 KB, 4-way, 64 B lines, 3-cycle hit
Shared L2             16 MB, 8-way, 16 banks, 12-cycle min
Main memory           280 cycles
GLSC handling rate    1 element / cycle
Min GLSC latency      (4 + SIMD-width) cycles
====================  =======================================

The ``glsc_*`` policy knobs expose the design freedoms Section 3.2
enumerates; defaults match the configuration the paper evaluates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Dict

from repro.errors import ConfigError
from repro.mem.layout import LineGeometry
from repro.mem.protocol import DEFAULT_PROTOCOL, protocol_names

__all__ = ["MachineConfig", "CONFIG_NAMES", "named_config"]


def _is_pow2(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


@dataclass(frozen=True)
class MachineConfig:
    """Full parameterization of the simulated CMP."""

    # -- topology ---------------------------------------------------------
    n_cores: int = 1
    threads_per_core: int = 1
    simd_width: int = 4
    issue_width: int = 2

    # -- coherence protocol ------------------------------------------------
    # Which CoherenceProtocol policy the memory hierarchy runs (see
    # repro.mem.protocol): "msi" (the paper's baseline), "mesi", or
    # "moesi".  Digest-aware: the default is omitted from to_dict(),
    # so pre-seam RunSpec/store digests are unchanged.
    protocol: str = DEFAULT_PROTOCOL

    # -- L1 (private, per core) -------------------------------------------
    l1_size_bytes: int = 32 * 1024
    l1_assoc: int = 4
    line_bytes: int = 64
    l1_hit_latency: int = 3

    # -- L2 (shared, inclusive, banked) -------------------------------------
    l2_size_bytes: int = 16 * 1024 * 1024
    l2_assoc: int = 8
    l2_banks: int = 16
    l2_latency: int = 12
    # Cycles one access occupies its L2 bank; concurrent accesses to
    # the same bank queue (why the L2 is banked at all).
    l2_bank_busy_cycles: int = 2
    remote_l1_latency: int = 12

    # -- main memory ---------------------------------------------------------
    mem_latency: int = 280
    mem_size_bytes: int = 1 << 24

    # -- prefetcher -----------------------------------------------------------
    prefetch_enabled: bool = True
    prefetch_degree: int = 2

    # -- GSU / GLSC policies ---------------------------------------------------
    gsu_combine_lines: bool = True
    # Fixed per-instruction GSU overhead (decode, mask setup, result
    # assembly).  4 cycles makes the all-hit latency exactly the
    # (4 + SIMD-width) minimum of Table 1.
    gsu_assembly_cycles: int = 4
    glsc_fail_on_miss: bool = False
    glsc_fail_on_link_eviction: bool = True
    glsc_alias_in_gather: bool = False
    # 0 means GLSC entries live in the L1 tag array (one per line,
    # Section 3.3's primary design); > 0 selects the alternative small
    # fully-associative buffer with that many entries per core.
    glsc_buffer_entries: int = 0

    # -- failure injection -----------------------------------------------
    # Probability that any given reservation (scalar or GLSC) is
    # spuriously destroyed at each coherence transaction.  The paper's
    # best-effort model explicitly permits this ("it is acceptable to
    # have reservations invalidated for other reasons"), so correctness
    # must hold for any value < 1; used by the failure-injection tests.
    chaos_reservation_loss: float = 0.0
    chaos_seed: int = 12345

    # -- simulation limits --------------------------------------------------
    max_cycles: int = 200_000_000

    def __post_init__(self) -> None:
        if not 1 <= self.n_cores:
            raise ConfigError(f"n_cores must be >= 1, got {self.n_cores}")
        if not 1 <= self.threads_per_core:
            raise ConfigError(
                f"threads_per_core must be >= 1, got {self.threads_per_core}"
            )
        if self.simd_width < 1:
            raise ConfigError(
                f"simd_width must be >= 1, got {self.simd_width}"
            )
        if self.issue_width < 1:
            raise ConfigError(
                f"issue_width must be >= 1, got {self.issue_width}"
            )
        for name in ("l1_assoc", "l2_assoc", "l2_banks", "line_bytes"):
            value = getattr(self, name)
            if not _is_pow2(value):
                raise ConfigError(f"{name} must be a power of two, got {value}")
        if self.l1_size_bytes % (self.line_bytes * self.l1_assoc):
            raise ConfigError(
                "l1_size_bytes must be a multiple of line_bytes * l1_assoc"
            )
        if self.l2_size_bytes % (self.line_bytes * self.l2_assoc):
            raise ConfigError(
                "l2_size_bytes must be a multiple of line_bytes * l2_assoc"
            )
        for name in (
            "l1_hit_latency",
            "l2_latency",
            "l2_bank_busy_cycles",
            "remote_l1_latency",
            "mem_latency",
            "gsu_assembly_cycles",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.glsc_buffer_entries < 0:
            raise ConfigError("glsc_buffer_entries must be >= 0")
        if self.prefetch_degree < 1:
            raise ConfigError("prefetch_degree must be >= 1")
        if not 0 <= self.chaos_reservation_loss < 1:
            raise ConfigError(
                "chaos_reservation_loss must be in [0, 1) — losing every "
                "reservation would make forward progress impossible"
            )
        if self.protocol not in protocol_names():
            raise ConfigError(
                f"unknown coherence protocol {self.protocol!r}; "
                f"expected one of {protocol_names()}"
            )

    # -- derived -----------------------------------------------------------

    @property
    def n_threads(self) -> int:
        """Total hardware thread contexts (= software threads used)."""
        return self.n_cores * self.threads_per_core

    @property
    def l1_sets(self) -> int:
        """Number of sets in each private L1."""
        return self.l1_size_bytes // (self.line_bytes * self.l1_assoc)

    @property
    def l2_sets(self) -> int:
        """Number of sets in the shared L2 (across all banks)."""
        return self.l2_size_bytes // (self.line_bytes * self.l2_assoc)

    @property
    def geometry(self) -> LineGeometry:
        """Line-address arithmetic helper for this configuration."""
        return LineGeometry(self.line_bytes)

    @property
    def min_glsc_latency(self) -> int:
        """Best-case gather/scatter latency, (4 + SIMD width) in Table 1."""
        return 4 + self.simd_width

    def with_topology(
        self, n_cores: int, threads_per_core: int, simd_width: int = None
    ) -> "MachineConfig":
        """A copy with a different mxn (and optionally SIMD) topology."""
        if simd_width is None:
            simd_width = self.simd_width
        return replace(
            self,
            n_cores=n_cores,
            threads_per_core=threads_per_core,
            simd_width=simd_width,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Every configuration field as a plain JSON-able dict.

        Unlike :meth:`describe` (a human-oriented summary) this is
        lossless: it is the canonical form the run store digests, so a
        new or changed field automatically invalidates cached results.

        One deliberate exception: ``protocol`` is omitted while it
        holds the default (``"msi"``) so that every digest minted
        before the coherence seam existed — result-store entries,
        golden files, trajectory baselines — remains byte-identical.
        A non-default protocol *is* serialized and therefore digests
        differently, as it must.
        """
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        if out["protocol"] == DEFAULT_PROTOCOL:
            del out["protocol"]
        return out

    def digest(self) -> str:
        """Stable content hash of the full configuration.

        Computed over the canonical JSON of :meth:`to_dict` with sorted
        keys, so it is independent of field declaration order and
        process hash randomization, and changes whenever any parameter
        (including newly added ones) changes.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> Dict[str, Any]:
        """A flat dict of the Table 1 parameters, for reporting."""
        return {
            "cores": self.n_cores,
            "threads_per_core": self.threads_per_core,
            "simd_width": self.simd_width,
            "issue_width": self.issue_width,
            "l1": f"{self.l1_size_bytes // 1024}KB, {self.l1_assoc}-way, "
            f"{self.line_bytes}B line",
            "l2": f"{self.l2_size_bytes // (1024 * 1024)}MB, "
            f"{self.l2_assoc}-way, {self.l2_banks} banks",
            "l1_latency": self.l1_hit_latency,
            "min_l2_latency": self.l2_latency,
            "mem_latency": self.mem_latency,
            "min_glsc_latency": self.min_glsc_latency,
        }


#: The four core x thread topologies evaluated in the paper (Figure 6).
CONFIG_NAMES = ("1x1", "1x4", "4x1", "4x4")


def named_config(name: str, simd_width: int = 4, **overrides: Any) -> MachineConfig:
    """Build a config from the paper's ``mxn`` notation (e.g. ``"4x4"``).

    ``m`` is the core count, ``n`` the SMT threads per core, matching
    footnote 2 of the paper.
    """
    try:
        cores_str, threads_str = name.split("x")
        n_cores, threads_per_core = int(cores_str), int(threads_str)
    except ValueError as exc:
        raise ConfigError(f"bad topology name {name!r}; expected 'mxn'") from exc
    return MachineConfig(
        n_cores=n_cores,
        threads_per_core=threads_per_core,
        simd_width=simd_width,
        **overrides,
    )
