"""Declarative run API: specs, sweeps, and a parallel executor.

The paper's whole evaluation is a Cartesian sweep over
(kernel, dataset, topology, SIMD width, variant) — hundreds of
independent simulations.  This module makes each point a first-class
value:

* :class:`RunSpec` — an immutable, hashable description of one
  verified run (including config overrides and the warm-cache flag);
* :class:`Sweep` — an ordered collection of specs with a
  :meth:`Sweep.product` constructor for Cartesian grids;
* :func:`execute_spec` — the single execution path turning a spec into
  :class:`~repro.sim.stats.MachineStats` (also the worker entry point);
* :class:`Executor` — deduplicates a sweep, serves repeats from an
  in-memory memo and an optional on-disk
  :class:`~repro.sim.store.ResultStore`, and fans the remaining
  simulations out across a :class:`~concurrent.futures.ProcessPoolExecutor`.

Example::

    from repro.sim.executor import Executor, RunSpec, Sweep
    from repro.sim.store import ResultStore

    sweep = Sweep.product(
        kernels=("tms", "gbc"), datasets=("A", "B"),
        topologies=("1x1", "4x4"), widths=(4,),
        variants=("base", "glsc"),
    )
    ex = Executor(jobs=4, store=ResultStore())
    stats = ex.run_sweep(sweep)          # dict: RunSpec -> MachineStats
    print(stats[RunSpec("tms", "A", "4x4", 4, "glsc")].cycles)

Because every simulation is deterministic (seeded chaos, no wall-clock
coupling), a parallel sweep is bitwise-identical to a serial one; the
test suite asserts this.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import os
import time
from dataclasses import dataclass, replace
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigError, SimulationError
from repro.obs.telemetry import RunTelemetry, run_provenance
from repro.sim.config import MachineConfig, named_config
from repro.sim.stats import MachineStats
from repro.sim.store import ResultStore, STORE_VERSION

__all__ = ["RunSpec", "Sweep", "Executor", "execute_spec"]

#: Kernel-name prefix selecting the Section 5.2 microbenchmark; the
#: scenario letter follows the colon (``"micro:A"``).
MICRO_PREFIX = "micro:"

Overrides = Union[Mapping[str, Any], Iterable[Tuple[str, Any]]]


def _freeze_overrides(overrides: Optional[Overrides]) -> Tuple[Tuple[str, Any], ...]:
    """Normalize overrides to a sorted tuple of (name, value) pairs."""
    if not overrides:
        return ()
    items = (
        overrides.items() if isinstance(overrides, Mapping) else overrides
    )
    frozen = tuple(sorted((str(k), v) for k, v in items))
    names = [k for k, _ in frozen]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate override names in {names}")
    return frozen


@dataclass(frozen=True)
class RunSpec:
    """Immutable description of one verified simulation.

    ``overrides`` are extra :class:`MachineConfig` fields (beyond the
    topology and SIMD width) and may be given as a dict or pair
    iterable; they are canonicalized to a sorted tuple so equal specs
    hash equal regardless of construction order.  ``warm`` pre-loads
    the caches before measuring (the paper's microbenchmark protocol).
    """

    kernel: str
    dataset: str = "A"
    topology: str = "4x4"
    simd_width: int = 4
    variant: str = "glsc"
    overrides: Tuple[Tuple[str, Any], ...] = ()
    warm: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "overrides", _freeze_overrides(self.overrides)
        )

    # -- constructors ---------------------------------------------------

    @classmethod
    def micro(
        cls,
        scenario: str,
        topology: str = "4x4",
        simd_width: int = 4,
        variant: str = "glsc",
        overrides: Optional[Overrides] = None,
    ) -> "RunSpec":
        """A Section 5.2 microbenchmark spec (warm caches, no dataset)."""
        return cls(
            kernel=f"{MICRO_PREFIX}{scenario}",
            dataset="-",
            topology=topology,
            simd_width=simd_width,
            variant=variant,
            overrides=overrides or (),
            warm=True,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict` (store records, bench documents).

        Unknown keys are ignored so specs stored by newer writers stay
        loadable; overrides round-trip through the JSON pair-list form.
        """
        return cls(
            kernel=data["kernel"],
            dataset=data.get("dataset", "A"),
            topology=data.get("topology", "4x4"),
            simd_width=int(data.get("simd_width", 4)),
            variant=data.get("variant", "glsc"),
            overrides=tuple(
                (pair[0], pair[1]) for pair in data.get("overrides", ())
            ),
            warm=bool(data.get("warm", False)),
        )

    def with_overrides(self, **extra: Any) -> "RunSpec":
        """A copy with ``extra`` config overrides merged in (extra wins)."""
        merged = dict(self.overrides)
        merged.update(extra)
        return replace(self, overrides=_freeze_overrides(merged))

    # -- derived --------------------------------------------------------

    @property
    def is_micro(self) -> bool:
        """Whether this spec names a microbenchmark scenario."""
        return self.kernel.startswith(MICRO_PREFIX)

    @property
    def protocol(self) -> str:
        """The coherence protocol this spec resolves to.

        ``protocol`` is an ordinary :class:`MachineConfig` override
        (``spec.with_overrides(protocol="mesi")``); this accessor just
        surfaces the effective value without building the config.
        """
        from repro.mem.protocol import DEFAULT_PROTOCOL

        return dict(self.overrides).get("protocol", DEFAULT_PROTOCOL)

    def config(self) -> MachineConfig:
        """The fully resolved machine configuration for this spec."""
        return named_config(
            self.topology, simd_width=self.simd_width, **dict(self.overrides)
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form, stored alongside results for inspection."""
        return {
            "kernel": self.kernel,
            "dataset": self.dataset,
            "topology": self.topology,
            "simd_width": self.simd_width,
            "variant": self.variant,
            "overrides": [list(pair) for pair in self.overrides],
            "warm": self.warm,
        }

    def digest(self) -> str:
        """Content digest keying this run in the result store.

        Hashes the workload identity (kernel/dataset/variant/warm) plus
        the *resolved* :meth:`config` — every MachineConfig field, not
        just the overridden ones — and the store schema version.  Any
        config change, override change, or new config parameter thus
        yields a fresh digest, and two spellings of the same machine
        (e.g. topology ``"4x4"`` vs explicit core/thread overrides)
        share one entry.
        """
        payload = json.dumps(
            {
                "version": STORE_VERSION,
                "kernel": self.kernel,
                "dataset": self.dataset,
                "variant": self.variant,
                "warm": self.warm,
                "config": self.config().to_dict(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Compact human-readable identity (logs, progress lines)."""
        extra = "".join(f" {k}={v}" for k, v in self.overrides)
        warm = " warm" if self.warm else ""
        return (
            f"{self.kernel}/{self.dataset} {self.topology} "
            f"W{self.simd_width} {self.variant}{warm}{extra}"
        )


class Sweep:
    """An ordered collection of :class:`RunSpec` (duplicates allowed).

    Sweeps are what experiments *declare*: build the complete list of
    points up front, then hand it to :meth:`Executor.run_sweep`, which
    deduplicates and parallelizes.  Sweeps concatenate with ``+`` so a
    harness invocation can plan several figures as one dispatch.
    """

    def __init__(self, specs: Iterable[RunSpec] = ()) -> None:
        self.specs: List[RunSpec] = list(specs)

    @classmethod
    def product(
        cls,
        kernels: Sequence[str],
        datasets: Sequence[str] = ("A",),
        topologies: Sequence[str] = ("4x4",),
        widths: Sequence[int] = (4,),
        variants: Sequence[str] = ("glsc",),
        overrides: Optional[Overrides] = None,
        warm: bool = False,
    ) -> "Sweep":
        """The full Cartesian grid over the given axes."""
        frozen = _freeze_overrides(overrides)
        return cls(
            RunSpec(kernel, dataset, topology, width, variant, frozen, warm)
            for kernel in kernels
            for dataset in datasets
            for topology in topologies
            for width in widths
            for variant in variants
        )

    def add(self, spec: RunSpec) -> "Sweep":
        self.specs.append(spec)
        return self

    def extend(self, specs: Iterable[RunSpec]) -> "Sweep":
        self.specs.extend(specs)
        return self

    def distinct(self) -> List[RunSpec]:
        """The specs with duplicates removed, first-seen order kept."""
        seen: Dict[RunSpec, None] = {}
        for spec in self.specs:
            seen.setdefault(spec)
        return list(seen)

    def __add__(self, other: "Sweep") -> "Sweep":
        return Sweep(self.specs + list(other))

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        return f"Sweep({len(self.specs)} specs)"


def _make_spec_kernel(spec: RunSpec, n_threads: int):
    """Instantiate the kernel a spec names (registry or microbenchmark).

    Imported lazily so that importing the executor (e.g. via
    ``repro.sim``) never drags the full kernel/workload stack in — and
    to keep worker startup under ``fork`` cheap.
    """
    if spec.is_micro:
        from repro.kernels.micro import Micro

        scenario = spec.kernel[len(MICRO_PREFIX):]
        return Micro(n_threads, scenario=scenario)
    from repro.kernels.registry import make_kernel

    return make_kernel(spec.kernel, spec.dataset, n_threads)


def execute_spec(
    spec: RunSpec, verify: bool = True, tracer=None, obs=None,
    on_machine=None,
) -> MachineStats:
    """Simulate one spec from scratch and return its verified stats.

    This is the single execution path: the serial fast-path, the
    process-pool workers, and the profiling example all funnel through
    here, so a number can never depend on *how* it was scheduled.
    ``tracer`` and ``obs`` attach observers to the machine (see
    :func:`~repro.sim.runner.run_prepared`); ``on_machine`` is passed
    through for pre-run state capture (named memory regions).
    """
    from repro.sim.runner import run_prepared

    config = spec.config()
    kernel = _make_spec_kernel(spec, config.n_threads)
    return run_prepared(
        kernel,
        config,
        spec.variant,
        verify=verify,
        warm=spec.warm,
        tracer=tracer,
        obs=obs,
        on_machine=on_machine,
    )


def _worker(spec: RunSpec) -> Tuple[str, MachineStats, float, int]:
    """Process-pool entry point: (digest, stats, wall seconds, pid)."""
    started = time.perf_counter()
    stats = execute_spec(spec)
    return spec.digest(), stats, time.perf_counter() - started, os.getpid()


@dataclass
class ExecutorCounters:
    """Where an executor's results came from (for reporting)."""

    simulated: int = 0     # fresh simulations this process
    memo_hits: int = 0     # served from the in-memory memo
    store_hits: int = 0    # served from the on-disk store
    queued: int = 0        # simulated by detached queue workers
    batched: int = 0       # simulated by the in-process batch backend


class Executor:
    """Deduplicating, caching, parallel runner of :class:`RunSpec` s.

    ``jobs=1`` (the default) executes serially in-process;
    ``jobs>1`` dispatches across a ``ProcessPoolExecutor``.  Results
    are memoized in-memory for the executor's lifetime and, when a
    ``store`` is given, persisted on disk keyed by
    :meth:`RunSpec.digest`.

    ``overrides`` are executor-level :class:`MachineConfig` defaults
    applied to every spec (a spec's own overrides win on conflict) —
    the mechanism the ablation benches use to flip GLSC policies for a
    whole sweep at once.

    ``backend`` selects *where* fresh simulations run.  The default
    (``None``) simulates locally (serial or process pool, per
    ``jobs``).  ``backend="queue://<dir>"`` instead enqueues missing
    specs onto a shared :class:`~repro.service.queue.WorkQueue` and
    waits for detached ``repro worker`` processes — on this host or
    any other sharing the filesystem — to drain them into the store
    (which is therefore required).  The executor requeues expired
    leases while it waits, so worker crashes stall nothing, and every
    collected result is telemetry-tagged ``source="queue"`` with the
    producing worker's host from the record's provenance.
    ``backend="batch"`` packs cold specs into groups of ``batch_size``
    and simulates each group through one
    :class:`~repro.sim.batch.BatchRunner` — one process, shared
    interned inputs, one merged event heap — tagging results
    ``source="batch"`` with the batch id and occupancy.  Results are
    identical whichever backend runs them: a queue-drained or batched
    sweep's store records are byte-identical (sans provenance) to a
    serial run's, and the golden-equivalence tests pin this.

    Observers (``tracer``/``obs`` on :meth:`run`/:meth:`run_sweep`)
    force two departures from the caching pipeline, both deliberate:

    * **No process pool.**  Tracers and event buses hold live Python
      state (open files, growing lists) that cannot cross a
      ``ProcessPoolExecutor`` boundary — under ``fork`` the observer
      would fill up in the *child* and the parent's copy would stay
      silently empty.  Observed sweeps therefore always simulate
      in-process, even with ``jobs > 1``.
    * **No cache reads.**  A memo or store hit skips the simulation,
      so the observer would see nothing; an observed spec is always
      simulated fresh (the result is still memoized and persisted for
      later unobserved calls).

    Every spec served — simulated, memo hit, or store hit — appends a
    :class:`~repro.obs.telemetry.RunTelemetry` record to
    :attr:`telemetry` (wall time, simulated cycles/second, worker
    pid, source), which the harness surfaces via ``--telemetry``.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        backend: Optional[str] = None,
        batch_size: int = 16,
        queue_poll_s: float = 0.1,
        queue_timeout_s: Optional[float] = 600.0,
        **overrides: Any,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        self.jobs = jobs
        self.store = store
        self.batch_size = batch_size
        self.queue_poll_s = queue_poll_s
        self.queue_timeout_s = queue_timeout_s
        self._queue = None
        self._batched = False
        if backend == "batch":
            self._batched = True
        elif backend is not None:
            if store is None:
                raise ConfigError(
                    "backend requires a store: queue workers deliver "
                    "results through the shared ResultStore"
                )
            # Deferred import: repro.service sits above the sim layer.
            from repro.service.queue import WorkQueue

            self._queue = WorkQueue.from_url(backend)
        self.overrides = _freeze_overrides(overrides)
        self.counters = ExecutorCounters()
        self.telemetry: List[RunTelemetry] = []
        self._memo: Dict[str, MachineStats] = {}

    # -- spec resolution -----------------------------------------------

    def resolve(self, spec: RunSpec) -> RunSpec:
        """Merge executor-level overrides under the spec's own."""
        if not self.overrides:
            return spec
        merged = dict(self.overrides)
        merged.update(spec.overrides)
        return replace(spec, overrides=_freeze_overrides(merged))

    # -- execution ------------------------------------------------------

    def run(self, spec: RunSpec, tracer=None, obs=None) -> MachineStats:
        """Stats for one spec (simulating only if never seen before)."""
        return self.run_sweep(Sweep([spec]), tracer=tracer, obs=obs)[spec]

    def run_sweep(
        self,
        sweep: Union[Sweep, Iterable[RunSpec]],
        tracer=None,
        obs=None,
    ) -> Dict[RunSpec, MachineStats]:
        """Execute a sweep; returns ``{input spec: stats}``.

        Pipeline: deduplicate by content digest, serve what the memo or
        store already has, simulate the rest (in parallel when
        ``jobs > 1``), persist fresh results, and map every *input*
        spec — pre-resolution, so callers can look up with the specs
        they built — to its stats.

        Passing ``tracer`` or ``obs`` switches to observed mode: every
        distinct spec simulates fresh, in-process (see the class
        docstring for why caches and the process pool are bypassed).
        """
        if not isinstance(sweep, Sweep):
            sweep = Sweep(sweep)
        observed = tracer is not None or obs is not None

        digest_of: Dict[RunSpec, str] = {}
        pending: Dict[str, RunSpec] = {}
        for spec in sweep:
            if spec in digest_of:
                continue
            resolved = self.resolve(spec)
            digest = resolved.digest()
            digest_of[spec] = digest
            if digest in pending:
                continue
            if observed:
                pending[digest] = resolved
                continue
            if digest in self._memo:
                self.counters.memo_hits += 1
                self._note_served(resolved, digest, "memo")
                continue
            if self.store is not None:
                stored = self.store.load(digest)
                if stored is not None:
                    self._memo[digest] = stored
                    self.counters.store_hits += 1
                    self._note_served(resolved, digest, "store")
                    continue
            pending[digest] = resolved

        if pending:
            self._simulate(pending, tracer=tracer, obs=obs)

        return {spec: self._memo[digest] for spec, digest in digest_of.items()}

    def _simulate(
        self, pending: Dict[str, RunSpec], tracer=None, obs=None
    ) -> None:
        """Run every pending spec and record the results everywhere."""
        specs = list(pending.values())
        observed = tracer is not None or obs is not None
        if self._queue is not None and not observed:
            # Observed runs stay in-process even with a queue backend:
            # a detached worker cannot feed this process's observers.
            self._drain_via_queue(pending)
            return
        if self._batched and not observed:
            # Observed runs keep the solo path: BatchRunner machines
            # carry no tracer/bus, preserving the zero-overhead guard.
            self._simulate_batched(pending)
            return
        if not observed and self.jobs > 1 and len(specs) > 1:
            workers = min(self.jobs, len(specs))
            with concurrent.futures.ProcessPoolExecutor(workers) as pool:
                results = list(pool.map(_worker, specs))
        else:
            # Observers keep this path even at jobs > 1: their state
            # would be lost across a process boundary (class docstring).
            results = []
            for digest, spec in pending.items():
                started = time.perf_counter()
                stats = execute_spec(spec, tracer=tracer, obs=obs)
                results.append(
                    (digest, stats, time.perf_counter() - started,
                     os.getpid())
                )
        for digest, stats, wall_s, pid in results:
            self._memo[digest] = stats
            self.counters.simulated += 1
            spec = pending[digest]
            self.telemetry.append(
                RunTelemetry(
                    label=spec.label(),
                    digest=digest,
                    source="simulated",
                    cycles=stats.cycles,
                    instructions=stats.total_instructions,
                    wall_time_s=wall_s,
                    worker_pid=pid,
                    created=time.time(),
                )
            )
            if self.store is not None:
                provenance = run_provenance(wall_s)
                provenance["worker_pid"] = pid
                self.store.save(
                    digest,
                    stats,
                    spec=spec.to_dict(),
                    config=spec.config().to_dict(),
                    provenance=provenance,
                )

    def _simulate_batched(self, pending: Dict[str, RunSpec]) -> None:
        """Pack pending specs into batches and drain each in-process.

        Specs are packed in pending order, ``batch_size`` at a time;
        each group runs through one
        :class:`~repro.sim.batch.BatchRunner`.  Per-spec wall times are
        the runner's cycle-proportional shares of the batch wall, so
        telemetry sums stay meaningful; the batch id (a digest of the
        member digests) and occupancy land in both telemetry and store
        provenance.
        """
        from repro.sim.batch import BatchRunner

        items = list(pending.items())
        pid = os.getpid()
        for base in range(0, len(items), self.batch_size):
            group = items[base:base + self.batch_size]
            batch_id = hashlib.sha256(
                "".join(digest for digest, _ in group).encode("utf-8")
            ).hexdigest()[:12]
            runner = BatchRunner([spec for _, spec in group])
            results = runner.run()
            occupancy = len(group)
            for (digest, spec), result in zip(group, results):
                stats = result.stats
                self._memo[digest] = stats
                self.counters.batched += 1
                self.telemetry.append(
                    RunTelemetry(
                        label=spec.label(),
                        digest=digest,
                        source="batch",
                        cycles=stats.cycles,
                        instructions=stats.total_instructions,
                        wall_time_s=result.wall_s,
                        worker_pid=pid,
                        created=time.time(),
                        batch_id=batch_id,
                        batch_occupancy=occupancy,
                    )
                )
                if self.store is not None:
                    provenance = run_provenance(result.wall_s)
                    provenance["worker_pid"] = pid
                    provenance["batch_id"] = batch_id
                    provenance["batch_occupancy"] = occupancy
                    self.store.save(
                        digest,
                        stats,
                        spec=spec.to_dict(),
                        config=spec.config().to_dict(),
                        provenance=provenance,
                    )

    def _drain_via_queue(self, pending: Dict[str, RunSpec]) -> None:
        """Enqueue pending specs and collect worker-produced results.

        Specs are published as batch files of up to ``batch_size``
        (:meth:`~repro.service.queue.WorkQueue.submit_many`), so a
        claiming worker drains each file through one in-process
        :class:`~repro.sim.batch.BatchRunner` instead of N solo runs.
        The rendezvous is the shared store: workers save records keyed
        by digest, this loop polls for them (cheap existence checks,
        no tally churn), requeueing expired leases as it goes so a
        crashed worker's tasks are retried within one lease window.
        Each drain mints a sweep trace id (threaded through every
        payload; see :mod:`repro.obs.sweeptrace`), so even queue-only
        sweeps with no server are reconstructable afterwards.
        """
        from repro.obs.sweeptrace import new_trace_id

        trace_id = new_trace_id()
        items = list(pending.items())
        self._queue.submit_many(
            [spec for _, spec in items],
            self.batch_size,
            digests=[digest for digest, _ in items],
            trace_id=trace_id,
        )
        deadline = (
            None if self.queue_timeout_s is None
            else time.monotonic() + self.queue_timeout_s
        )
        waiting = dict(pending)
        started = time.perf_counter()
        while waiting:
            self._queue.requeue_expired()
            for digest in list(waiting):
                if not self.store.path_for(digest).exists():
                    continue
                record = self.store.load_record(digest)
                if record is None:
                    continue  # torn/invalid: treat as still pending
                spec = waiting.pop(digest)
                stats = MachineStats.from_dict(record["stats"])
                self._memo[digest] = stats
                self.counters.queued += 1
                provenance = record.get("provenance") or {}
                self.telemetry.append(
                    RunTelemetry(
                        label=spec.label(),
                        digest=digest,
                        source="queue",
                        cycles=stats.cycles,
                        instructions=stats.total_instructions,
                        wall_time_s=time.perf_counter() - started,
                        worker_pid=int(provenance.get("worker_pid", 0)),
                        worker_host=str(provenance.get("host", "")),
                        created=time.time(),
                        trace_id=str(provenance.get("trace_id", "")),
                    )
                )
            if not waiting:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise SimulationError(
                    f"queue backend timed out with {len(waiting)}/"
                    f"{len(pending)} specs unserved after "
                    f"{self.queue_timeout_s:.0f}s — are any "
                    "`repro worker` processes draining "
                    f"{self._queue.root}?"
                )
            time.sleep(self.queue_poll_s)

    def _note_served(
        self, spec: RunSpec, digest: str, source: str
    ) -> None:
        """Telemetry entry for a cache-served spec (no simulation)."""
        stats = self._memo[digest]
        self.telemetry.append(
            RunTelemetry(
                label=spec.label(),
                digest=digest,
                source=source,
                cycles=stats.cycles,
                instructions=stats.total_instructions,
                created=time.time(),
            )
        )

    # -- introspection --------------------------------------------------

    @property
    def simulations(self) -> int:
        """Fresh simulations performed by this executor."""
        return self.counters.simulated

    @property
    def store_hits(self) -> int:
        """Results served from the on-disk store instead of simulated."""
        return self.counters.store_hits

    def distinct_runs(self) -> int:
        """Distinct results this executor has produced or loaded."""
        return len(self._memo)
