"""Top-level machine: cores + memory hierarchy + cycle loop.

:class:`Machine` wires the configured number of cores to a shared
coherence system over one flat memory image, accepts one program per
hardware thread, and runs the cycle loop to completion.

The loop is cycle-quantized but event-skipping, and event-*driven*: a
min-heap of per-core wakeup cycles decides both which cores to tick
and how far to jump when no thread can issue.  Cores that cannot issue
at the current cycle are never visited (their round-robin pointers are
advanced lazily, see :meth:`~repro.core.core.Core.tick`), a live-thread
counter replaces the per-cycle all-done scan, and barrier arrivals are
reported by the cores instead of being rediscovered by scanning every
thread each cycle.  None of this changes observable timing: cycle
counts and stats are bit-identical to the reference loop
(``tests/bench/test_equivalence.py`` holds the golden values).

Barriers are resolved here: a thread executing a ``barrier``
instruction parks until every live thread in its group has arrived,
then all are released together after a small rendezvous cost.  The
wait shows up as synchronization time, which is exactly how the
paper accounts for it (Figure 5a).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import List, Optional, Tuple

from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.core.core import Core, HwThread, T_READY
from repro.isa.program import Program, ThreadCtx, check_program
from repro.mem.coherence import CoherenceSystem
from repro.mem.image import MemoryImage
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats

__all__ = ["Machine"]

#: Cycles between the last barrier arrival and the group's release;
#: approximates the chip-crossing notification of a hardware barrier.
BARRIER_RELEASE_COST = 24


class Machine:
    """A simulated CMP executing one program per hardware thread."""

    def __init__(
        self,
        config: MachineConfig,
        image: Optional[MemoryImage] = None,
        tracer=None,
        obs=None,
    ) -> None:
        """``tracer`` observes retired instructions (legacy seam);
        ``obs`` is an :class:`~repro.obs.bus.EventBus` receiving the
        full typed event stream (instructions, cache/coherence
        traffic, reservations, GLSC element outcomes).  Both are
        optional and cost nothing when absent.
        """
        self.config = config
        self.image = image or MemoryImage(
            config.mem_size_bytes, config.geometry
        )
        if self.image.geometry.line_bytes != config.line_bytes:
            raise ConfigError(
                "memory image line size disagrees with machine config"
            )
        self.stats = MachineStats()
        self.obs = obs
        self.coherence = CoherenceSystem(config, self.stats, obs=obs)
        self.tracer = tracer
        self.cores: List[Core] = [
            Core(
                core_id, config, self.coherence, self.image, self.stats,
                tracer=tracer, obs=obs,
            )
            for core_id in range(config.n_cores)
        ]
        self.threads: List[HwThread] = []
        self._ran = False

    # -- setup ----------------------------------------------------------

    def add_program(self, program: Program, check: bool = True) -> int:
        """Attach ``program`` to the next hardware thread; returns its tid.

        Threads are distributed cyclically over cores (thread ``t`` runs
        on core ``t mod n_cores``), matching the even work split the
        paper's benchmarks use.

        ``check=False`` skips program validation — for callers (the
        batched backend) that already validated this program object
        once and attach it to many threads/machines.
        """
        if check:
            check_program(program)
        tid = len(self.threads)
        if tid >= self.config.n_threads:
            raise ConfigError(
                f"machine has only {self.config.n_threads} hardware threads"
            )
        core = self.cores[tid % self.config.n_cores]
        slot = len(core.threads)
        ctx = ThreadCtx(tid, self.config.n_threads, self.config.simd_width)
        thread = HwThread(tid, slot, program, ctx, self.stats.new_thread())
        core.add_thread(thread)
        self.threads.append(thread)
        return tid

    def add_programs(self, programs: List[Program]) -> None:
        """Attach one program per hardware thread (must fill the machine)."""
        if len(programs) != self.config.n_threads:
            raise ConfigError(
                f"expected {self.config.n_threads} programs, "
                f"got {len(programs)}"
            )
        for program in programs:
            self.add_program(program)

    def warm_caches(self) -> None:
        """Pre-load every allocated line into every core's L1 (S state).

        The paper warms caches before measuring (Section 5.2), and its
        datasets are large enough that cold misses amortize away; our
        scaled-down datasets would otherwise be dominated by compulsory
        misses.  Warming traffic is excluded from the statistics.

        The fill uses :meth:`CoherenceSystem.warm_fill`, which skips
        the per-access accounting of the full ``read`` transaction but
        leaves the identical cache/directory/bank/prefetcher end state.
        When chaos injection is configured the slow per-read path is
        used instead so the RNG draw sequence matches the reference.
        """
        if self._ran:
            raise SimulationError("cannot warm caches after run()")
        line_bytes = self.config.line_bytes
        first = line_bytes  # line 0 is the allocator's null sentinel
        limit = self.image.bytes_allocated
        # Warming is excluded from the statistics, so it is excluded
        # from the event stream too: sinks see only measured traffic.
        saved_obs = self.coherence.obs
        self.coherence.obs = None
        try:
            if self.coherence.can_warm_fill():
                self.coherence.warm_fill(first, limit)
            else:
                for core_id in range(self.config.n_cores):
                    for line in range(first, limit, line_bytes):
                        self.coherence.read(core_id, 0, line, now=0)
        finally:
            self.coherence.obs = saved_obs
        self.coherence.prefetcher.reset()
        self.stats.reset_counters()

    # -- main loop ----------------------------------------------------------

    def run(self) -> MachineStats:
        """Run all programs to completion; returns the machine stats."""
        if self._ran:
            raise SimulationError("a Machine can only be run once")
        self._ran = True
        if not self.threads:
            raise SimulationError("no programs attached")
        cores = self.cores
        max_cycles = self.config.max_cycles
        live = len(self.threads)
        # Cores report thread lifecycle changes into these shared lists
        # so the loop never rescans all threads.
        done_events: List[HwThread] = []
        barrier_arrivals: List[HwThread] = []
        barrier_waiters: List[HwThread] = []
        # Wakeup heap: (cycle, core_id) for every core that has a READY
        # thread.  An entry is current iff its cycle still equals the
        # core's cached ``_next_ready``; anything else is stale and is
        # dropped when popped (values are re-pushed on every change, so
        # a current entry always exists).
        heap: List[Tuple[int, int]] = []
        for core in cores:
            core.done_events = done_events
            core.barrier_arrivals = barrier_arrivals
            ready = core.next_ready_cycle()
            core._next_ready = ready
            if ready is not None:
                heap.append((ready, core.core_id))
        heapify(heap)
        cycle = 0
        it = 0
        if len(cores) == 1:
            # Single-core machines need no wakeup heap: the one core is
            # ticked every iteration (its next READY cycle *is* the
            # clock), which drops all heap bookkeeping from the loop.
            # Tick/advance ordering, `it` sequencing, and every error
            # edge match the general loop below exactly.
            core = cores[0]
            while True:
                wake = core.tick(cycle, it)
                if done_events:
                    live -= len(done_events)
                    del done_events[:]
                if barrier_arrivals:
                    for thread in barrier_arrivals:
                        if thread.barrier_group != "all":
                            raise SimulationError(
                                f"unknown barrier group "
                                f"{thread.barrier_group!r}; only 'all' is "
                                f"supported by the machine barrier"
                            )
                    barrier_waiters.extend(barrier_arrivals)
                    del barrier_arrivals[:]
                if barrier_waiters and len(barrier_waiters) == live:
                    self._release_barrier(barrier_waiters, cycle, heap)
                    wake = core._next_ready
                if live == 0:
                    cycle += 1
                    if cycle > max_cycles:
                        raise SimulationError(
                            f"exceeded max_cycles={max_cycles}; "
                            f"likely livelock"
                        )
                    break
                if wake is None:
                    raise DeadlockError(
                        "all live threads are blocked at barriers that "
                        "cannot be released"
                    )
                cycle = cycle + 1 if wake <= cycle else wake
                if cycle > max_cycles:
                    raise SimulationError(
                        f"exceeded max_cycles={max_cycles}; likely livelock"
                    )
                it += 1
            self.stats.cycles = max(
                t.stats.finish_cycle for t in self.threads
            )
            return self.stats
        to_tick: List[int] = []
        while True:
            # -- tick every core with a thread runnable at `cycle`,
            #    in core-id order (shared L2-bank/directory state makes
            #    the order observable).
            del to_tick[:]
            while heap and heap[0][0] <= cycle:
                entry = heappop(heap)
                cid = entry[1]
                if cores[cid]._next_ready == entry[0] and cid not in to_tick:
                    to_tick.append(cid)
            to_tick.sort()
            for cid in to_tick:
                core = cores[cid]
                ready = core.tick(cycle, it)
                core._next_ready = ready
                if ready is not None:
                    heappush(heap, (ready, cid))
            # -- thread lifecycle events from this round of ticks
            if done_events:
                live -= len(done_events)
                del done_events[:]
            if barrier_arrivals:
                for thread in barrier_arrivals:
                    if thread.barrier_group != "all":
                        raise SimulationError(
                            f"unknown barrier group "
                            f"{thread.barrier_group!r}; only 'all' is "
                            f"supported by the machine barrier"
                        )
                barrier_waiters.extend(barrier_arrivals)
                del barrier_arrivals[:]
            if barrier_waiters and len(barrier_waiters) == live:
                self._release_barrier(barrier_waiters, cycle, heap)
            # -- advance the clock
            if live == 0:
                cycle += 1
                if cycle > max_cycles:
                    raise SimulationError(
                        f"exceeded max_cycles={max_cycles}; likely livelock"
                    )
                break
            while heap and cores[heap[0][1]]._next_ready != heap[0][0]:
                heappop(heap)
            if not heap:
                # Threads exist but none is READY: they must all be
                # parked at barriers that cannot be released.
                raise DeadlockError(
                    "all live threads are blocked at barriers that cannot "
                    "be released"
                )
            wake = heap[0][0]
            cycle = cycle + 1 if wake <= cycle else wake
            if cycle > max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={max_cycles}; likely livelock"
                )
            it += 1
        self.stats.cycles = max(
            t.stats.finish_cycle for t in self.threads
        )
        return self.stats

    # -- batched execution seam ---------------------------------------------

    def batch_begin(self) -> int:
        """Prepare this machine for externally driven iteration.

        The batched backend (:mod:`repro.sim.batch`) drains many
        machines through one interleaved event heap; instead of
        :meth:`run` owning the loop, the driver calls
        :meth:`batch_step` once per iteration at the cycle this method
        (and then each step) hands back.  The per-iteration work is a
        verbatim transcription of the general loop in :meth:`run` —
        same tick ordering, barrier handling, advancement rule, and
        error edges — so a batched machine retires bit-identical stats
        (the golden-equivalence tests pin this).

        Returns the cycle of the first iteration (always 0, matching
        :meth:`run`).
        """
        if self._ran:
            raise SimulationError("a Machine can only be run once")
        self._ran = True
        if not self.threads:
            raise SimulationError("no programs attached")
        self._b_live = len(self.threads)
        done_events: List[HwThread] = []
        barrier_arrivals: List[HwThread] = []
        self._b_done_events = done_events
        self._b_barrier_arrivals = barrier_arrivals
        self._b_barrier_waiters: List[HwThread] = []
        heap: List[Tuple[int, int]] = []
        for core in self.cores:
            core.done_events = done_events
            core.barrier_arrivals = barrier_arrivals
            ready = core.next_ready_cycle()
            core._next_ready = ready
            if ready is not None:
                heap.append((ready, core.core_id))
        heapify(heap)
        self._b_heap = heap
        self._b_to_tick: List[int] = []
        self._b_it = 0
        return 0

    def next_core_id(self) -> int:
        """Core id of this machine's next wakeup (0 when none pending).

        Purely informational — the batch driver uses it as the third
        element of its ``(cycle, machine_id, core_id)`` heap key so the
        interleave order is fully specified (machines are independent,
        so the cross-machine order is unobservable either way).
        """
        heap = self._b_heap
        return heap[0][1] if heap else 0

    def batch_step(self, cycle: int, horizon: int) -> Optional[int]:
        """Execute loop iterations from ``cycle`` up through ``horizon``.

        Runs the machine's own loop — a verbatim transcription of
        :meth:`run`, including its single-core specialization — until
        the next iteration's cycle exceeds ``horizon``, then returns
        that cycle so the batch driver can re-queue this machine;
        returns ``None`` when every thread has finished
        (``stats.cycles`` is final).  Because a machine's cycle
        sequence never depends on other machines, the horizon only
        sets the cross-machine interleave granularity, not any result.
        Loop state lives in locals within a chunk (the hot path is as
        tight as :meth:`run`'s) and is saved back to ``_b_*``
        attributes only at chunk boundaries.
        """
        cores = self.cores
        heap = self._b_heap
        max_cycles = self.config.max_cycles
        live = self._b_live
        done_events = self._b_done_events
        barrier_arrivals = self._b_barrier_arrivals
        barrier_waiters = self._b_barrier_waiters
        it = self._b_it
        if len(cores) == 1:
            core = cores[0]
            while True:
                wake = core.tick(cycle, it)
                if done_events:
                    live -= len(done_events)
                    del done_events[:]
                if barrier_arrivals:
                    for thread in barrier_arrivals:
                        if thread.barrier_group != "all":
                            raise SimulationError(
                                f"unknown barrier group "
                                f"{thread.barrier_group!r}; only 'all' is "
                                f"supported by the machine barrier"
                            )
                    barrier_waiters.extend(barrier_arrivals)
                    del barrier_arrivals[:]
                if barrier_waiters and len(barrier_waiters) == live:
                    self._release_barrier(barrier_waiters, cycle, heap)
                    wake = core._next_ready
                if live == 0:
                    cycle += 1
                    if cycle > max_cycles:
                        raise SimulationError(
                            f"exceeded max_cycles={max_cycles}; "
                            f"likely livelock"
                        )
                    self._b_live = 0
                    self.stats.cycles = max(
                        t.stats.finish_cycle for t in self.threads
                    )
                    return None
                if wake is None:
                    raise DeadlockError(
                        "all live threads are blocked at barriers that "
                        "cannot be released"
                    )
                cycle = cycle + 1 if wake <= cycle else wake
                if cycle > max_cycles:
                    raise SimulationError(
                        f"exceeded max_cycles={max_cycles}; likely livelock"
                    )
                it += 1
                if cycle > horizon:
                    self._b_live = live
                    self._b_it = it
                    return cycle
        to_tick = self._b_to_tick
        while True:
            del to_tick[:]
            while heap and heap[0][0] <= cycle:
                entry = heappop(heap)
                cid = entry[1]
                if cores[cid]._next_ready == entry[0] and cid not in to_tick:
                    to_tick.append(cid)
            to_tick.sort()
            for cid in to_tick:
                core = cores[cid]
                ready = core.tick(cycle, it)
                core._next_ready = ready
                if ready is not None:
                    heappush(heap, (ready, cid))
            if done_events:
                live -= len(done_events)
                del done_events[:]
            if barrier_arrivals:
                for thread in barrier_arrivals:
                    if thread.barrier_group != "all":
                        raise SimulationError(
                            f"unknown barrier group "
                            f"{thread.barrier_group!r}; only 'all' is "
                            f"supported by the machine barrier"
                        )
                barrier_waiters.extend(barrier_arrivals)
                del barrier_arrivals[:]
            if barrier_waiters and len(barrier_waiters) == live:
                self._release_barrier(barrier_waiters, cycle, heap)
            if live == 0:
                cycle += 1
                if cycle > max_cycles:
                    raise SimulationError(
                        f"exceeded max_cycles={max_cycles}; likely livelock"
                    )
                self._b_live = 0
                self.stats.cycles = max(
                    t.stats.finish_cycle for t in self.threads
                )
                return None
            while heap and cores[heap[0][1]]._next_ready != heap[0][0]:
                heappop(heap)
            if not heap:
                raise DeadlockError(
                    "all live threads are blocked at barriers that cannot "
                    "be released"
                )
            wake = heap[0][0]
            cycle = cycle + 1 if wake <= cycle else wake
            if cycle > max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={max_cycles}; likely livelock"
                )
            it += 1
            if cycle > horizon:
                self._b_live = live
                self._b_it = it
                return cycle

    # -- internals --------------------------------------------------------------

    def _release_barrier(
        self,
        waiters: List[HwThread],
        now: int,
        heap: List[Tuple[int, int]],
    ) -> None:
        """Release all barrier waiters; reschedule their cores' wakeups."""
        release = now + BARRIER_RELEASE_COST
        cores_affected = set()
        for thread in waiters:
            wait = release - thread.barrier_since
            thread.stats.sync_cycles += wait
            thread.stats.busy_cycles += wait
            thread.state = T_READY
            thread.ready_at = release
            thread.barrier_group = None
            cores_affected.add(thread.core_id)
        del waiters[:]
        for cid in sorted(cores_affected):
            core = self.cores[cid]
            ready = core.next_ready_cycle()
            core._next_ready = ready
            if ready is not None:
                heappush(heap, (ready, cid))
