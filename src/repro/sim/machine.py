"""Top-level machine: cores + memory hierarchy + cycle loop.

:class:`Machine` wires the configured number of cores to a shared
coherence system over one flat memory image, accepts one program per
hardware thread, and runs the cycle loop to completion.

The loop is cycle-quantized but event-skipping: when no thread can
issue at the current cycle, time jumps to the earliest wakeup.  This
keeps long memory stalls cheap to simulate without changing observable
timing.

Barriers are resolved here: a thread executing a ``barrier``
instruction parks until every live thread in its group has arrived,
then all are released together after a small rendezvous cost.  The
wait shows up as synchronization time, which is exactly how the
paper accounts for it (Figure 5a).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.core.core import Core, HwThread, T_BARRIER, T_DONE, T_READY
from repro.isa.program import Program, ThreadCtx, check_program
from repro.mem.coherence import CoherenceSystem
from repro.mem.image import MemoryImage
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats

__all__ = ["Machine"]

#: Cycles between the last barrier arrival and the group's release;
#: approximates the chip-crossing notification of a hardware barrier.
BARRIER_RELEASE_COST = 24


class Machine:
    """A simulated CMP executing one program per hardware thread."""

    def __init__(
        self,
        config: MachineConfig,
        image: Optional[MemoryImage] = None,
        tracer=None,
        obs=None,
    ) -> None:
        """``tracer`` observes retired instructions (legacy seam);
        ``obs`` is an :class:`~repro.obs.bus.EventBus` receiving the
        full typed event stream (instructions, cache/coherence
        traffic, reservations, GLSC element outcomes).  Both are
        optional and cost nothing when absent.
        """
        self.config = config
        self.image = image or MemoryImage(
            config.mem_size_bytes, config.geometry
        )
        if self.image.geometry.line_bytes != config.line_bytes:
            raise ConfigError(
                "memory image line size disagrees with machine config"
            )
        self.stats = MachineStats()
        self.obs = obs
        self.coherence = CoherenceSystem(config, self.stats, obs=obs)
        self.tracer = tracer
        self.cores: List[Core] = [
            Core(
                core_id, config, self.coherence, self.image, self.stats,
                tracer=tracer, obs=obs,
            )
            for core_id in range(config.n_cores)
        ]
        self.threads: List[HwThread] = []
        self._ran = False

    # -- setup ----------------------------------------------------------

    def add_program(self, program: Program) -> int:
        """Attach ``program`` to the next hardware thread; returns its tid.

        Threads are distributed cyclically over cores (thread ``t`` runs
        on core ``t mod n_cores``), matching the even work split the
        paper's benchmarks use.
        """
        check_program(program)
        tid = len(self.threads)
        if tid >= self.config.n_threads:
            raise ConfigError(
                f"machine has only {self.config.n_threads} hardware threads"
            )
        core = self.cores[tid % self.config.n_cores]
        slot = len(core.threads)
        ctx = ThreadCtx(tid, self.config.n_threads, self.config.simd_width)
        thread = HwThread(tid, slot, program, ctx, self.stats.new_thread())
        core.add_thread(thread)
        self.threads.append(thread)
        return tid

    def add_programs(self, programs: List[Program]) -> None:
        """Attach one program per hardware thread (must fill the machine)."""
        if len(programs) != self.config.n_threads:
            raise ConfigError(
                f"expected {self.config.n_threads} programs, "
                f"got {len(programs)}"
            )
        for program in programs:
            self.add_program(program)

    def warm_caches(self) -> None:
        """Pre-load every allocated line into every core's L1 (S state).

        The paper warms caches before measuring (Section 5.2), and its
        datasets are large enough that cold misses amortize away; our
        scaled-down datasets would otherwise be dominated by compulsory
        misses.  Warming traffic is excluded from the statistics.
        """
        if self._ran:
            raise SimulationError("cannot warm caches after run()")
        line_bytes = self.config.line_bytes
        first = line_bytes  # line 0 is the allocator's null sentinel
        # Warming is excluded from the statistics, so it is excluded
        # from the event stream too: sinks see only measured traffic.
        saved_obs = self.coherence.obs
        self.coherence.obs = None
        try:
            for core_id in range(self.config.n_cores):
                for line in range(
                    first, self.image.bytes_allocated, line_bytes
                ):
                    self.coherence.read(core_id, 0, line, now=0)
        finally:
            self.coherence.obs = saved_obs
        self.coherence.prefetcher.reset()
        self.stats.reset_counters()

    # -- main loop ----------------------------------------------------------

    def run(self) -> MachineStats:
        """Run all programs to completion; returns the machine stats."""
        if self._ran:
            raise SimulationError("a Machine can only be run once")
        self._ran = True
        if not self.threads:
            raise SimulationError("no programs attached")
        cycle = 0
        while not all(core.all_done() for core in self.cores):
            for core in self.cores:
                core.tick(cycle)
            self._resolve_barriers(cycle)
            cycle = self._advance_clock(cycle)
            if cycle > self.config.max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.config.max_cycles}; "
                    f"likely livelock"
                )
        self.stats.cycles = max(
            (t.stats.finish_cycle for t in self.threads), default=cycle
        )
        return self.stats

    # -- internals --------------------------------------------------------------

    def _resolve_barriers(self, now: int) -> None:
        """Release every barrier group whose live members all arrived."""
        waiting: Dict[str, List[HwThread]] = defaultdict(list)
        live_by_group: Dict[str, int] = defaultdict(int)
        for thread in self.threads:
            if thread.state == T_BARRIER:
                waiting[thread.barrier_group].append(thread)
            if thread.state != T_DONE:
                live_by_group["all"] += 1
        for group, members in waiting.items():
            expected = (
                live_by_group["all"] if group == "all" else None
            )
            if expected is None:
                raise SimulationError(
                    f"unknown barrier group {group!r}; only 'all' is "
                    f"supported by the machine barrier"
                )
            if len(members) == expected:
                release = now + BARRIER_RELEASE_COST
                for thread in members:
                    wait = release - thread.barrier_since
                    thread.stats.sync_cycles += wait
                    thread.stats.busy_cycles += wait
                    thread.state = T_READY
                    thread.ready_at = release
                    thread.barrier_group = None

    def _advance_clock(self, cycle: int) -> int:
        """Next cycle to simulate, skipping idle gaps."""
        wakeups = []
        for core in self.cores:
            ready = core.next_ready_cycle()
            if ready is not None:
                wakeups.append(ready)
        if not wakeups:
            if all(core.all_done() for core in self.cores):
                return cycle + 1
            # Threads exist but none is READY: they must all be parked
            # at barriers that cannot release.
            raise DeadlockError(
                "all live threads are blocked at barriers that cannot "
                "be released"
            )
        return max(cycle + 1, min(wakeups))
