"""High-level run API: kernel x dataset x machine config x variant.

This is the seam the harness, benches, and examples share::

    from repro.sim.runner import run_kernel

    result = run_kernel("hip", "A", named_config("4x4"), "glsc")
    print(result.stats.cycles)

Every run builds a fresh machine and kernel instance, executes to
completion, and verifies the kernel's output against its oracle, so a
timing number from this API always comes from a *correct* execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.common import KernelBase
from repro.kernels.registry import make_kernel
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.stats import MachineStats

__all__ = ["RunResult", "run_kernel", "run_prepared", "verify_run"]


def verify_run(kernel: KernelBase, machine: Machine) -> None:
    """Post-run correctness checks shared by the solo and batched paths:
    the kernel's output oracle, then the coherence system's global
    invariants."""
    kernel.verify()
    machine.coherence.check_invariants()


@dataclass
class RunResult:
    """Outcome of one verified kernel run."""

    kernel_name: str
    dataset: str
    variant: str
    config: MachineConfig
    stats: MachineStats

    @property
    def cycles(self) -> int:
        """Execution time of the run, in cycles."""
        return self.stats.cycles


def run_prepared(
    kernel: KernelBase,
    config: MachineConfig,
    variant: str,
    verify: bool = True,
    warm: bool = False,
    tracer=None,
    obs=None,
    on_machine=None,
) -> MachineStats:
    """Run an already-constructed kernel instance on a fresh machine.

    ``warm`` pre-loads the kernel's data into the caches and resets the
    statistics.  The paper's *microbenchmark* is measured warm
    (Section 5.2), but its application benchmarks run cold: the misses
    on the sparse shared structures — and GLSC's ability to overlap
    them — are a large part of the measured effect, so kernels default
    to cold caches and rely on the stride prefetcher for their
    streaming inputs, as the paper's machine does.

    ``tracer`` attaches an :class:`~repro.sim.trace.InstructionTrace`
    (or compatible observer) to the machine; ``obs`` attaches an
    :class:`~repro.obs.bus.EventBus` for the full typed event stream.
    Observation never changes timing, only records it.

    ``on_machine``, when given, is called with the machine right after
    the kernel allocates — diagnostics use it to capture pre-run state
    (e.g. the memory image's named regions for symbolization).
    """
    machine = Machine(config, tracer=tracer, obs=obs)
    kernel.allocate(machine.image)
    if on_machine is not None:
        on_machine(machine)
    program = kernel.program(variant)
    for _ in range(config.n_threads):
        machine.add_program(program)
    if warm:
        machine.warm_caches()
    stats = machine.run()
    if verify:
        verify_run(kernel, machine)
    return stats


def run_kernel(
    name: str,
    dataset: str,
    config: MachineConfig,
    variant: str,
    verify: bool = True,
    warm: bool = False,
    tracer=None,
    obs=None,
) -> RunResult:
    """Run kernel ``name`` on ``dataset`` under ``config``/``variant``."""
    kernel = make_kernel(name, dataset, config.n_threads)
    stats = run_prepared(
        kernel, config, variant, verify=verify, warm=warm, tracer=tracer,
        obs=obs,
    )
    return RunResult(name, dataset, variant, config, stats)
