"""Simulation statistics.

The counters here are exactly the quantities the paper's evaluation
reports:

* dynamic instruction counts (Table 4, "Instructions" column),
* memory stall cycles (Table 4, "Memory Stalls"),
* L1 accesses, split into those caused by atomic/synchronization
  operations, plus the accesses *saved* by GSU line combining
  (Table 4, "L1 Accesses"),
* GLSC element attempts/failures broken down by cause (Table 4 failure
  rates; Section 5.1 attributes failures to aliasing, cross-thread
  collisions, and evictions),
* cycles spent in synchronization operations (Figure 5a).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List

__all__ = ["ThreadStats", "MachineStats", "FAILURE_CAUSES"]

#: Causes for a GLSC element failing, per Section 5.1's analysis.
FAILURE_CAUSES = (
    "alias",          # two lanes of one instruction target the same word
    "thread_conflict",  # reservation lost to another thread's write
    "link_stolen",    # another SMT thread on this core held the line's link
    "eviction",       # linked line evicted / would evict a linked line
    "miss_policy",    # policy chose to fail a missing lane (Section 3.2c)
)


@dataclass(slots=True)
class ThreadStats:
    """Counters for one software thread."""

    instructions: int = 0
    sync_instructions: int = 0
    mem_instructions: int = 0
    mem_stall_cycles: int = 0
    sync_cycles: int = 0
    busy_cycles: int = 0
    finish_cycle: int = 0

    def to_dict(self) -> Dict[str, int]:
        """All counters as a plain JSON-able dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ThreadStats":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(slots=True)
class MachineStats:
    """Counters for the whole machine plus per-thread detail."""

    cycles: int = 0
    threads: List[ThreadStats] = field(default_factory=list)

    # -- cache/memory hierarchy ------------------------------------------
    l1_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l1_sync_accesses: int = 0
    l1_accesses_saved_by_combining: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    mem_accesses: int = 0
    invalidations_sent: int = 0
    writebacks: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0

    # -- scalar atomics ---------------------------------------------------
    ll_count: int = 0
    sc_count: int = 0
    sc_failures: int = 0

    # -- GLSC ----------------------------------------------------------------
    gatherlink_count: int = 0
    scattercond_count: int = 0
    gatherlink_elements: int = 0
    scattercond_elements: int = 0
    scattercond_successes: int = 0
    glsc_element_failures: Dict[str, int] = field(
        default_factory=lambda: {cause: 0 for cause in FAILURE_CAUSES}
    )

    # -- derived ---------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        """Dynamic instructions summed over all threads."""
        return sum(t.instructions for t in self.threads)

    @property
    def total_mem_stall_cycles(self) -> int:
        """Memory stall cycles summed over all threads."""
        return sum(t.mem_stall_cycles for t in self.threads)

    @property
    def total_sync_cycles(self) -> int:
        """Cycles in synchronization operations, summed over threads."""
        return sum(t.sync_cycles for t in self.threads)

    @property
    def glsc_element_attempts(self) -> int:
        """Total lanes that entered a gather-link instruction.

        The paper's failure rate counts atomic *element operations*; a
        retried lane counts again, so the denominator is attempts, not
        unique elements.
        """
        return self.gatherlink_elements

    @property
    def glsc_failures_total(self) -> int:
        """Total failed GLSC element operations across all causes."""
        return sum(self.glsc_element_failures.values())

    @property
    def glsc_failure_rate(self) -> float:
        """Fraction of GLSC element operations that failed (Table 4).

        An element operation is one lane's gather-link -> scatter-cond
        attempt; it fails if the lane does not complete its update this
        iteration (lost reservation, alias loser, contended lock, ...).
        Computed as 1 - completions/attempts so that failures the GSU
        cannot observe directly (a lane the kernel masked out after
        seeing a taken lock) are still counted, matching Table 4.
        """
        if self.gatherlink_elements == 0:
            return 0.0
        rate = 1.0 - self.scattercond_successes / self.gatherlink_elements
        return max(0.0, rate)

    @property
    def sync_fraction(self) -> float:
        """Fraction of execution time in synchronization ops (Figure 5a).

        Normalized per thread-cycle: total sync cycles over
        (machine cycles x thread count).
        """
        if self.cycles == 0 or not self.threads:
            return 0.0
        return self.total_sync_cycles / (self.cycles * len(self.threads))

    @property
    def l1_sync_fraction(self) -> float:
        """Fraction of L1 accesses caused by atomic operations (Table 4)."""
        if self.l1_accesses == 0:
            return 0.0
        return self.l1_sync_accesses / self.l1_accesses

    @property
    def combining_reduction(self) -> float:
        """Fraction of atomic-op L1 accesses removed by line combining.

        Table 4 reports this as the first number of its "L1 Accesses"
        column: saved / (saved + issued-for-atomics).
        """
        saved = self.l1_accesses_saved_by_combining
        base = saved + self.l1_sync_accesses
        if base == 0:
            return 0.0
        return saved / base

    def reset_counters(self) -> None:
        """Zero every counter in place (identity preserved).

        Used after cache warming so measurements exclude the warm-up
        traffic; the per-thread stats list survives because cores hold
        references into it.
        """
        self.cycles = 0
        self.l1_accesses = 0
        self.l1_hits = 0
        self.l1_misses = 0
        self.l1_sync_accesses = 0
        self.l1_accesses_saved_by_combining = 0
        self.l2_accesses = 0
        self.l2_misses = 0
        self.mem_accesses = 0
        self.invalidations_sent = 0
        self.writebacks = 0
        self.prefetches_issued = 0
        self.prefetch_hits = 0
        self.ll_count = 0
        self.sc_count = 0
        self.sc_failures = 0
        self.gatherlink_count = 0
        self.scattercond_count = 0
        self.gatherlink_elements = 0
        self.scattercond_elements = 0
        self.scattercond_successes = 0
        for cause in self.glsc_element_failures:
            self.glsc_element_failures[cause] = 0

    def to_dict(self) -> Dict[str, Any]:
        """Every counter (machine-level and per-thread) as JSON-able data.

        Lossless inverse of :meth:`from_dict`: the result store
        round-trips stats through JSON and the executor ships them
        between worker processes, so the counters here must capture the
        complete observable measurement.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "threads":
                out[f.name] = [t.to_dict() for t in value]
            elif f.name == "glsc_element_failures":
                out[f.name] = dict(value)
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MachineStats":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["threads"] = [
            ThreadStats.from_dict(t) for t in kwargs.get("threads", ())
        ]
        failures = {cause: 0 for cause in FAILURE_CAUSES}
        failures.update(kwargs.get("glsc_element_failures", {}))
        kwargs["glsc_element_failures"] = failures
        return cls(**kwargs)

    def new_thread(self) -> ThreadStats:
        """Register (and return) stats storage for one more thread."""
        stats = ThreadStats()
        self.threads.append(stats)
        return stats

    def record_glsc_failure(self, cause: str, count: int = 1) -> None:
        """Count ``count`` element failures attributed to ``cause``."""
        if cause not in self.glsc_element_failures:
            raise KeyError(f"unknown GLSC failure cause {cause!r}")
        self.glsc_element_failures[cause] += count

    def summary(self) -> Dict[str, float]:
        """A flat dict of headline numbers, for reports and tests."""
        return {
            "cycles": self.cycles,
            "instructions": self.total_instructions,
            "mem_stall_cycles": self.total_mem_stall_cycles,
            "sync_cycles": self.total_sync_cycles,
            "sync_fraction": self.sync_fraction,
            "l1_accesses": self.l1_accesses,
            "l1_misses": self.l1_misses,
            "l1_sync_accesses": self.l1_sync_accesses,
            "l1_saved_by_combining": self.l1_accesses_saved_by_combining,
            "l2_accesses": self.l2_accesses,
            "mem_accesses": self.mem_accesses,
            "ll_count": self.ll_count,
            "sc_count": self.sc_count,
            "sc_failures": self.sc_failures,
            "gatherlink_count": self.gatherlink_count,
            "scattercond_count": self.scattercond_count,
            "glsc_failure_rate": self.glsc_failure_rate,
        }
