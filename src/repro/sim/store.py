"""Persistent, content-addressed store of verified run results.

Every simulation the executor performs is keyed by a SHA-256 digest of
the :class:`~repro.sim.executor.RunSpec` *and* the fully resolved
:class:`~repro.sim.config.MachineConfig` (see ``RunSpec.digest``).  A
result therefore survives process exits but is invalidated the moment
any machine parameter, override, or store schema version changes —
there is no way to read a stale number.

Layout (one JSON file per run, atomically written)::

    <cache_dir>/
      <digest>.json     {"version", "digest", "spec", "config",
                         "stats", "provenance", "created"}
      index.jsonl       append-only put journal (digest, kernel,
                        cycles, created) — cheap listing, rebuildable
      store.meta        best-effort hit/miss tally sidecar

Records are forward-compatible: loaders ignore keys they do not
recognize, so adding fields (as ``provenance`` was) never invalidates
old caches.

**Concurrent-writer semantics** (the sweep service runs many worker
processes against one store): each :meth:`ResultStore.save` writes a
private temp file and publishes it with ``os.replace``, so a digest's
record file is always exactly one complete JSON document — never torn,
whatever the interleaving.  When several writers race on the *same*
digest the last ``os.replace`` wins; because a digest fixes the spec,
the resolved config, and the deterministic simulation output, the
racing records differ only in their ``provenance``/``created`` blocks,
so which writer wins is unobservable to readers.  The index sidecar is
an O_APPEND journal of one small JSON line per put: appends from
concurrent processes land whole on local filesystems, a torn final
line (a crash mid-append) is skipped by the reader, and
:meth:`ResultStore.rebuild_index` regenerates the journal from the
record files — the files stay the ground truth.

The store also keeps a best-effort hit/miss tally in a ``store.meta``
sidecar (not a ``*.json`` result file, so it can never be mistaken
for a record): every :meth:`ResultStore.load` bumps the persistent
totals, which ``repro cache stats`` surfaces together with the
simulated wall time the cached records represent (read from each
record's provenance).

The default cache directory is ``.glsc-cache/`` in the current working
directory, overridable with the ``REPRO_CACHE_DIR`` environment
variable or the harness ``--cache-dir`` flag.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.sim.stats import MachineStats

__all__ = ["ResultStore", "STORE_VERSION", "default_cache_dir"]

#: Schema version folded into every run digest; bump on any change to
#: the digest payload or the stored-stats format to invalidate cleanly.
STORE_VERSION = 1


def default_cache_dir() -> Path:
    """The default on-disk cache location (env-overridable)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".glsc-cache"))


class ResultStore:
    """Digest-keyed JSON store of :class:`MachineStats` results.

    The store is strictly a cache: entries are immutable once written,
    corrupt or unreadable files behave as misses, and deleting the
    directory is always safe.
    """

    #: Sidecar file holding the persistent hit/miss tally.
    TALLY_NAME = "store.meta"

    #: Append-only journal of puts (one JSON line each).
    INDEX_NAME = "index.jsonl"

    def __init__(
        self,
        root: Optional[Path] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.metrics = metrics if metrics is not None else get_registry()
        self._puts = self.metrics.counter(
            "store_puts_total", "Result records persisted"
        )
        self._put_bytes = self.metrics.counter(
            "store_put_bytes_total",
            "Serialized record bytes written by puts",
        )
        self._journal_appends = self.metrics.counter(
            "store_journal_appends_total",
            "Lines appended to the index journal",
        )
        self._index_rebuilds = self.metrics.counter(
            "store_index_rebuilds_total",
            "Full index regenerations from record files",
        )

    # -- paths ----------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """Where the result for ``digest`` lives (whether or not it exists)."""
        return self.root / f"{digest}.json"

    # -- read -----------------------------------------------------------

    def load(self, digest: str) -> Optional[MachineStats]:
        """The stored stats for ``digest``, or ``None`` on a miss."""
        record = self.load_record(digest)
        self._bump_tally(hit=record is not None)
        if record is None:
            return None
        return MachineStats.from_dict(record["stats"])

    def load_record(self, digest: str) -> Optional[Dict[str, Any]]:
        """The full stored record (spec/config/stats), or ``None``."""
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(record, dict)
            or record.get("version") != STORE_VERSION
            or record.get("digest") != digest
            or "stats" not in record
        ):
            return None
        return record

    def __contains__(self, digest: str) -> bool:
        return self.load_record(digest) is not None

    def digests(self) -> Iterator[str]:
        """All digests currently present on disk."""
        if not self.root.is_dir():
            return iter(())
        return (p.stem for p in sorted(self.root.glob("*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    # -- write ----------------------------------------------------------

    def save(
        self,
        digest: str,
        stats: MachineStats,
        spec: Optional[Dict[str, Any]] = None,
        config: Optional[Dict[str, Any]] = None,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist one result; atomic against concurrent writers.

        The write goes to a temp file in the same directory followed by
        ``os.replace``, so parallel executors (or service workers on
        other hosts sharing the directory) racing on the same digest
        end with one complete file, never a torn one; the last writer
        wins, and racing records are value-equal apart from provenance
        (see the module docstring for the full contract).  Every put
        also appends a line to the index journal, best-effort.

        ``provenance`` records how the number was produced (repro
        version, python/platform, wall time, worker pid — see
        :func:`repro.obs.telemetry.run_provenance`), keeping stored
        results auditable.  Readers ignore keys they do not know, so
        records written before this field existed stay loadable.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        # Serialize exactly once: the stats dict feeds the record, the
        # record serializes to one payload whose bytes are both what
        # hits the disk and what the put-bytes counter measures, and
        # the journal line reuses the already-built dict.  Batched
        # sweeps put dozens of records back to back, so the redundant
        # re-walks this replaces were measurable.
        stats_dict = stats.to_dict()
        record = {
            "version": STORE_VERSION,
            "digest": digest,
            "spec": spec or {},
            "config": config or {},
            "stats": stats_dict,
            "provenance": provenance or {},
            "created": time.time(),
        }
        payload = json.dumps(record, sort_keys=True)
        path = self.path_for(digest)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{digest[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._puts.inc()
        self._put_bytes.inc(len(payload.encode("utf-8")))
        self._append_index(
            {
                "digest": digest,
                "kernel": (spec or {}).get("kernel", "?"),
                "cycles": stats_dict.get("cycles", stats.cycles),
                "created": record["created"],
            }
        )
        return path

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for digest in list(self.digests()):
            try:
                self.path_for(digest).unlink()
                removed += 1
            except OSError:
                pass
        try:
            (self.root / self.INDEX_NAME).unlink()
        except OSError:
            pass
        return removed

    # -- index sidecar ---------------------------------------------------

    def _append_index(self, entry: Dict[str, Any]) -> None:
        """Append one put to the journal (crash-safe, never raises).

        A single ``os.write`` on an ``O_APPEND`` descriptor, so
        concurrent writers interleave whole lines on local
        filesystems.  A crash can at worst leave a torn *final* line,
        which :meth:`index` skips.
        """
        try:
            line = json.dumps(entry, sort_keys=True) + "\n"
            fd = os.open(
                self.root / self.INDEX_NAME,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
            self._journal_appends.inc()
        except OSError:
            pass

    def index(self) -> Dict[str, Dict[str, Any]]:
        """The put journal as ``{digest: newest entry}``.

        Unparsable lines (torn tail from a crashed writer) are
        skipped; the journal may mention digests whose record was
        since pruned, and misses puts from before the journal existed
        — :meth:`rebuild_index` reconciles it with the record files,
        which remain the ground truth.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        try:
            with open(self.root / self.INDEX_NAME, encoding="utf-8") as fh:
                for line in fh:
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(entry, dict) and "digest" in entry:
                        entries[entry["digest"]] = entry
        except OSError:
            pass
        return entries

    def rebuild_index(self) -> int:
        """Regenerate the journal from the record files; returns count."""
        self.root.mkdir(parents=True, exist_ok=True)
        lines = []
        for digest, record in self.records():
            lines.append(
                json.dumps(
                    {
                        "digest": digest,
                        "kernel": (record.get("spec") or {}).get(
                            "kernel", "?"
                        ),
                        "cycles": (record.get("stats") or {}).get(
                            "cycles", 0
                        ),
                        "created": record.get("created", 0),
                    },
                    sort_keys=True,
                )
            )
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".index.", suffix=".tmp"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write("".join(line + "\n" for line in lines))
        os.replace(tmp_name, self.root / self.INDEX_NAME)
        self._index_rebuilds.inc()
        return len(lines)

    # -- inspection / maintenance (``repro cache``) ----------------------

    def records(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Every valid ``(digest, record)`` pair currently on disk."""
        for digest in self.digests():
            record = self.load_record(digest)
            if record is not None:
                yield digest, record

    def tally(self) -> Dict[str, int]:
        """The persistent hit/miss totals (zeroes when never tallied)."""
        try:
            with open(self.root / self.TALLY_NAME, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {"hits": 0, "misses": 0}
        if not isinstance(data, dict):
            return {"hits": 0, "misses": 0}
        return {
            "hits": int(data.get("hits", 0)),
            "misses": int(data.get("misses", 0)),
        }

    def _bump_tally(self, hit: bool) -> None:
        """Best-effort persistent hit/miss accounting (never raises)."""
        try:
            totals = self.tally()
            totals["hits" if hit else "misses"] += 1
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=".tally.", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(totals, fh)
            os.replace(tmp_name, self.root / self.TALLY_NAME)
        except OSError:
            pass

    def stale_digests(self) -> List[str]:
        """Digests whose entries can no longer be produced or trusted.

        An entry is stale when its record is unreadable/invalid (wrong
        version, torn write) or when re-deriving the digest from the
        record's stored spec no longer matches its filename — the
        signature of a :class:`~repro.sim.config.MachineConfig` schema
        change that left orphaned keys behind.  Records without a
        stored spec (pre-provenance writers) cannot be re-derived and
        are conservatively kept.
        """
        from repro.sim.executor import RunSpec  # deferred: import cycle

        stale = []
        for digest in self.digests():
            record = self.load_record(digest)
            if record is None:
                stale.append(digest)
                continue
            spec_dict = record.get("spec") or {}
            if not spec_dict:
                continue
            try:
                fresh = RunSpec.from_dict(spec_dict).digest()
            except Exception:
                stale.append(digest)
                continue
            if fresh != digest:
                stale.append(digest)
        return stale

    def prune(self, dry_run: bool = False) -> List[str]:
        """Remove every stale entry; returns the digests affected."""
        stale = self.stale_digests()
        if not dry_run:
            for digest in stale:
                try:
                    self.path_for(digest).unlink()
                except OSError:
                    pass
        return stale

    def size_bytes(self) -> int:
        """Total on-disk size of the stored result files."""
        total = 0
        for digest in self.digests():
            try:
                total += self.path_for(digest).stat().st_size
            except OSError:
                pass
        return total

    def describe(self) -> Dict[str, Any]:
        """Aggregate view for ``repro cache stats``.

        Hit/miss totals come from the persistent tally; the simulated
        wall time the cache represents (i.e. what a cold re-run would
        cost) is summed from each record's provenance.
        """
        entries = 0
        wall_saved = 0.0
        by_kernel: Dict[str, int] = {}
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for _, record in self.records():
            entries += 1
            provenance = record.get("provenance") or {}
            wall_saved += float(provenance.get("wall_time_s", 0.0) or 0.0)
            kernel = (record.get("spec") or {}).get("kernel", "?")
            by_kernel[kernel] = by_kernel.get(kernel, 0) + 1
            created = record.get("created")
            if isinstance(created, (int, float)):
                oldest = created if oldest is None else min(oldest, created)
                newest = created if newest is None else max(newest, created)
        tally = self.tally()
        return {
            "root": str(self.root),
            "entries": entries,
            "size_bytes": self.size_bytes(),
            "hits": tally["hits"],
            "misses": tally["misses"],
            "simulated_wall_s": wall_saved,
            "by_kernel": by_kernel,
            "oldest": oldest,
            "newest": newest,
            "stale": len(self.stale_digests()),
        }
