"""Persistent, content-addressed store of verified run results.

Every simulation the executor performs is keyed by a SHA-256 digest of
the :class:`~repro.sim.executor.RunSpec` *and* the fully resolved
:class:`~repro.sim.config.MachineConfig` (see ``RunSpec.digest``).  A
result therefore survives process exits but is invalidated the moment
any machine parameter, override, or store schema version changes —
there is no way to read a stale number.

Layout (one JSON file per run, atomically written)::

    <cache_dir>/
      <digest>.json     {"version", "digest", "spec", "config",
                         "stats", "provenance", "created"}

Records are forward-compatible: loaders ignore keys they do not
recognize, so adding fields (as ``provenance`` was) never invalidates
old caches.

The store also keeps a best-effort hit/miss tally in a ``store.meta``
sidecar (not a ``*.json`` result file, so it can never be mistaken
for a record): every :meth:`ResultStore.load` bumps the persistent
totals, which ``repro cache stats`` surfaces together with the
simulated wall time the cached records represent (read from each
record's provenance).

The default cache directory is ``.glsc-cache/`` in the current working
directory, overridable with the ``REPRO_CACHE_DIR`` environment
variable or the harness ``--cache-dir`` flag.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.stats import MachineStats

__all__ = ["ResultStore", "STORE_VERSION", "default_cache_dir"]

#: Schema version folded into every run digest; bump on any change to
#: the digest payload or the stored-stats format to invalidate cleanly.
STORE_VERSION = 1


def default_cache_dir() -> Path:
    """The default on-disk cache location (env-overridable)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".glsc-cache"))


class ResultStore:
    """Digest-keyed JSON store of :class:`MachineStats` results.

    The store is strictly a cache: entries are immutable once written,
    corrupt or unreadable files behave as misses, and deleting the
    directory is always safe.
    """

    #: Sidecar file holding the persistent hit/miss tally.
    TALLY_NAME = "store.meta"

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- paths ----------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """Where the result for ``digest`` lives (whether or not it exists)."""
        return self.root / f"{digest}.json"

    # -- read -----------------------------------------------------------

    def load(self, digest: str) -> Optional[MachineStats]:
        """The stored stats for ``digest``, or ``None`` on a miss."""
        record = self.load_record(digest)
        self._bump_tally(hit=record is not None)
        if record is None:
            return None
        return MachineStats.from_dict(record["stats"])

    def load_record(self, digest: str) -> Optional[Dict[str, Any]]:
        """The full stored record (spec/config/stats), or ``None``."""
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(record, dict)
            or record.get("version") != STORE_VERSION
            or record.get("digest") != digest
            or "stats" not in record
        ):
            return None
        return record

    def __contains__(self, digest: str) -> bool:
        return self.load_record(digest) is not None

    def digests(self) -> Iterator[str]:
        """All digests currently present on disk."""
        if not self.root.is_dir():
            return iter(())
        return (p.stem for p in sorted(self.root.glob("*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    # -- write ----------------------------------------------------------

    def save(
        self,
        digest: str,
        stats: MachineStats,
        spec: Optional[Dict[str, Any]] = None,
        config: Optional[Dict[str, Any]] = None,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist one result; atomic against concurrent writers.

        The write goes to a temp file in the same directory followed by
        ``os.replace``, so parallel executors racing on the same digest
        end with one complete file, never a torn one.

        ``provenance`` records how the number was produced (repro
        version, python/platform, wall time, worker pid — see
        :func:`repro.obs.telemetry.run_provenance`), keeping stored
        results auditable.  Readers ignore keys they do not know, so
        records written before this field existed stay loadable.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        record = {
            "version": STORE_VERSION,
            "digest": digest,
            "spec": spec or {},
            "config": config or {},
            "stats": stats.to_dict(),
            "provenance": provenance or {},
            "created": time.time(),
        }
        path = self.path_for(digest)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{digest[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for digest in list(self.digests()):
            try:
                self.path_for(digest).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- inspection / maintenance (``repro cache``) ----------------------

    def records(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Every valid ``(digest, record)`` pair currently on disk."""
        for digest in self.digests():
            record = self.load_record(digest)
            if record is not None:
                yield digest, record

    def tally(self) -> Dict[str, int]:
        """The persistent hit/miss totals (zeroes when never tallied)."""
        try:
            with open(self.root / self.TALLY_NAME, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {"hits": 0, "misses": 0}
        if not isinstance(data, dict):
            return {"hits": 0, "misses": 0}
        return {
            "hits": int(data.get("hits", 0)),
            "misses": int(data.get("misses", 0)),
        }

    def _bump_tally(self, hit: bool) -> None:
        """Best-effort persistent hit/miss accounting (never raises)."""
        try:
            totals = self.tally()
            totals["hits" if hit else "misses"] += 1
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=".tally.", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(totals, fh)
            os.replace(tmp_name, self.root / self.TALLY_NAME)
        except OSError:
            pass

    def stale_digests(self) -> List[str]:
        """Digests whose entries can no longer be produced or trusted.

        An entry is stale when its record is unreadable/invalid (wrong
        version, torn write) or when re-deriving the digest from the
        record's stored spec no longer matches its filename — the
        signature of a :class:`~repro.sim.config.MachineConfig` schema
        change that left orphaned keys behind.  Records without a
        stored spec (pre-provenance writers) cannot be re-derived and
        are conservatively kept.
        """
        from repro.sim.executor import RunSpec  # deferred: import cycle

        stale = []
        for digest in self.digests():
            record = self.load_record(digest)
            if record is None:
                stale.append(digest)
                continue
            spec_dict = record.get("spec") or {}
            if not spec_dict:
                continue
            try:
                fresh = RunSpec.from_dict(spec_dict).digest()
            except Exception:
                stale.append(digest)
                continue
            if fresh != digest:
                stale.append(digest)
        return stale

    def prune(self, dry_run: bool = False) -> List[str]:
        """Remove every stale entry; returns the digests affected."""
        stale = self.stale_digests()
        if not dry_run:
            for digest in stale:
                try:
                    self.path_for(digest).unlink()
                except OSError:
                    pass
        return stale

    def size_bytes(self) -> int:
        """Total on-disk size of the stored result files."""
        total = 0
        for digest in self.digests():
            try:
                total += self.path_for(digest).stat().st_size
            except OSError:
                pass
        return total

    def describe(self) -> Dict[str, Any]:
        """Aggregate view for ``repro cache stats``.

        Hit/miss totals come from the persistent tally; the simulated
        wall time the cache represents (i.e. what a cold re-run would
        cost) is summed from each record's provenance.
        """
        entries = 0
        wall_saved = 0.0
        by_kernel: Dict[str, int] = {}
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for _, record in self.records():
            entries += 1
            provenance = record.get("provenance") or {}
            wall_saved += float(provenance.get("wall_time_s", 0.0) or 0.0)
            kernel = (record.get("spec") or {}).get("kernel", "?")
            by_kernel[kernel] = by_kernel.get(kernel, 0) + 1
            created = record.get("created")
            if isinstance(created, (int, float)):
                oldest = created if oldest is None else min(oldest, created)
                newest = created if newest is None else max(newest, created)
        tally = self.tally()
        return {
            "root": str(self.root),
            "entries": entries,
            "size_bytes": self.size_bytes(),
            "hits": tally["hits"],
            "misses": tally["misses"],
            "simulated_wall_s": wall_saved,
            "by_kernel": by_kernel,
            "oldest": oldest,
            "newest": newest,
            "stale": len(self.stale_digests()),
        }
