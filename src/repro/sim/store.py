"""Persistent, content-addressed store of verified run results.

Every simulation the executor performs is keyed by a SHA-256 digest of
the :class:`~repro.sim.executor.RunSpec` *and* the fully resolved
:class:`~repro.sim.config.MachineConfig` (see ``RunSpec.digest``).  A
result therefore survives process exits but is invalidated the moment
any machine parameter, override, or store schema version changes —
there is no way to read a stale number.

Layout (one JSON file per run, atomically written)::

    <cache_dir>/
      <digest>.json     {"version", "digest", "spec", "config",
                         "stats", "provenance", "created"}

Records are forward-compatible: loaders ignore keys they do not
recognize, so adding fields (as ``provenance`` was) never invalidates
old caches.

The default cache directory is ``.glsc-cache/`` in the current working
directory, overridable with the ``REPRO_CACHE_DIR`` environment
variable or the harness ``--cache-dir`` flag.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.sim.stats import MachineStats

__all__ = ["ResultStore", "STORE_VERSION", "default_cache_dir"]

#: Schema version folded into every run digest; bump on any change to
#: the digest payload or the stored-stats format to invalidate cleanly.
STORE_VERSION = 1


def default_cache_dir() -> Path:
    """The default on-disk cache location (env-overridable)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".glsc-cache"))


class ResultStore:
    """Digest-keyed JSON store of :class:`MachineStats` results.

    The store is strictly a cache: entries are immutable once written,
    corrupt or unreadable files behave as misses, and deleting the
    directory is always safe.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- paths ----------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """Where the result for ``digest`` lives (whether or not it exists)."""
        return self.root / f"{digest}.json"

    # -- read -----------------------------------------------------------

    def load(self, digest: str) -> Optional[MachineStats]:
        """The stored stats for ``digest``, or ``None`` on a miss."""
        record = self.load_record(digest)
        if record is None:
            return None
        return MachineStats.from_dict(record["stats"])

    def load_record(self, digest: str) -> Optional[Dict[str, Any]]:
        """The full stored record (spec/config/stats), or ``None``."""
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(record, dict)
            or record.get("version") != STORE_VERSION
            or record.get("digest") != digest
            or "stats" not in record
        ):
            return None
        return record

    def __contains__(self, digest: str) -> bool:
        return self.load_record(digest) is not None

    def digests(self) -> Iterator[str]:
        """All digests currently present on disk."""
        if not self.root.is_dir():
            return iter(())
        return (p.stem for p in sorted(self.root.glob("*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    # -- write ----------------------------------------------------------

    def save(
        self,
        digest: str,
        stats: MachineStats,
        spec: Optional[Dict[str, Any]] = None,
        config: Optional[Dict[str, Any]] = None,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist one result; atomic against concurrent writers.

        The write goes to a temp file in the same directory followed by
        ``os.replace``, so parallel executors racing on the same digest
        end with one complete file, never a torn one.

        ``provenance`` records how the number was produced (repro
        version, python/platform, wall time, worker pid — see
        :func:`repro.obs.telemetry.run_provenance`), keeping stored
        results auditable.  Readers ignore keys they do not know, so
        records written before this field existed stay loadable.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        record = {
            "version": STORE_VERSION,
            "digest": digest,
            "spec": spec or {},
            "config": config or {},
            "stats": stats.to_dict(),
            "provenance": provenance or {},
            "created": time.time(),
        }
        path = self.path_for(digest)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{digest[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for digest in list(self.digests()):
            try:
                self.path_for(digest).unlink()
                removed += 1
            except OSError:
                pass
        return removed
