"""Instruction tracing and execution summaries.

A :class:`Tracer` attached to a :class:`~repro.sim.machine.Machine`
observes every retired instruction: thread, kind, issue cycle,
completion cycle, and sync attribution.  This is the introspection
seam for debugging kernels and for analyses the stock counters do not
cover (latency histograms, per-kind time breakdowns, interleaving
dumps).

:class:`InstructionTrace` is the standard collector; its
:meth:`~InstructionTrace.kind_profile` reproduces the per-instruction
latency breakdowns used while calibrating this model against the
paper's Table 4.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.isa.instructions import Kind

__all__ = ["TraceEvent", "Tracer", "InstructionTrace", "KindProfile"]


@dataclass(frozen=True)
class TraceEvent:
    """One retired instruction.

    Also an observability event (category ``"instr"``): the same
    object a :class:`Tracer` receives flows over the
    :class:`~repro.obs.bus.EventBus` to any sink subscribed to
    instruction events.
    """

    category = "instr"

    cycle: int
    completion: int
    thread: int
    core: int
    kind: Kind
    sync: bool

    @property
    def latency(self) -> int:
        """Cycles the issuing thread was occupied by this instruction."""
        return max(self.completion - self.cycle, 1)


class Tracer:
    """Observer protocol; attach via ``Machine(config, tracer=...)``.

    Every Tracer is also a valid :class:`~repro.obs.bus.Sink` for the
    ``instr`` category (``on_event`` delegates to :meth:`record`), so
    the same collector works on either seam::

        Machine(config, tracer=trace)            # classic
        bus.attach(InstructionTrace())           # event-bus
    """

    #: EventBus subscription default (Sink protocol).
    categories = ("instr",)

    def record(self, event: TraceEvent) -> None:
        """Called once per retired instruction, in issue order per core."""
        raise NotImplementedError

    def on_event(self, event: TraceEvent) -> None:
        """Sink protocol: instruction events delegate to :meth:`record`."""
        self.record(event)

    def close(self) -> None:
        """Sink protocol: nothing to flush by default."""


@dataclass
class KindProfile:
    """Aggregate statistics for one instruction kind."""

    count: int = 0
    total_latency: int = 0
    max_latency: int = 0

    @property
    def mean_latency(self) -> float:
        """Average occupancy per instruction of this kind."""
        return self.total_latency / self.count if self.count else 0.0


class InstructionTrace(Tracer):
    """Collects events (optionally capped) and summarizes them.

    ``limit`` bounds memory for long runs: once reached, events are
    dropped but the aggregate profile keeps updating, so summaries stay
    exact while the event list is a prefix.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self.limit = limit
        self._profile: Dict[Kind, KindProfile] = defaultdict(KindProfile)

    def record(self, event: TraceEvent) -> None:
        if self.limit is None or len(self.events) < self.limit:
            self.events.append(event)
        else:
            self.dropped += 1
        profile = self._profile[event.kind]
        profile.count += 1
        profile.total_latency += event.latency
        profile.max_latency = max(profile.max_latency, event.latency)

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def kind_profile(self) -> Dict[Kind, KindProfile]:
        """Per-kind counts and latency aggregates (exact, uncapped)."""
        return dict(self._profile)

    def for_thread(self, thread: int) -> List[TraceEvent]:
        """Collected events of one thread, in issue order."""
        return [e for e in self.events if e.thread == thread]

    def sync_share(self) -> float:
        """Fraction of recorded occupancy spent in sync instructions."""
        total = sum(e.latency for e in self.events)
        if total == 0:
            return 0.0
        return sum(e.latency for e in self.events if e.sync) / total

    def render(self, top: int = 10) -> str:
        """Human-readable per-kind latency table, highest total first."""
        rows = sorted(
            self._profile.items(),
            key=lambda item: -item[1].total_latency,
        )[:top]
        lines = [f"{'kind':14s} {'count':>8s} {'mean':>8s} {'max':>6s} "
                 f"{'total':>10s}"]
        for kind, profile in rows:
            lines.append(
                f"{kind.name:14s} {profile.count:8d} "
                f"{profile.mean_latency:8.1f} {profile.max_latency:6d} "
                f"{profile.total_latency:10d}"
            )
        return "\n".join(lines)
