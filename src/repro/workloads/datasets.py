"""Named dataset profiles for the seven RMS benchmarks.

The paper evaluates each benchmark on two datasets, A and B (Table 3).
The originals are proprietary (photographs, game scenes, sparse
matrices from a direct solver), so each profile here is a *synthetic*
dataset whose contention-relevant statistics — alias rate per SIMD
group, objects-per-cell clustering, sparsity — are tuned to land in
the regime Table 3/Table 4 report, while sizes are scaled down so the
pure-Python simulator finishes in seconds per run.  A ``tiny`` profile
per benchmark keeps unit tests fast.

Use :func:`dataset_params` to get the generator keyword arguments for
a (kernel, dataset) pair, and :data:`TABLE3_ROWS` for the Table 3
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.errors import ConfigError

__all__ = ["DatasetSpec", "dataset_params", "dataset_names", "TABLE3_ROWS"]


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark dataset: generator parameters + description."""

    kernel: str
    name: str
    params: Dict[str, Any]
    description: str
    paper_description: str


_SPECS: Dict[Tuple[str, str], DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _SPECS[(spec.kernel, spec.name)] = spec


# -- HIP: histogram of image colors ------------------------------------------
# Paper: 480x480 car image (35% failure rate) and people image (20%).
# The coherence knob (spatial color runs) sets the alias regime at
# 4-wide SIMD.
_register(DatasetSpec(
    "hip", "A",
    dict(n_pixels=4096, n_bins=64, coherence=0.42, skew=1.2, seed=11),
    "4096 pixels, 64 bins, strong spatial color runs (car-image regime)",
    "480x480 image of cars",
))
_register(DatasetSpec(
    "hip", "B",
    dict(n_pixels=4096, n_bins=96, coherence=0.24, skew=1.0, seed=12),
    "4096 pixels, 96 bins, moderate color runs (people-image regime)",
    "480x480 image of people",
))
_register(DatasetSpec(
    "hip", "random",
    dict(n_pixels=4096, n_bins=64, coherence=0.0, skew=0.0, seed=13),
    "4096 uniformly random pixels (the paper's low-alias control)",
    "input composed of random numbers (Section 5.1)",
))
_register(DatasetSpec(
    "hip", "tiny",
    dict(n_pixels=256, n_bins=16, coherence=0.2, skew=0.5, seed=14),
    "unit-test image",
    "-",
))

# -- TMS: transpose sparse matrix-vector multiply -----------------------------
# y spans many cache lines (64KB / 128KB) like the paper's 67k/41k
# element vectors; the band keeps thread row-ranges reducing into
# nearly disjoint y regions.
_register(DatasetSpec(
    "tms", "A",
    dict(rows=512, cols=16384, density=0.00018, band=400.0, seed=21),
    "512x16384 banded sparse matrix, ~1500 nonzeros (64KB y vector)",
    "21616x67841 with 0.87% density",
))
_register(DatasetSpec(
    "tms", "B",
    dict(rows=1024, cols=32768, density=0.00005, band=700.0, seed=22),
    "1024x32768 banded sparse matrix, ~1700 nonzeros (128KB y vector)",
    "209614x41177 with 0.01% density",
))
_register(DatasetSpec(
    "tms", "tiny",
    dict(rows=16, cols=64, density=0.04, band=None, seed=23),
    "unit-test matrix",
    "-",
))

# -- FS: forward triangular solve ---------------------------------------------
# Enough block rows that two same-level blocks rarely target the same
# row block; the off-diagonal block data streams past the L1.
_register(DatasetSpec(
    "fs", "A",
    dict(n_blocks=32, block=8, fill=0.22, seed=31),
    "32 block rows of 8 unknowns, 22% block fill (~110 dense subblocks)",
    "2171x5167 with 2.47% density",
))
_register(DatasetSpec(
    "fs", "B",
    dict(n_blocks=40, block=8, fill=0.3, seed=32),
    "40 block rows of 8 unknowns, 30% block fill (~230 dense subblocks)",
    "3136x9408 with 15.06% density",
))
_register(DatasetSpec(
    "fs", "tiny",
    dict(n_blocks=4, block=4, fill=0.5, seed=33),
    "unit-test system",
    "-",
))

# -- GPS: game physics constraint solver ---------------------------------------
# Paper-sized object counts; constraints are spatially local, so the
# per-thread constraint blocks touch nearly disjoint object ranges.
_register(DatasetSpec(
    "gps", "A",
    dict(n_objects=625, n_constraints=1100, iterations=2, locality=20,
         seed=41),
    "625 objects, 1100 local constraints, 2 solver sweeps",
    "625 objects",
))
_register(DatasetSpec(
    "gps", "B",
    dict(n_objects=1600, n_constraints=2800, iterations=2, locality=20,
         seed=42),
    "1600 objects, 2800 local constraints, 2 solver sweeps",
    "1600 objects",
))
_register(DatasetSpec(
    "gps", "tiny",
    dict(n_objects=16, n_constraints=24, iterations=1, locality=4, seed=43),
    "unit-test constraint set",
    "-",
))

# -- SMC: surface extraction (marching cubes density deposit) ----------------
# Node grids at or beyond L1 size; particles are z-slab partitioned.
_register(DatasetSpec(
    "smc", "A",
    dict(n_particles=768, dim=16, seed=51),
    "768 particles in a 16^3 node grid (16KB density field)",
    "32K particles",
))
_register(DatasetSpec(
    "smc", "B",
    dict(n_particles=1024, dim=24, seed=52),
    "1024 particles in a 24^3 node grid (55KB density field)",
    "256K particles",
))
_register(DatasetSpec(
    "smc", "tiny",
    dict(n_particles=48, dim=4, seed=53),
    "unit-test particle field",
    "-",
))

# -- GBC: grid-based collision detection ----------------------------------------
# Paper-exact object/cell counts for A; run lengths reproduce the
# ~31-34% intra-vector alias failure rate.
_register(DatasetSpec(
    "gbc", "A",
    dict(n_objects=649, n_cells=8191, run_mean=2.3, seed=61),
    "649 objects in 8191 cells, spatially coherent runs (paper-exact sizes)",
    "649 objects in 8191 grid cells",
))
_register(DatasetSpec(
    "gbc", "B",
    dict(n_objects=2800, n_cells=32768, run_mean=2.6, seed=62),
    "2800 objects in 32768 cells, spatially coherent runs (half-scale)",
    "5649 objects in 65521 grid cells",
))
_register(DatasetSpec(
    "gbc", "tiny",
    dict(n_objects=64, n_cells=64, run_mean=1.5, seed=63),
    "unit-test scene",
    "-",
))

# -- MFP: maxflow push ----------------------------------------------------------
# Paper-sized node counts, edge counts halved for simulation time;
# edges are local and source-sorted so thread partitions are disjoint.
_register(DatasetSpec(
    "mfp", "A",
    dict(n_nodes=1500, n_edges=3400, locality=12, seed=71),
    "1500-node local flow network, 3400 push edges",
    "1500 nodes and 6800 edges",
))
_register(DatasetSpec(
    "mfp", "B",
    dict(n_nodes=3888, n_edges=9126, locality=12, seed=72),
    "3888-node local flow network, 9126 push edges (half-scale)",
    "3888 nodes and 18252 edges",
))
_register(DatasetSpec(
    "mfp", "tiny",
    dict(n_nodes=16, n_edges=28, locality=4, seed=73),
    "unit-test network",
    "-",
))


def dataset_params(kernel: str, name: str) -> Dict[str, Any]:
    """Generator keyword args for (kernel, dataset-name)."""
    try:
        return dict(_SPECS[(kernel, name)].params)
    except KeyError:
        raise ConfigError(
            f"no dataset {name!r} for kernel {kernel!r}; known: "
            f"{sorted(n for k, n in _SPECS if k == kernel)}"
        ) from None


def dataset_names(kernel: str) -> Tuple[str, ...]:
    """All dataset names registered for a kernel."""
    names = tuple(sorted(n for k, n in _SPECS if k == kernel))
    if not names:
        raise ConfigError(f"unknown kernel {kernel!r}")
    return names


#: (kernel, dataset) -> (our description, paper's description), the
#: content of the Table 3 reproduction.
TABLE3_ROWS = {
    (spec.kernel, spec.name): (spec.description, spec.paper_description)
    for spec in _SPECS.values()
    if spec.name in ("A", "B")
}
