"""Graphs for the MFP and GPS benchmarks.

* MFP (maxflow push): a flow network; the kernel repeatedly pushes
  excess from a node to a neighbour, locking both endpoints — the
  paper's "multiple lock critical section" pattern.
* GPS (game physics solver): a set of constraints, each touching one
  or two objects, solved iteratively under per-object locks.  The
  paper reorders each thread's constraints into groups of independent
  constraints to avoid intra-vector aliasing (Table 2), which the
  generator reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.workloads.interning import interned_generator

__all__ = [
    "FlowNetwork",
    "flow_network",
    "ConstraintSystem",
    "constraint_system",
    "group_independent",
]


@dataclass
class FlowNetwork:
    """A directed graph with per-edge push amounts for MFP."""

    n_nodes: int
    edges: List[Tuple[int, int]]       # (u, v), u != v
    push_amounts: List[float]          # amount pushed along each edge

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def excess_oracle(self, initial_excess: List[float]) -> List[float]:
        """Oracle: node excess after every push executes once."""
        excess = list(initial_excess)
        for (u, v), amount in zip(self.edges, self.push_amounts):
            excess[u] -= amount
            excess[v] += amount
        return excess


@interned_generator
def flow_network(
    n_nodes: int, n_edges: int, seed: int, locality: int = 12
) -> FlowNetwork:
    """A spatially local flow network with integer push amounts.

    Edges connect nearby node ids (graph embeddings of meshes and road
    networks do) and are sorted by source node, so a thread's
    contiguous edge range touches a contiguous node region — matching
    the paper's node-partitioned parallelization, whose cross-thread
    lock conflicts are near zero (Table 4: MFP fails ~0%).
    """
    if n_nodes < 2 or n_edges <= 0:
        raise ConfigError("need >= 2 nodes and >= 1 edge")
    if locality < 1:
        raise ConfigError(f"locality must be >= 1, got {locality}")
    rng = np.random.default_rng(seed)
    edges = []
    while len(edges) < n_edges:
        u = int(rng.integers(0, n_nodes))
        v = u + int(rng.integers(-locality, locality + 1))
        if v != u and 0 <= v < n_nodes:
            edges.append((u, v))
    edges.sort()
    amounts = [float(a) for a in rng.integers(1, 5, size=n_edges)]
    return FlowNetwork(n_nodes, edges, amounts)


@dataclass
class ConstraintSystem:
    """Constraints over objects for GPS.

    Each constraint references two distinct objects and applies an
    integer impulse: +delta to the first, -delta to the second (a
    momentum-conserving toy of the paper's force solver).
    """

    n_objects: int
    constraints: List[Tuple[int, int]]
    deltas: List[float]
    iterations: int

    @property
    def n_constraints(self) -> int:
        """Number of constraints."""
        return len(self.constraints)

    def solve_oracle(self) -> List[float]:
        """Oracle: object states after ``iterations`` full sweeps."""
        state = [0.0] * self.n_objects
        for _ in range(self.iterations):
            for (a, b), delta in zip(self.constraints, self.deltas):
                state[a] += delta
                state[b] -= delta
        return state


@interned_generator
def constraint_system(
    n_objects: int,
    n_constraints: int,
    iterations: int,
    seed: int,
    locality: int = 10,
) -> ConstraintSystem:
    """Spatially local pairwise constraints with integer impulses.

    Physics constraints connect objects that touch, i.e. that are
    close in a spatial ordering; constraints are sorted by first
    object, so contiguous per-thread constraint ranges reference
    nearly disjoint object regions — the reason GPS's cross-thread
    lock contention is ~0 in the paper (Table 4).
    """
    if n_objects < 2 or n_constraints <= 0 or iterations <= 0:
        raise ConfigError("need >= 2 objects, >= 1 constraint, >= 1 iteration")
    if locality < 1:
        raise ConfigError(f"locality must be >= 1, got {locality}")
    rng = np.random.default_rng(seed)
    constraints = []
    while len(constraints) < n_constraints:
        a = int(rng.integers(0, n_objects))
        b = a + int(rng.integers(-locality, locality + 1))
        if b != a and 0 <= b < n_objects:
            constraints.append((a, b))
    constraints.sort()
    deltas = [float(d) for d in rng.integers(1, 4, size=n_constraints)]
    return ConstraintSystem(n_objects, constraints, deltas, iterations)


def group_independent(
    constraints: List[Tuple[int, int]], group_size: int
) -> List[List[int]]:
    """Greedy reorder of constraint indices into independent groups.

    Within one group no two constraints share an object, so a SIMD
    batch built from a group has no lock aliasing — the preprocessing
    GPS applies per thread (Table 2: "constraints within each thread
    are reordered into groups of independent constraints").
    Groups are at most ``group_size`` long.
    """
    if group_size <= 0:
        raise ConfigError(f"group_size must be positive, got {group_size}")
    remaining = list(range(len(constraints)))
    groups: List[List[int]] = []
    while remaining:
        used_objects = set()
        group: List[int] = []
        leftovers: List[int] = []
        for idx in remaining:
            a, b = constraints[idx]
            if len(group) < group_size and a not in used_objects and b not in used_objects:
                group.append(idx)
                used_objects.add(a)
                used_objects.add(b)
            else:
                leftovers.append(idx)
        groups.append(group)
        remaining = leftovers
    return groups
