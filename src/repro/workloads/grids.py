"""Grid scenes for the GBC and SMC benchmarks.

* GBC (grid-based collision detection): objects mapped to cells of a
  multi-resolution collision grid, inserted into per-cell linked
  lists under per-cell locks.  Collision scenes are *spatially
  coherent*: a broad-phase sweep visits objects in spatial order, so
  consecutive objects — the lanes of one SIMD group — often land in
  the same cell.  That intra-vector aliasing is what produces GBC's
  ~31-34% GLSC element failure rate (Table 4), while different
  threads sweep different regions, so cross-thread conflicts stay
  near zero — the generator reproduces both properties with a
  run-length model over spatially sorted cells.
* SMC (marching cubes): particles in a uniform 3D grid of nodes; each
  particle atomically adds a density contribution to the 8 corner
  nodes of its cell.  Particles are partitioned into z-slabs (the
  natural fluid-sim decomposition), so threads touch disjoint node
  regions and, as in the paper, failures stay ~0%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.workloads.interning import interned_generator

__all__ = ["CollisionScene", "collision_scene", "ParticleField", "particle_field"]


@dataclass
class CollisionScene:
    """Objects assigned to grid cells for GBC.

    An object straddling a cell boundary is inserted into *each* cell
    it overlaps ("maps each object into (potentially multiple) grid
    cells", Table 2), so the work list is a flat sequence of
    (object, cell) *insertions*.
    """

    n_cells: int
    n_objects: int
    insertions: List[Tuple[int, int]]  # (object id, cell id)

    @property
    def n_insertions(self) -> int:
        """Number of linked-list insertions to perform."""
        return len(self.insertions)

    @property
    def object_cells(self) -> List[int]:
        """Primary cell per object (first insertion), for diagnostics."""
        first: List[int] = [-1] * self.n_objects
        for obj, cell in self.insertions:
            if first[obj] < 0:
                first[obj] = cell
        return first

    def cell_histogram(self) -> List[int]:
        """Oracle: number of insertions ending up in each cell."""
        counts = [0] * self.n_cells
        for _, cell in self.insertions:
            counts[cell] += 1
        return counts


@interned_generator
def collision_scene(
    n_objects: int,
    n_cells: int,
    run_mean: float,
    seed: int,
    straddle_fraction: float = 0.25,
) -> CollisionScene:
    """Generate a spatially coherent scene.

    Objects come in *runs* of geometric mean length ``run_mean`` that
    share a grid cell (a pile of nearby objects); runs are laid out in
    cell order, as a spatial broad-phase sweep would visit them.  A
    SIMD group of consecutive insertions then aliases at a rate set by
    ``run_mean`` (1.0 = no aliasing), while the contiguous per-thread
    insertion ranges cover nearly disjoint cell ranges.

    ``straddle_fraction`` of the objects overlap a cell boundary and
    are inserted into the neighbouring cell as well (Table 2's
    "potentially multiple grid cells").
    """
    if n_objects <= 0 or n_cells <= 0:
        raise ConfigError("n_objects and n_cells must be positive")
    if run_mean < 1:
        raise ConfigError(f"run_mean must be >= 1, got {run_mean}")
    if not 0 <= straddle_fraction <= 1:
        raise ConfigError(
            f"straddle_fraction must be in [0, 1], got {straddle_fraction}"
        )
    rng = np.random.default_rng(seed)
    runs = []
    remaining = n_objects
    while remaining > 0:
        length = 1 + rng.geometric(1.0 / run_mean) - 1 if run_mean > 1 else 1
        length = max(1, min(int(length), remaining))
        runs.append((int(rng.integers(0, n_cells)), length))
        remaining -= length
    runs.sort()  # spatial sweep order
    insertions: List[Tuple[int, int]] = []
    obj = 0
    for cell, length in runs:
        for _ in range(length):
            insertions.append((obj, cell))
            if rng.random() < straddle_fraction:
                insertions.append((obj, (cell + 1) % n_cells))
            obj += 1
    return CollisionScene(n_cells, n_objects, insertions)


@dataclass
class ParticleField:
    """Particles in a ``dim^3`` grid of nodes for SMC."""

    dim: int
    # Per particle: the 8 node indices of its cell corners and the
    # density weight it deposits on each.
    corner_nodes: List[Tuple[int, ...]]
    weights: List[float]

    @property
    def n_particles(self) -> int:
        """Number of particles."""
        return len(self.corner_nodes)

    @property
    def n_nodes(self) -> int:
        """Number of grid nodes."""
        return self.dim ** 3

    def density_oracle(self) -> List[float]:
        """Oracle: final node densities after all deposits."""
        density = [0.0] * self.n_nodes
        for corners, weight in zip(self.corner_nodes, self.weights):
            for node in corners:
                density[node] += weight
        return density


@interned_generator
def particle_field(n_particles: int, dim: int, seed: int) -> ParticleField:
    """Generate near-uniform particles in a ``dim^3`` node grid.

    Each particle sits in a cell ``(x, y, z)`` with ``0 <= x,y,z <
    dim-1`` and touches that cell's 8 corner nodes.  Particles are
    ordered by z-slab (threads taking contiguous particle ranges thus
    own disjoint slabs of the grid), but left unsorted within a slab
    so SIMD groups rarely alias.  Weights are quarter-integers so the
    parallel-reduction oracle comparison is exact.
    """
    if dim < 2:
        raise ConfigError(f"dim must be >= 2, got {dim}")
    if n_particles <= 0:
        raise ConfigError("n_particles must be positive")
    rng = np.random.default_rng(seed)
    cells = rng.integers(0, dim - 1, size=(n_particles, 3))
    cells = cells[np.argsort(cells[:, 2], kind="stable")]
    corner_nodes = []
    for x, y, z in cells:
        corners = tuple(
            int((x + dx) + dim * ((y + dy) + dim * (z + dz)))
            for dz in (0, 1)
            for dy in (0, 1)
            for dx in (0, 1)
        )
        corner_nodes.append(corners)
    weights = [float(v) * 0.25 for v in rng.integers(1, 5, size=n_particles)]
    return ParticleField(dim, corner_nodes, weights)
