"""Synthetic images for the HIP (histogram) benchmark.

The paper's HIP datasets are 480x480 photographs of cars and of people
(Table 3).  What matters to GLSC is *spatial color coherence*: real
photographs have runs of same-colored pixels (sky, road, skin), so a
SIMD group of consecutive pixels frequently maps several lanes to the
same histogram bin — the element aliasing behind HIP's 35% (cars) and
20% (people) failure rates in Table 4.  Cross-thread contention is
irrelevant to HIP because the histogram is privatized.

We substitute a first-order Markov image: with probability
``coherence`` a pixel repeats the previous color, otherwise it draws a
fresh color from a Zipf-skewed palette.  ``coherence`` directly
controls the alias rate; ``skew`` shapes the global histogram.  The
paper's random-input control (Section 5.1) is ``coherence=0, skew=0``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.workloads.interning import interned_generator

__all__ = ["generate_image", "alias_fraction"]


@interned_generator
def generate_image(
    n_pixels: int,
    n_colors: int,
    coherence: float,
    skew: float,
    seed: int,
) -> List[int]:
    """Generate ``n_pixels`` color values in ``[0, n_colors)``.

    ``coherence`` is the probability that a pixel repeats its
    predecessor's color (spatial runs); ``skew`` is the Zipf exponent
    of the fresh-color distribution (0 = uniform).
    """
    if n_pixels <= 0 or n_colors <= 0:
        raise ConfigError("n_pixels and n_colors must be positive")
    if not 0 <= coherence < 1:
        raise ConfigError(f"coherence must be in [0, 1), got {coherence}")
    if skew < 0:
        raise ConfigError(f"skew must be >= 0, got {skew}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_colors + 1, dtype=np.float64)
    weights = ranks ** -skew
    probabilities = weights / weights.sum()
    color_of_rank = rng.permutation(n_colors)
    fresh = rng.choice(n_colors, size=n_pixels, p=probabilities)
    repeat = rng.random(n_pixels) < coherence
    pixels: List[int] = []
    previous = int(color_of_rank[fresh[0]])
    for i in range(n_pixels):
        if not (repeat[i] and pixels):
            previous = int(color_of_rank[fresh[i]])
        pixels.append(previous)
    return pixels


def alias_fraction(pixels: List[int], simd_width: int) -> float:
    """Fraction of pixels aliasing within their SIMD group.

    A diagnostic the dataset profiles use to confirm a generated image
    lands in the paper's failure-rate regime: for each consecutive
    group of ``simd_width`` pixels, every pixel beyond the first with a
    repeated color counts as an alias.
    """
    if simd_width <= 1 or not pixels:
        return 0.0
    aliased = 0
    total = 0
    for start in range(0, len(pixels) - simd_width + 1, simd_width):
        group = pixels[start : start + simd_width]
        aliased += len(group) - len(set(group))
        total += len(group)
    return aliased / total if total else 0.0
