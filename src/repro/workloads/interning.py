"""Content-keyed interning of workload generator outputs.

Every workload generator is a pure function of explicit parameters
(including its RNG seed), so two calls with equal arguments return
value-identical datasets.  A bench grid exercises each (kernel,
dataset) pair many times — once per topology x width x variant cell —
and pays the full generation cost every time.

:func:`intern_datasets` opens a scope in which decorated generators
memoize on their call signature: the batched backend wraps a whole
batch in one scope, so each distinct dataset is built once and shared
read-only by every kernel instance in the batch.  Outside a scope the
decorator is a plain passthrough — solo runs are untouched, and
nothing is ever cached across scopes (no hidden process-global state).

Sharing is safe because datasets are treated as immutable everywhere:
kernels read them to fill memory images and to compute verify oracles,
and never write back (enforced by convention and exercised by the
batch-equivalence tests, which would diverge bitwise on any mutation).
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

__all__ = ["intern_datasets", "interned_generator"]

#: The active scope's memo, or None outside any scope.  Scopes are
#: plain dynamic nesting (the batch runner opens one per batch); the
#: simulator is single-threaded, so no locking is needed.
_active: Optional[Dict[Tuple[Any, ...], Any]] = None


@contextmanager
def intern_datasets() -> Iterator[Dict[Tuple[Any, ...], Any]]:
    """Scope within which decorated generators memoize their results.

    Nested scopes share the outermost memo, so a batch runner inside a
    larger interning scope still deduplicates globally.  The memo dies
    with the outermost scope.
    """
    global _active
    if _active is not None:
        yield _active
        return
    _active = {}
    try:
        yield _active
    finally:
        _active = None


def interned_generator(fn: Callable) -> Callable:
    """Memoize ``fn`` on its call signature inside an interning scope.

    ``fn`` must be a pure function of hashable arguments (the workload
    generators all take ints/floats/strings plus a seed).  Outside a
    scope the wrapper adds one ``None`` check and delegates.
    """

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        memo = _active
        if memo is None:
            return fn(*args, **kwargs)
        key = (
            fn.__module__,
            fn.__qualname__,
            args,
            tuple(sorted(kwargs.items())),
        )
        try:
            return memo[key]
        except KeyError:
            value = fn(*args, **kwargs)
            memo[key] = value
            return value

    return wrapper
