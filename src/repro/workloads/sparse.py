"""Sparse matrices for the FS and TMS benchmarks.

* TMS (transpose sparse matrix-vector multiply) needs a rectangular
  sparse matrix as a flat nonzero list: threads split nonzeros evenly
  and reduce ``A[i,j] * x[i]`` into ``y[j]`` atomically.
* FS (forward triangular solve) needs a block lower-triangular matrix
  with a block dependence graph; subblocks are dense, solved in level
  order, with atomic floating-point subtractions into the shared
  right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.workloads.interning import interned_generator

__all__ = [
    "SparseMatrix",
    "random_sparse",
    "BlockTriangular",
    "block_triangular",
    "forward_substitute",
]


def forward_substitute(lower, rhs) -> List[float]:
    """Solve ``lower @ x = rhs`` for a unit-diagonal lower triangle.

    Plain left-to-right substitution; with the dyadic-rational values
    this package generates, every intermediate is exactly representable
    in float64, so kernel and oracle agree bit-for-bit.
    """
    n = len(rhs)
    x = [0.0] * n
    for r in range(n):
        acc = rhs[r]
        for k in range(r):
            acc -= lower[r][k] * x[k]
        x[r] = acc / lower[r][r]
    return x


@dataclass
class SparseMatrix:
    """A rectangular sparse matrix as a flat COO nonzero list."""

    rows: int
    cols: int
    nonzeros: List[Tuple[int, int, float]]  # (row, col, value)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return len(self.nonzeros)

    @property
    def density(self) -> float:
        """Fraction of entries stored."""
        return self.nnz / (self.rows * self.cols)

    def transpose_matvec(self, x: List[float]) -> List[float]:
        """Oracle: ``y = A^T x`` computed directly."""
        y = [0.0] * self.cols
        for row, col, value in self.nonzeros:
            y[col] += value * x[row]
        return y


@interned_generator
def random_sparse(
    rows: int,
    cols: int,
    density: float,
    seed: int,
    band: Optional[float] = None,
) -> SparseMatrix:
    """A random sparse matrix with ~``density`` fill.

    With ``band`` set, column positions concentrate around the row's
    diagonal position with that standard deviation (in columns) — the
    banded structure typical of matrices from meshes and solvers, and
    the reason two *threads* (processing distant row ranges) rarely
    reduce into the same ``y`` entries (Table 4: TMS fails ~0%).
    ``band=None`` gives uniformly random columns.

    Values are small dyadic rationals so the oracle comparison is
    exact regardless of reduction order.
    """
    if rows <= 0 or cols <= 0:
        raise ConfigError("rows and cols must be positive")
    if not 0 < density <= 1:
        raise ConfigError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    nnz = max(1, min(int(round(rows * cols * density)), rows * cols))
    positions = set()
    while len(positions) < nnz:
        row = int(rng.integers(0, rows))
        if band is None:
            col = int(rng.integers(0, cols))
        else:
            center = row * cols / rows
            col = int(round(rng.normal(center, band)))
            if not 0 <= col < cols:
                continue
        positions.add((row, col))
    values = rng.integers(1, 8, size=len(positions))
    nonzeros = [
        (row, col, float(v) * 0.5)
        for (row, col), v in zip(sorted(positions), values)
    ]
    return SparseMatrix(rows, cols, nonzeros)


@dataclass
class BlockTriangular:
    """A block lower-triangular system ``L x = b`` for FS.

    ``n_blocks`` square dense blocks of size ``block`` on the diagonal;
    off-diagonal block (i, j), i > j, is present with the dependence
    pattern in ``off_blocks``.  ``levels[j]`` is the wavefront at which
    block-column j's unknowns can be solved.
    """

    block: int
    n_blocks: int
    diag: List[np.ndarray]                     # diagonal blocks (unit-ish)
    off_blocks: Dict[Tuple[int, int], np.ndarray]  # (i, j) -> dense block
    rhs: List[float]
    levels: List[int] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Total number of unknowns."""
        return self.block * self.n_blocks

    def level_schedule(self) -> List[List[int]]:
        """Block columns grouped by solve wavefront."""
        n_levels = max(self.levels) + 1 if self.levels else 0
        schedule: List[List[int]] = [[] for _ in range(n_levels)]
        for j, level in enumerate(self.levels):
            schedule[level].append(j)
        return schedule

    def solve_oracle(self) -> List[float]:
        """Direct forward solve, for verification.

        Uses :func:`forward_substitute` — the same exact dyadic
        arithmetic the kernel performs — so simulated results compare
        with ``==``, not a tolerance.
        """
        x = [0.0] * self.n
        b = list(self.rhs)
        for j in range(self.n_blocks):
            lo = j * self.block
            xs = forward_substitute(self.diag[j], b[lo : lo + self.block])
            x[lo : lo + self.block] = xs
            for (i, jj), blk in sorted(self.off_blocks.items()):
                if jj == j:
                    ilo = i * self.block
                    for r in range(self.block):
                        contribution = sum(
                            blk[r][k] * xs[k] for k in range(self.block)
                        )
                        b[ilo + r] -= contribution
        return x


@interned_generator
def block_triangular(
    n_blocks: int, block: int, fill: float, seed: int
) -> BlockTriangular:
    """Generate a well-conditioned block lower-triangular system.

    Diagonal blocks are identity plus small lower-triangular noise, so
    the solve is stable and the oracle comparison is tight.  Values are
    quarter-integers so parallel reduction order cannot perturb the
    result.
    """
    if n_blocks <= 0 or block <= 0:
        raise ConfigError("n_blocks and block must be positive")
    if not 0 <= fill <= 1:
        raise ConfigError(f"fill must be in [0, 1], got {fill}")
    rng = np.random.default_rng(seed)
    diag = []
    for _ in range(n_blocks):
        noise = np.tril(rng.integers(0, 3, size=(block, block)), k=-1) * 0.25
        diag.append(np.eye(block) + noise)
    off_blocks: Dict[Tuple[int, int], np.ndarray] = {}
    for i in range(1, n_blocks):
        for j in range(i):
            if rng.random() < fill:
                off_blocks[(i, j)] = (
                    rng.integers(0, 4, size=(block, block)) * 0.25
                )
    rhs = [float(v) * 0.5 for v in rng.integers(1, 9, size=n_blocks * block)]
    levels = [0] * n_blocks
    for j in range(n_blocks):
        deps = [k for (i, k) in off_blocks if i == j]
        levels[j] = 1 + max((levels[k] for k in deps), default=-1)
    return BlockTriangular(block, n_blocks, diag, off_blocks, rhs, levels)
