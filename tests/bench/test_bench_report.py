"""Markdown report + sparkline tests, and the tier-2 full-suite run."""

import pytest

from repro.bench import (
    BenchRunner,
    Comparator,
    render_markdown,
    sparkline,
    trajectory_entry,
)
from repro.bench.fidelity import distill_reference
from repro.bench.suite import BenchSuite, get_suite


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_uses_lowest_block(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_monotone_series_rises(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 4


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def doc(self):
        suite = BenchSuite.grid(
            "tiny", ("tms",), "tiny", topologies=("1x2",), widths=(4,)
        )
        return BenchRunner(suite, repeats=1, git_sha="abc1234").run()

    def test_clean_report(self, doc):
        comparison = Comparator().compare(
            doc, trajectory_entry(doc), distill_reference(doc)
        )
        markdown = render_markdown(
            comparison, [trajectory_entry(doc)], doc=doc
        )
        assert "# Bench report — `abc1234`" in markdown
        assert "Gate: ok" in markdown
        assert "Every metric within bounds." in markdown
        assert "## Fidelity snapshot" in markdown
        assert "## Trajectory" in markdown
        assert "total wall (s)" in markdown

    def test_regressed_report_lists_exceptions(self, doc):
        import copy

        slowed = copy.deepcopy(doc)
        for point in slowed["points"]:
            point["wall_s"]["median"] *= 10
        comparison = Comparator().compare(slowed, trajectory_entry(doc))
        markdown = render_markdown(comparison)
        assert "Gate: REGRESSED" in markdown
        assert "## Exceptions" in markdown
        assert "**regressed**" in markdown


@pytest.mark.tier2
class TestFullSuiteTier2:
    """The real observatory grid, end to end (slow; tier-2 only)."""

    def test_full_suite_runs_and_self_compares_clean(self):
        doc = BenchRunner(get_suite("full"), repeats=1,
                          git_sha="tier2run").run()
        assert len(doc["points"]) == 84
        assert doc["deterministic"] is True
        # 28 (kernel, width, topology) cells => 42 ratio keys at 2
        # topologies x 3 widths x 7 kernels.
        assert len(doc["fidelity"]["speedup"]) == 42
        comparison = Comparator().compare(
            doc, trajectory_entry(doc), distill_reference(doc)
        )
        assert not comparison.failed
