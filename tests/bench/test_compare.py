"""Comparator tests — the drift gate must actually catch drift.

The acceptance-shaped scenarios: re-running an unchanged point within
noise bounds yields ``ok``; a synthetic slowdown or a fidelity-band
violation yields ``regressed`` and a nonzero CLI exit code.
"""

import copy
import json

import pytest

from repro.bench import (
    BenchRunner,
    Comparator,
    append_trajectory,
    load_bench,
    load_trajectory,
    trajectory_entry,
    write_bench,
)
from repro.bench.baseline import previous_entry
from repro.bench.fidelity import distill_reference
from repro.bench.suite import BenchSuite
from repro.harness.cli import main


def tiny_suite():
    return BenchSuite.grid(
        "tiny", ("tms",), "tiny", topologies=("1x2",), widths=(4,)
    )


@pytest.fixture(scope="module")
def doc():
    return BenchRunner(tiny_suite(), repeats=2, git_sha="aaa0001").run()


@pytest.fixture
def reference(doc):
    return distill_reference(doc)


class TestPerfGate:
    def test_unchanged_run_is_ok(self, doc, reference):
        comparison = Comparator().compare(
            doc, trajectory_entry(doc), reference
        )
        assert not comparison.failed
        assert comparison.by_verdict("regressed") == []
        assert all(
            v.verdict in ("ok", "skipped") for v in comparison.verdicts
        )

    def test_rerun_within_noise_is_ok(self, doc, reference):
        """An actual fresh re-run of the same code stays within bounds."""
        rerun = BenchRunner(tiny_suite(), repeats=2, git_sha="aaa0002").run()
        comparison = Comparator().compare(
            rerun, trajectory_entry(doc), reference
        )
        assert not comparison.failed

    def test_synthetic_slowdown_regresses(self, doc, reference):
        slowed = copy.deepcopy(doc)
        # 100x, not 10x: the tiny-suite points run in a few ms, and a
        # 10x slowdown on a 2ms point is within the comparator's
        # absolute scheduling-noise floor (by design).
        for point in slowed["points"]:
            point["wall_s"]["median"] *= 100
        comparison = Comparator().compare(
            slowed, trajectory_entry(doc), reference
        )
        regressed = comparison.by_verdict("regressed")
        assert comparison.failed
        assert {v.kind for v in regressed} == {"perf"}
        assert len(regressed) == len(doc["points"])

    def test_synthetic_speedup_is_improved_not_failing(self, doc, reference):
        faster = copy.deepcopy(doc)
        for point in faster["points"]:
            point["wall_s"]["median"] /= 10
        # Pin the noise bound to rel_tol alone: with only 2 repeats the
        # MAD term (and the absolute floor on sub-ms runs) can swallow
        # even a 10x improvement.
        comparison = Comparator(mad_mult=0.0, abs_floor_s=0.0).compare(
            faster, trajectory_entry(doc), reference
        )
        assert not comparison.failed
        assert comparison.by_verdict("improved")

    def test_missing_point_reported(self, doc):
        shrunk = copy.deepcopy(doc)
        dropped = shrunk["points"].pop()
        comparison = Comparator().compare(shrunk, trajectory_entry(doc))
        missing = comparison.by_verdict("missing")
        assert [v.metric for v in missing] == [f"wall:{dropped['id']}"]

    def test_skip_perf_disables_wall_verdicts(self, doc):
        slowed = copy.deepcopy(doc)
        for point in slowed["points"]:
            point["wall_s"]["median"] *= 10
        comparison = Comparator(check_perf=False).compare(
            slowed, trajectory_entry(doc)
        )
        assert not any(v.kind == "perf" for v in comparison.verdicts)
        assert not comparison.failed


class TestThroughputReport:
    """sim_khz verdicts are informational: visible, never gating."""

    def test_unchanged_throughput_is_ok(self, doc):
        comparison = Comparator().compare(doc, trajectory_entry(doc))
        verdicts = [
            v for v in comparison.verdicts if v.kind == "throughput"
        ]
        assert verdicts and all(
            v.verdict in ("ok", "new") for v in verdicts
        )

    def test_throughput_drop_changes_but_never_fails(self, doc):
        slowed = copy.deepcopy(doc)
        for point in slowed["points"]:
            point["wall_s"]["median"] *= 100
        comparison = Comparator(check_cycles=False).compare(
            slowed, trajectory_entry(doc)
        )
        khz = [
            v for v in comparison.verdicts
            if v.metric.startswith("sim_khz:")
        ]
        assert len(khz) == 1
        assert khz[0].verdict == "changed"
        # The wall-time gate regresses, but the throughput verdict
        # alone must not: re-check with the perf points stripped of
        # regressions by comparing only the throughput verdicts.
        assert all(v.verdict != "regressed" for v in khz)

    def test_skip_perf_disables_wall_throughput_keeps_proxy(self, doc):
        """--skip-perf drops the wall-based sim_khz verdicts but keeps
        the deterministic cycles-per-instruction proxy (it is
        machine-independent, so a foreign baseline cannot distort it).
        """
        comparison = Comparator(check_perf=False).compare(
            doc, trajectory_entry(doc)
        )
        throughput = [
            v for v in comparison.verdicts if v.kind == "throughput"
        ]
        assert all(
            v.metric.startswith("cyc_per_instr:") for v in throughput
        )
        assert len(throughput) == 1

    def test_gate_throughput_escalates_khz_drop(self, doc):
        slowed = copy.deepcopy(doc)
        for point in slowed["points"]:
            point["wall_s"]["median"] *= 100
        comparison = Comparator(
            check_perf=True, check_cycles=False, gate_throughput=True
        ).compare(slowed, trajectory_entry(doc))
        khz = [
            v for v in comparison.verdicts
            if v.metric.startswith("sim_khz:")
        ]
        assert len(khz) == 1
        assert khz[0].verdict == "regressed"
        assert comparison.failed

    def test_proxy_gates_on_cpi_drift_only_when_asked(self, doc):
        drifted = copy.deepcopy(doc)
        for point in drifted["points"]:
            point["cycles"] = int(point["cycles"] * 2)
        baseline = trajectory_entry(doc)
        informational = Comparator(check_perf=False).compare(
            drifted, baseline
        )
        proxy = [
            v for v in informational.verdicts
            if v.metric.startswith("cyc_per_instr:")
        ]
        assert len(proxy) == 1 and proxy[0].verdict == "changed"
        gated = Comparator(
            check_perf=False, gate_throughput=True
        ).compare(drifted, baseline)
        proxy = [
            v for v in gated.verdicts
            if v.metric.startswith("cyc_per_instr:")
        ]
        assert len(proxy) == 1 and proxy[0].verdict == "regressed"
        assert gated.failed

    def test_pre_sim_khz_baseline_falls_back_to_cyc_per_s(self, doc):
        entry = trajectory_entry(doc)
        old = entry["headline"].pop("sim_khz")
        comparison = Comparator().compare(doc, entry)
        khz = [
            v for v in comparison.verdicts
            if v.metric.startswith("sim_khz:")
        ]
        assert len(khz) == 1
        assert khz[0].old == pytest.approx(old, rel=1e-9)


class TestCycleDrift:
    def test_cycle_change_flagged_as_changed(self, doc):
        drifted = copy.deepcopy(doc)
        drifted["points"][0]["cycles"] += 100
        comparison = Comparator().compare(drifted, trajectory_entry(doc))
        changed = comparison.by_verdict("changed")
        assert len(changed) == 1
        assert changed[0].kind == "cycles"
        # Cycle drift alone warns but does not fail the gate; the
        # fidelity bands are the semantic arbiter.
        assert not comparison.failed


class TestFidelityGate:
    def test_speedup_outside_band_regresses(self, doc, reference):
        shifted = copy.deepcopy(doc)
        shifted["fidelity"]["speedup"] = {
            key: value * 3
            for key, value in shifted["fidelity"]["speedup"].items()
        }
        comparison = Comparator().compare(shifted, None, reference)
        assert comparison.failed
        assert any(
            v.metric.startswith("speedup:") for v in
            comparison.by_verdict("regressed")
        )

    def test_failure_rate_outside_band_regresses(self, doc, reference):
        shifted = copy.deepcopy(doc)
        for entry in shifted["fidelity"]["failure_mix"].values():
            entry["rate"] = 0.99
        comparison = Comparator().compare(shifted, None, reference)
        assert any(
            v.metric.startswith("failure_rate:")
            for v in comparison.by_verdict("regressed")
        )

    def test_dominant_cause_flip_regresses(self, doc, reference):
        flipped = copy.deepcopy(doc)
        for entry in flipped["fidelity"]["failure_mix"].values():
            entry["dominant"] = "eviction"
        comparison = Comparator().compare(flipped, None, reference)
        assert any(
            v.metric.startswith("failure_dominant:")
            for v in comparison.by_verdict("regressed")
        )

    def test_unknown_points_skipped_not_failed(self, doc):
        comparison = Comparator().compare(
            doc, None, {"speedup_bands": {}, "failure_mix": {}}
        )
        assert not comparison.failed
        assert comparison.by_verdict("skipped")


class TestCliGate:
    """The CI contract: `bench compare` exits 1 exactly on regression."""

    def _archive(self, tmp_path, doc, reference):
        write_bench(doc, tmp_path)
        append_trajectory(doc, tmp_path / "BENCH_TRAJECTORY.jsonl")
        with open(tmp_path / "BENCH_REFERENCE.json", "w") as fh:
            json.dump(reference, fh)

    def test_clean_compare_exits_zero(self, tmp_path, capsys, doc, reference):
        self._archive(tmp_path, doc, reference)
        code = main(["bench", "compare", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "GATE: ok" in out

    def test_injected_drift_exits_nonzero(
        self, tmp_path, capsys, doc, reference
    ):
        self._archive(tmp_path, doc, reference)
        # Tamper with the archived document: slow one point down 100x
        # (10x on a few-ms point would hide inside the absolute
        # scheduling-noise floor) and push one speedup ratio far
        # outside its reference band.
        path = tmp_path / f"BENCH_{doc['git_sha']}.json"
        tampered = load_bench(path)
        tampered["git_sha"] = "bbb0002"
        tampered["points"][0]["wall_s"]["median"] *= 100
        key = next(iter(tampered["fidelity"]["speedup"]))
        tampered["fidelity"]["speedup"][key] *= 5
        write_bench(tampered, tmp_path)

        code = main([
            "bench", "compare", "--dir", str(tmp_path),
            "--bench", str(tmp_path / "BENCH_bbb0002.json"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "GATE: REGRESSED" in out
        assert "wall:" in out and "speedup:" in out

    def test_previous_entry_skips_own_sha(self, doc):
        first = trajectory_entry(doc)
        second = dict(first, git_sha="ccc0003")
        assert previous_entry([first, second], "tiny",
                              exclude_sha="ccc0003") is first
        assert previous_entry([first], "tiny",
                              exclude_sha="aaa0001") is first
        assert previous_entry([first], "other-suite") is None

    def test_trajectory_round_trip(self, tmp_path, doc):
        path = tmp_path / "BENCH_TRAJECTORY.jsonl"
        entry = append_trajectory(doc, path)
        loaded = load_trajectory(path)
        assert loaded == [json.loads(json.dumps(entry))]
