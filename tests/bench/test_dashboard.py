"""The HTML trajectory dashboard: self-contained, no dependencies."""

from repro.bench.dashboard import render_dashboard


def entry(sha, wall, cycles=1000, suite="smoke", contention=None):
    doc = {
        "git_sha": sha,
        "suite": suite,
        "headline": {
            "points": 4,
            "total_wall_s": wall,
            "sim_khz": 120.0,
            "total_cycles": cycles,
            "mean_speedup": 1.8,
            "instr_per_sec": 5e5,
        },
        "cycles": {"tms-tiny-1x1-w4-glsc": cycles},
        "wall": {"tms-tiny-1x1-w4-glsc": {"median": wall / 4}},
    }
    if contention is not None:
        doc["contention"] = contention
    return doc


def contention_block(kills=12, lanes=30, storms=1):
    return {
        "kills": kills,
        "failed_lanes": lanes,
        "storms": storms,
        "max_retry_depth": 4,
        "points": {
            "tms-tiny-1x1-w4-glsc": {
                "kills": kills,
                "failed_lanes": lanes,
                "storms": storms,
                "hot_line": "tms.y+0x40",
                "hot_line_total": kills + lanes,
                "max_retry_depth": 4,
            },
        },
    }


class TestRenderDashboard:
    def test_charts_cover_headline_and_points(self):
        html = render_dashboard(
            [entry("aaa111", 2.0), entry("bbb222", 2.5, cycles=1100)]
        )
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "polyline" in html
        assert "Total wall time" in html
        assert "tms-tiny-1x1-w4-glsc" in html
        assert "aaa111" in html and "bbb222" in html
        # Self-contained: no scripts, no external fetches.
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_suite_filter_drops_other_suites(self):
        html = render_dashboard(
            [entry("aaa111", 2.0), entry("ccc333", 9.0, suite="full")],
            suite="smoke",
        )
        assert "aaa111" in html
        assert "ccc333" not in html

    def test_history_keeps_only_the_tail(self):
        entries = [entry(f"sha{i:04d}", float(i + 1)) for i in range(10)]
        html = render_dashboard(entries, history=3)
        assert "sha0009" in html
        assert "sha0000" not in html

    def test_empty_trajectory_renders_a_hint(self):
        html = render_dashboard([])
        assert "No trajectory entries yet" in html
        assert html.rstrip().endswith("</html>")

    def test_single_run_still_renders(self):
        html = render_dashboard([entry("solo123", 1.0)])
        assert "<svg" in html
        assert "solo123" in html

    def test_tooltip_values_are_escaped(self):
        bad = entry("<img>", 2.0)
        html = render_dashboard([bad])
        assert "<img>" not in html
        assert "&lt;img&gt;" in html


class TestContentionPanel:
    def test_panel_renders_trend_and_heatmap(self):
        html = render_dashboard([
            entry("aaa111", 2.0, contention=contention_block(kills=5)),
            entry("bbb222", 2.1, contention=contention_block(kills=9)),
        ])
        assert "Contention" in html
        assert "Reservation kills" in html
        assert "tms.y+0x40" in html
        assert "rgba(224, 49, 49" in html  # heat cells present

    def test_points_without_the_block_are_tolerated(self):
        # Forward/backward compat: trajectories mixing entries written
        # before and after the contention observatory still render.
        html = render_dashboard([
            entry("old0001", 2.0),  # pre-observatory entry
            entry("new0002", 2.1, contention=contention_block()),
        ])
        assert "Contention" in html
        assert "old0001" in html and "new0002" in html

    def test_no_contention_anywhere_omits_the_panel(self):
        html = render_dashboard([entry("aaa111", 2.0)])
        assert "Contention" not in html

    def test_empty_trajectory_still_short_circuits(self):
        assert "Contention" not in render_dashboard([])

    def test_one_entry_trajectory_with_contention(self):
        html = render_dashboard(
            [entry("solo123", 1.0, contention=contention_block())]
        )
        assert "Contention" in html
        assert "solo123" in html
        assert "<script" not in html

    def test_hot_line_names_are_escaped(self):
        block = contention_block()
        block["points"]["tms-tiny-1x1-w4-glsc"]["hot_line"] = "<b>evil"
        html = render_dashboard([entry("aaa111", 2.0, contention=block)])
        assert "<b>evil" not in html
        assert "&lt;b&gt;evil" in html
