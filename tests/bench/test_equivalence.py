"""Bitwise-equivalence gate for simulator hot-path work.

The simulator is a deterministic timing model: optimizations to the
dispatch loop, the cycle loop, or the memory hierarchy must not change
a single cycle count or statistic.  These tests pin every grid point
to a golden ``(cycles, sha256(stats))`` pair captured from the
reference implementation (the pre-optimization loop described in
``sim/machine.py``), so any accidental semantic change — a reordered
round-robin pick, a barrier released one cycle late, a stat counted
twice — fails loudly instead of drifting.

The smoke subset runs in tier-1 on every test invocation; the full
84-point grid is tier-2 (``pytest -m tier2``) and is what the bench
acceptance gate cites.

Regenerating the goldens is a deliberate act: if a model change is
*supposed* to move cycles, recapture with the snippet in each test's
failure message and say so in the commit.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.bench.suite import BenchSuite, point_id
from repro.sim.batch import BatchRunner
from repro.sim.executor import execute_spec

DATA = Path(__file__).parent / "data"


def stats_digest(stats) -> str:
    """Canonical digest of a MachineStats: sorted, separator-stable."""
    payload = json.dumps(
        stats.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def solo_stats(specs):
    """The reference path: one machine at a time via execute_spec."""
    return [execute_spec(spec, verify=True) for spec in specs]


def batch_stats(specs):
    """The batched path: every spec through one BatchRunner."""
    return [result.stats for result in BatchRunner(specs).run()]


def check_grid(suite: BenchSuite, golden_name: str, runner=solo_stats) -> None:
    golden = json.loads((DATA / golden_name).read_text())
    specs = list(suite.specs())
    assert len(specs) == len(golden), (
        f"suite {suite.name} has {len(specs)} points but {golden_name} "
        f"holds {len(golden)}; regenerate the golden file"
    )
    mismatches = []
    for spec, stats in zip(specs, runner(specs)):
        pid = point_id(spec)
        want = golden[pid]
        if stats.cycles != want["cycles"]:
            mismatches.append(
                f"{pid}: cycles {stats.cycles} != golden {want['cycles']}"
            )
        elif stats_digest(stats) != want["stats_sha256"]:
            mismatches.append(
                f"{pid}: cycles match but stats digest drifted"
            )
    assert not mismatches, (
        "simulator output drifted from golden "
        + golden_name + ":\n  " + "\n  ".join(mismatches)
    )


def test_smoke_grid_matches_golden():
    """Tier-1: the 16-point smoke grid is bitwise-identical."""
    check_grid(BenchSuite.smoke(), "golden_smoke.json")


def test_smoke_grid_matches_golden_batched():
    """Tier-1: the smoke grid through BatchRunner hits the same goldens.

    The batched backend shares interned inputs and interleaves all
    machines on one event heap; this pins that none of it is
    observable in the results.
    """
    check_grid(BenchSuite.smoke(), "golden_smoke.json", runner=batch_stats)


@pytest.mark.tier2
def test_full_grid_matches_golden():
    """Tier-2: all 84 full-grid points are bitwise-identical."""
    check_grid(BenchSuite.full(), "golden_full.json")


@pytest.mark.tier2
def test_full_grid_matches_golden_batched():
    """Tier-2: all 84 points through BatchRunner are bitwise-identical."""
    check_grid(BenchSuite.full(), "golden_full.json", runner=batch_stats)
