"""Phase attribution: synthetic event streams and real bench points."""

import pytest

from repro.bench.phases import PHASE_NAMES, PhaseSink
from repro.bench.runner import BenchRunner
from repro.bench.suite import BenchSuite
from repro.isa.instructions import Kind
from repro.obs.bus import EventBus
from repro.obs.events import ElementOutcome
from repro.sim.trace import TraceEvent


def instr(cycle, latency, sync, thread=0, core=0, kind=Kind.ALU):
    return TraceEvent(
        cycle=cycle, completion=cycle + latency, thread=thread,
        core=core, kind=kind, sync=sync,
    )


def outcome(cycle, ok, op="gatherlink", core=0):
    return ElementOutcome(
        cycle=cycle, core=core, slot=0, line_addr=0x40, op=op,
        lanes=4, ok=ok, cause=None if ok else "line_stolen",
    )


class TestPhaseSink:
    def test_sync_work_is_gather_until_an_element_fails(self):
        sink = PhaseSink()
        sink.on_event(instr(0, 5, sync=True))       # first attempt
        sink.on_event(outcome(5, ok=False))          # reservation lost
        sink.on_event(instr(6, 5, sync=True))        # re-issue
        assert sink.gather == 5
        assert sink.retry == 5

    def test_committed_scattercond_ends_the_retry_loop(self):
        sink = PhaseSink()
        sink.on_event(outcome(0, ok=False))
        sink.on_event(instr(1, 3, sync=True))        # retrying
        sink.on_event(outcome(4, ok=True, op="scattercond"))
        sink.on_event(instr(5, 3, sync=True))        # fresh attempt
        assert sink.retry == 3
        assert sink.gather == 3

    def test_successful_gatherlink_does_not_clear_the_flag(self):
        sink = PhaseSink()
        sink.on_event(outcome(0, ok=False))
        sink.on_event(outcome(1, ok=True, op="gatherlink"))
        sink.on_event(instr(2, 3, sync=True))
        assert sink.retry == 3                       # still recovering

    def test_retry_state_is_per_core(self):
        sink = PhaseSink()
        sink.on_event(outcome(0, ok=False, core=0))
        sink.on_event(instr(1, 2, sync=True, core=0, thread=0))
        sink.on_event(instr(1, 2, sync=True, core=1, thread=4))
        assert sink.retry == 2                       # core 0 only
        assert sink.gather == 2                      # core 1 unaffected

    def test_non_sync_instructions_are_compute(self):
        sink = PhaseSink()
        sink.on_event(instr(0, 4, sync=False))
        assert sink.compute == 4
        assert sink.gather == 0

    def test_breakdown_sums_exactly_to_capacity(self):
        sink = PhaseSink()
        sink.on_event(instr(0, 5, sync=True, thread=0))
        sink.on_event(instr(0, 3, sync=False, thread=1))
        breakdown = sink.breakdown(cycles=10)
        assert breakdown["threads"] == 2
        assert breakdown["capacity"] == 20
        assert (
            breakdown["gather"] + breakdown["compute"]
            + breakdown["retry"] + breakdown["stall"]
        ) == 20
        assert sum(breakdown["fractions"].values()) == pytest.approx(1.0)
        assert tuple(breakdown["fractions"]) == PHASE_NAMES

    def test_stall_clamps_at_zero_when_over_attributed(self):
        sink = PhaseSink()
        sink.on_event(instr(0, 50, sync=False))
        breakdown = sink.breakdown(cycles=10)
        assert breakdown["stall"] == 0
        assert sum(breakdown["fractions"].values()) == pytest.approx(1.0)


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def doc(self):
        suite = BenchSuite.grid(
            "tiny", ("tms",), "tiny", topologies=("1x2",), widths=(4,)
        )
        return BenchRunner(suite, repeats=1, git_sha="abc1234").run()

    def test_every_point_carries_a_phase_breakdown(self, doc):
        for point in doc["points"]:
            breakdown = point["phases"]
            assert breakdown["capacity"] == (
                point["cycles"] * breakdown["threads"]
            )
            assert set(breakdown["fractions"]) == set(PHASE_NAMES)

    def test_glsc_point_attributes_gather_work(self, doc):
        glsc = next(
            p for p in doc["points"]
            if p["spec"]["variant"] == "glsc"
        )
        assert glsc["phases"]["gather"] > 0

    def test_report_renders_the_phase_table(self, doc):
        from repro.bench.baseline import trajectory_entry
        from repro.bench.compare import Comparator
        from repro.bench.fidelity import distill_reference
        from repro.bench.report import render_markdown

        comparison = Comparator().compare(
            doc, trajectory_entry(doc), distill_reference(doc)
        )
        markdown = render_markdown(
            comparison, [trajectory_entry(doc)], doc=doc
        )
        assert "## Phase attribution" in markdown
        assert "| point | gather | compute | retry | stall |" in markdown

    def test_no_phases_flag_omits_the_breakdown(self):
        suite = BenchSuite.grid(
            "tiny", ("tms",), "tiny", topologies=("1x1",), widths=(1,)
        )
        doc = BenchRunner(
            suite, repeats=1, git_sha="abc1234", phases=False
        ).run()
        assert all("phases" not in p for p in doc["points"])

    def test_observed_pass_does_not_perturb_cycles(self, doc):
        # The runner asserts sinkless == observed cycles internally;
        # reaching here with a doc at all proves it held.  Cross-check
        # one point against a fresh sinkless run anyway.
        from repro.sim.executor import RunSpec, execute_spec

        point = doc["points"][0]
        spec = RunSpec.from_dict(point["spec"])
        bus = EventBus()
        bus.attach(PhaseSink())
        stats = execute_spec(spec, obs=bus)
        bus.close()
        assert stats.cycles == point["cycles"]
