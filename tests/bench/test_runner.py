"""BenchRunner tests: fresh repeats, aggregation, document schema."""

import pytest

from repro.bench.baseline import BENCH_SCHEMA_VERSION
from repro.bench.runner import BenchRunner, mad
from repro.bench.suite import BenchSuite


def tiny_suite(name="tiny"):
    return BenchSuite.grid(
        name, ("tms",), "tiny", topologies=("1x2",), widths=(1, 4)
    )


@pytest.fixture
def doc(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SHA", "cafef00")
    return BenchRunner(tiny_suite(), repeats=2).run()


class TestMad:
    def test_single_sample_has_no_spread(self):
        assert mad([1.0]) == 0.0

    def test_robust_center(self):
        # One outlier does not blow the scale up: median of |x - 2| over
        # {1, 0, 0, 98} = 0.5.
        assert mad([1.0, 2.0, 2.0, 100.0]) == 0.5


class TestRunnerDocument:
    def test_schema_and_identity(self, doc):
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["git_sha"] == "cafef00"
        assert doc["suite"] == "tiny"
        assert doc["repeats"] == 2
        assert doc["deterministic"] is True
        assert doc["provenance"]["repro_version"]

    def test_one_entry_per_point_with_all_samples(self, doc):
        assert len(doc["points"]) == 4
        for point in doc["points"]:
            wall = point["wall_s"]
            assert len(wall["samples"]) == 2
            assert wall["min"] <= wall["median"]
            assert wall["mad"] >= 0.0
            assert point["cycles"] > 0
            assert point["cyc_per_s"] > 0
            assert point["summary"]["cycles"] == point["cycles"]

    def test_fidelity_from_collected_stats(self, doc):
        """Speedups/failure mixes come from MachineStats of this run."""
        speedup = doc["fidelity"]["speedup"]
        assert set(speedup) == {"tms/tiny:1x2:w1", "tms/tiny:1x2:w4"}
        by_id = {p["id"]: p["cycles"] for p in doc["points"]}
        for key, value in speedup.items():
            expected = by_id[key + ":base"] / by_id[key + ":glsc"]
            assert value == pytest.approx(expected)
        mix = doc["fidelity"]["failure_mix"]["tms/tiny:1x2:w4:glsc"]
        assert 0.0 <= mix["rate"] <= 1.0
        assert mix["attempts"] > 0
        assert mix["dominant"] in (None, *mix["mix"].keys())
        if any(mix["mix"].values()):
            assert sum(mix["mix"].values()) == pytest.approx(1.0)

    def test_contention_block_on_every_point(self, doc):
        """The observed pass tags each point with a compact block."""
        for point in doc["points"]:
            block = point["contention"]
            assert set(block) == {
                "kills", "by_cause", "failed_lanes", "hot_line",
                "hot_line_total", "storms", "max_retry_depth",
            }
            assert block["kills"] >= 0
            assert sum(block["by_cause"].values()) == block["kills"]
            if block["hot_line"] is not None:
                # Symbolized through the kernel's named regions.
                assert block["hot_line"].startswith(("tms.", "0x"))

    def test_no_phases_run_omits_contention(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHA", "cafef00")
        doc = BenchRunner(tiny_suite(), repeats=1, phases=False).run()
        for point in doc["points"]:
            assert "contention" not in point
            assert "phases" not in point

    def test_trajectory_entry_rolls_contention_up(self, doc):
        from repro.bench.baseline import trajectory_entry

        entry = trajectory_entry(doc)
        rollup = entry["contention"]
        assert rollup["kills"] == sum(
            p["contention"]["kills"] for p in doc["points"]
        )
        assert rollup["failed_lanes"] == sum(
            p["contention"]["failed_lanes"] for p in doc["points"]
        )
        assert set(rollup["points"]) == {p["id"] for p in doc["points"]}

    def test_trajectory_entry_without_contention_omits_key(self, doc):
        from repro.bench.baseline import trajectory_entry

        stripped = dict(doc)
        stripped["points"] = [
            {k: v for k, v in p.items() if k != "contention"}
            for p in doc["points"]
        ]
        assert "contention" not in trajectory_entry(stripped)

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            BenchRunner(tiny_suite(), repeats=0)

    def test_repeats_are_fresh_not_cached(self, monkeypatch):
        """Both repeats must actually simulate (no memo/store serving)."""
        monkeypatch.setenv("REPRO_BENCH_SHA", "cafef00")
        from repro.sim import executor as executor_mod

        calls = []
        original = executor_mod.execute_spec

        def counting(spec, *args, **kwargs):
            calls.append(spec)
            return original(spec, *args, **kwargs)

        monkeypatch.setattr(executor_mod, "execute_spec", counting)
        suite = BenchSuite.grid(
            "one", ("tms",), "tiny", topologies=("1x2",), widths=(4,)
        )
        BenchRunner(suite, repeats=3).run()
        assert len(calls) == len(suite) * 3
