"""Bench-suite grid tests: declared shape, stable ids, round-trips."""

import pytest

from repro.errors import ConfigError
from repro.bench.suite import (
    BenchSuite,
    get_suite,
    point_id,
    spec_from_id,
    SUITE_NAMES,
)
from repro.kernels.registry import KERNEL_ORDER
from repro.sim.executor import RunSpec


class TestFullSuite:
    def test_grid_shape(self):
        suite = get_suite("full")
        # every kernel x {1,4,16} x {1x1,4x4} x {base,glsc} on dataset A
        assert len(suite) == len(KERNEL_ORDER) * 3 * 2 * 2 == 84

    def test_every_kernel_and_axis_present(self):
        suite = get_suite("full")
        specs = suite.specs()
        assert {s.kernel for s in specs} == set(KERNEL_ORDER)
        assert {s.simd_width for s in specs} == {1, 4, 16}
        assert {s.topology for s in specs} == {"1x1", "4x4"}
        assert {s.variant for s in specs} == {"base", "glsc"}
        assert all(s.dataset == "A" for s in specs)

    def test_every_glsc_point_has_its_base_twin(self):
        """The fidelity speedup ratios need both variants per cell."""
        suite = get_suite("full")
        ids = set(suite.ids())
        for pid in ids:
            if pid.endswith(":glsc"):
                assert pid[: -len("glsc")] + "base" in ids

    def test_ids_unique_and_ordered(self):
        suite = get_suite("full")
        assert len(set(suite.ids())) == len(suite)


class TestSmokeSuite:
    def test_reduced_grid(self):
        suite = get_suite("smoke")
        assert len(suite) == 16
        assert {s.kernel for s in suite.specs()} == {"tms", "hip"}
        assert all(s.dataset == "tiny" for s in suite.specs())

    def test_registry(self):
        assert set(SUITE_NAMES) == {"full", "smoke", "ablations"}
        with pytest.raises(ConfigError):
            get_suite("nope")


class TestAblationsSuite:
    def test_every_ablation_flip_is_present(self):
        suite = get_suite("ablations")
        flips = {
            name
            for spec in suite.specs()
            for name, _ in spec.overrides
        }
        assert flips == {
            "gsu_combine_lines",
            "glsc_alias_in_gather",
            "glsc_fail_on_miss",
            "glsc_fail_on_link_eviction",
            "glsc_buffer_entries",
            "prefetch_enabled",
        }

    def test_baseline_pairs_for_fidelity(self):
        """Plain base/glsc twins exist so speedup ratios can pair up."""
        ids = set(get_suite("ablations").ids())
        for kernel in ("tms", "gbc", "hip"):
            assert f"{kernel}/A:4x4:w4:base" in ids
            assert f"{kernel}/A:4x4:w4:glsc" in ids

    def test_every_point_round_trips(self):
        for spec in get_suite("ablations").specs():
            assert spec_from_id(point_id(spec)) == spec


class TestProtocolGrids:
    def test_with_protocol_renames_and_overrides(self):
        suite = get_suite("smoke", protocol="mesi")
        assert suite.name == "smoke@mesi"
        assert len(suite) == 16
        for spec in suite.specs():
            assert spec.protocol == "mesi"
        for pid in suite.ids():
            assert pid.endswith(":protocol=mesi")

    def test_default_protocol_leaves_suite_untouched(self):
        plain = get_suite("smoke")
        assert plain.with_protocol("msi") is plain
        assert get_suite("smoke", protocol="msi").name == "smoke"

    def test_protocol_ids_round_trip(self):
        for spec in get_suite("smoke", protocol="moesi").specs():
            assert spec_from_id(point_id(spec)) == spec


class TestPointIds:
    def test_round_trip(self):
        spec = RunSpec("tms", "A", "4x4", 16, "base")
        assert spec_from_id(point_id(spec)) == spec

    def test_micro_round_trip(self):
        spec = RunSpec.micro("B", "4x4", 4, "glsc")
        assert spec_from_id(point_id(spec)) == spec

    def test_override_round_trip_preserves_types(self):
        spec = RunSpec(
            "tms", "A", "4x4", 4, "glsc",
            overrides={
                "gsu_combine_lines": False,
                "glsc_buffer_entries": 64,
                "chaos_reservation_loss": 0.25,
                "protocol": "moesi",
            },
        )
        pid = point_id(spec)
        # canonical sorted order, comma-separated, shell-safe
        assert pid == (
            "tms/A:4x4:w4:glsc:chaos_reservation_loss=0.25,"
            "glsc_buffer_entries=64,gsu_combine_lines=false,"
            "protocol=moesi"
        )
        assert spec_from_id(pid) == spec
        assert spec_from_id(pid).digest() == spec.digest()

    def test_micro_override_round_trip(self):
        spec = RunSpec.micro("B", "4x4", 4, "glsc",
                             overrides={"protocol": "mesi"})
        assert spec_from_id(point_id(spec)) == spec

    def test_malformed_rejected(self):
        with pytest.raises(ConfigError):
            spec_from_id("no-separators-here")

    def test_duplicate_points_rejected(self):
        spec = RunSpec("tms", "A", "4x4", 4, "glsc")
        with pytest.raises(ConfigError):
            BenchSuite("dup", [spec, spec])
