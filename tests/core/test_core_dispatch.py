"""Tests for core instruction dispatch, SMT issue, and stat attribution."""

import pytest

from repro.errors import ProgramError
from repro.isa.instructions import Instr, Kind
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


def single_thread_machine(**cfg_kwargs):
    defaults = dict(n_cores=1, threads_per_core=1, simd_width=4)
    defaults.update(cfg_kwargs)
    return Machine(MachineConfig(**defaults))


class TestDispatch:
    def test_valu_runs_callable_at_issue(self):
        machine = single_thread_machine()
        seen = []

        def program(ctx):
            result = yield ctx.valu(lambda: 41 + 1)
            seen.append(result)

        machine.add_program(program)
        machine.run()
        assert seen == [42]

    def test_bad_yield_raises_program_error(self):
        machine = single_thread_machine()

        def program(ctx):
            yield "not an instruction"

        machine.add_program(program)
        with pytest.raises(ProgramError):
            machine.run()

    def test_vgather_respects_mask(self):
        machine = single_thread_machine()
        data = machine.image.alloc_array([10, 20, 30, 40])
        seen = {}

        def program(ctx):
            values = yield ctx.vgather(
                data.base, [0, 1, 2, 3], ctx.prefix_mask(2)
            )
            seen["values"] = values

        machine.add_program(program)
        stats = machine.run()
        # Only active lanes carry gathered data.
        assert seen["values"][:2] == (10, 20)

    def test_vstore_then_vload_roundtrip(self):
        machine = single_thread_machine()
        buf = machine.image.alloc_zeros(4)
        seen = {}

        def program(ctx):
            yield ctx.vstore(buf.base, (1, 2, 3, 4))
            values = yield ctx.vload(buf.base)
            seen["values"] = values

        machine.add_program(program)
        machine.run()
        assert seen["values"] == (1, 2, 3, 4)


class TestIssueBandwidth:
    def test_issue_width_limits_per_cycle_throughput(self):
        """4 ALU-bound threads on a 2-issue core take ~2x the cycles
        of 2 threads doing the same per-thread work."""

        def run(n_threads):
            machine = Machine(
                MachineConfig(
                    n_cores=1, threads_per_core=n_threads, simd_width=1
                )
            )

            def program(ctx):
                for _ in range(200):
                    yield ctx.alu()

            for _ in range(n_threads):
                machine.add_program(program)
            return machine.run().cycles

        two = run(2)
        four = run(4)
        assert four > 1.8 * two

    def test_single_thread_ipc_at_most_one(self):
        machine = single_thread_machine()

        def program(ctx):
            for _ in range(100):
                yield ctx.alu()

        machine.add_program(program)
        stats = machine.run()
        assert stats.cycles >= 100


class TestStatAttribution:
    def test_alu_count_charges_n_cycles(self):
        machine = single_thread_machine()

        def program(ctx):
            yield ctx.alu(50)

        machine.add_program(program)
        stats = machine.run()
        assert stats.threads[0].instructions == 50
        assert stats.cycles >= 50

    def test_memory_instructions_counted(self):
        machine = single_thread_machine()
        word = machine.image.alloc_zeros(1)

        def program(ctx):
            yield ctx.load(word.base)
            yield ctx.store(word.base, 1)
            yield ctx.alu()

        machine.add_program(program)
        stats = machine.run()
        assert stats.threads[0].mem_instructions == 2

    def test_sync_ops_do_not_leak_into_nonsync(self):
        machine = single_thread_machine()
        word = machine.image.alloc_zeros(1)

        def program(ctx):
            yield ctx.load(word.base)  # not a sync op

        machine.add_program(program)
        stats = machine.run()
        assert stats.threads[0].sync_cycles == 0
        assert stats.threads[0].sync_instructions == 0

    def test_gsu_kind_results(self):
        """Each GSU instruction kind returns its documented result type."""
        machine = single_thread_machine()
        data = machine.image.alloc_array([1, 2, 3, 4])
        seen = {}

        def program(ctx):
            idx = [0, 1, 2, 3]
            seen["gather"] = yield ctx.vgather(data.base, idx)
            seen["gl"] = yield ctx.vgatherlink(data.base, idx)
            values, mask = seen["gl"]
            seen["sc"] = yield ctx.vscattercond(
                data.base, idx, tuple(v + 1 for v in values), mask
            )
            seen["scatter"] = yield ctx.vscatter(
                data.base, idx, (9, 9, 9, 9)
            )

        machine.add_program(program)
        machine.run()
        assert isinstance(seen["gather"], tuple)
        values, mask = seen["gl"]
        assert mask.all()
        assert seen["sc"].all()
        assert seen["scatter"] is None
        assert data.to_list() == [9, 9, 9, 9]
