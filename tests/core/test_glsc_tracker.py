"""Unit tests for GLSC reservation trackers (tag and buffer designs)."""

import pytest

from repro.errors import ConfigError
from repro.core.glsc import BufferGlscTracker, TagGlscTracker, make_tracker
from repro.mem.cache import L1Cache, MSI_S
from repro.mem.layout import LineGeometry


@pytest.fixture
def l1s():
    geom = LineGeometry(64)
    return {core: L1Cache(core, 8, 2, geom) for core in range(2)}


class TestTagTracker:
    def test_link_requires_resident_line(self, l1s):
        tracker = TagGlscTracker(l1s)
        tracker.link(0, 1, 0x100)  # not resident: silently not taken
        assert tracker.holder(0, 0x100) is None

    def test_link_check_clear(self, l1s):
        l1s[0].install(0x100, MSI_S, now=0)
        tracker = TagGlscTracker(l1s)
        tracker.link(0, 1, 0x100)
        assert tracker.holder(0, 0x100) == 1
        assert tracker.check(0, 1, 0x100)
        assert not tracker.check(0, 2, 0x100)
        tracker.clear(0, 0x100)
        assert tracker.holder(0, 0x100) is None

    def test_entries_are_per_core(self, l1s):
        for core in range(2):
            l1s[core].install(0x100, MSI_S, now=0)
        tracker = TagGlscTracker(l1s)
        tracker.link(0, 0, 0x100)
        assert tracker.holder(1, 0x100) is None

    def test_eviction_destroys_entry(self, l1s):
        l1s[0].install(0x100, MSI_S, now=0)
        tracker = TagGlscTracker(l1s)
        tracker.link(0, 0, 0x100)
        l1s[0].invalidate(0x100)
        assert tracker.holder(0, 0x100) is None

    def test_relink_overwrites_thread(self, l1s):
        l1s[0].install(0x100, MSI_S, now=0)
        tracker = TagGlscTracker(l1s)
        tracker.link(0, 0, 0x100)
        tracker.link(0, 3, 0x100)
        assert tracker.holder(0, 0x100) == 3


class TestBufferTracker:
    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            BufferGlscTracker(n_cores=1, capacity=0)

    def test_link_without_line(self):
        tracker = BufferGlscTracker(n_cores=1, capacity=4)
        tracker.link(0, 2, 0x100)
        assert tracker.check(0, 2, 0x100)

    def test_fifo_overflow_drops_oldest(self):
        tracker = BufferGlscTracker(n_cores=1, capacity=2)
        tracker.link(0, 0, 0x100)
        tracker.link(0, 0, 0x140)
        tracker.link(0, 0, 0x180)
        assert tracker.holder(0, 0x100) is None
        assert tracker.holder(0, 0x140) == 0
        assert tracker.overflow_drops == 1

    def test_relink_refreshes_age(self):
        tracker = BufferGlscTracker(n_cores=1, capacity=2)
        tracker.link(0, 0, 0x100)
        tracker.link(0, 0, 0x140)
        tracker.link(0, 0, 0x100)  # refresh
        tracker.link(0, 0, 0x180)  # evicts 0x140, not 0x100
        assert tracker.holder(0, 0x100) == 0
        assert tracker.holder(0, 0x140) is None

    def test_clear_and_occupancy(self):
        tracker = BufferGlscTracker(n_cores=1, capacity=2)
        tracker.link(0, 0, 0x100)
        assert tracker.occupancy(0) == 1
        tracker.clear(0, 0x100)
        assert tracker.occupancy(0) == 0

    def test_per_core_buffers(self):
        tracker = BufferGlscTracker(n_cores=2, capacity=1)
        tracker.link(0, 0, 0x100)
        tracker.link(1, 0, 0x140)
        assert tracker.check(0, 0, 0x100)
        assert tracker.check(1, 0, 0x140)


class TestFactory:
    def test_selects_tag_by_default(self, l1s):
        assert isinstance(make_tracker(l1s, 2, 0), TagGlscTracker)

    def test_selects_buffer_when_sized(self, l1s):
        tracker = make_tracker(l1s, 2, 8)
        assert isinstance(tracker, BufferGlscTracker)
        assert tracker.capacity == 8
