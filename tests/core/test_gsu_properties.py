"""Property-based tests of GSU timing and semantics."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.gsu import Gsu
from repro.core.lsu import Lsu
from repro.core.ports import L1Port
from repro.isa.masks import Mask
from repro.mem.coherence import CoherenceSystem
from repro.mem.image import MemoryImage
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats


def make_gsu(width=4, **overrides):
    config = MachineConfig(
        n_cores=1, threads_per_core=1, simd_width=width,
        prefetch_enabled=False, **overrides,
    )
    stats = MachineStats()
    coherence = CoherenceSystem(config, stats)
    image = MemoryImage(config.mem_size_bytes, config.geometry)
    port = L1Port()
    gsu = Gsu(0, config, coherence, image, stats, port)
    view = image.alloc_array(list(range(256)))
    return gsu, view, config, stats


COMMON = dict(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)

indices4 = st.lists(st.integers(0, 255), min_size=4, max_size=4)
mask4 = st.integers(1, 15).map(lambda bits: Mask(bits, 4))


class TestGatherProperties:
    @settings(**COMMON)
    @given(indices=indices4, bits=st.integers(1, 15))
    def test_min_latency_floor(self, indices, bits):
        gsu, view, cfg, _ = make_gsu()
        mask = Mask(bits, 4)
        # warm the touched lines so the floor binds
        gsu.gather(0, view.base, indices, Mask.all_ones(4), now=0,
                   linked=False)
        start = 1000
        (_, _), done = gsu.gather(
            0, view.base, indices, mask, now=start, linked=False
        )
        floor = start + cfg.gsu_assembly_cycles + mask.popcount()
        assert done >= floor
        # all hits: completes exactly at the max(access, floor) point
        assert done <= start + cfg.min_glsc_latency + cfg.l1_hit_latency

    @settings(**COMMON)
    @given(indices=indices4, bits=st.integers(1, 15))
    def test_gather_values_match_memory(self, indices, bits):
        gsu, view, _, _ = make_gsu()
        mask = Mask(bits, 4)
        (values, out), _ = gsu.gather(
            0, view.base, indices, mask, now=0, linked=False
        )
        assert out == mask
        for lane in mask.active_lanes():
            assert values[lane] == indices[lane]

    @settings(**COMMON)
    @given(indices=indices4)
    def test_wider_mask_never_completes_earlier(self, indices):
        gsu_a, view_a, _, _ = make_gsu()
        gsu_b, view_b, _, _ = make_gsu()
        narrow = Mask(0b0001, 4)
        wide = Mask(0b1111, 4)
        # warm both
        gsu_a.gather(0, view_a.base, indices, wide, 0, linked=False)
        gsu_b.gather(0, view_b.base, indices, wide, 0, linked=False)
        (_, _), done_narrow = gsu_a.gather(
            0, view_a.base, indices, narrow, 1000, linked=False
        )
        (_, _), done_wide = gsu_b.gather(
            0, view_b.base, indices, wide, 1000, linked=False
        )
        assert done_wide >= done_narrow


class TestScatterProperties:
    @settings(**COMMON)
    @given(indices=indices4, bits=st.integers(1, 15))
    def test_linked_roundtrip_updates_exactly_active_lanes(
        self, indices, bits
    ):
        gsu, view, _, stats = make_gsu()
        mask = Mask(bits, 4)
        before = {i: view[i] for i in set(indices)}
        (values, got), _ = gsu.gather(
            0, view.base, indices, mask, now=0, linked=True
        )
        newvals = tuple(v + 100 for v in values)
        ok, _ = gsu.scatter(
            0, view.base, indices, newvals, got, now=10, conditional=True
        )
        # Exactly one winner per distinct word among active lanes.
        winners_by_word = {}
        for lane in ok.active_lanes():
            word = indices[lane]
            assert word not in winners_by_word
            winners_by_word[word] = lane
        # Each written word got exactly +100 over its original value.
        for word, lane in winners_by_word.items():
            assert view[word] == before[word] + 100

    @settings(**COMMON)
    @given(indices=indices4)
    def test_combining_only_reduces_accesses(self, indices):
        gsu_on, view_on, _, stats_on = make_gsu()
        gsu_off, view_off, _, stats_off = make_gsu(gsu_combine_lines=False)
        mask = Mask.all_ones(4)
        gsu_on.gather(0, view_on.base, indices, mask, 0, linked=False)
        gsu_off.gather(0, view_off.base, indices, mask, 0, linked=False)
        assert stats_on.l1_accesses <= stats_off.l1_accesses
