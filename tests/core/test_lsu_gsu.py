"""Unit tests for LSU and GSU timing and semantics."""

import pytest

from repro.core.gsu import Gsu
from repro.core.lsu import Lsu
from repro.core.ports import L1Port
from repro.isa.masks import Mask
from repro.mem.coherence import CoherenceSystem
from repro.mem.image import MemoryImage
from repro.sim.config import MachineConfig
from repro.sim.stats import MachineStats


def make_units(**overrides):
    defaults = dict(
        n_cores=2, threads_per_core=2, simd_width=4, prefetch_enabled=False
    )
    defaults.update(overrides)
    config = MachineConfig(**defaults)
    stats = MachineStats()
    coherence = CoherenceSystem(config, stats)
    image = MemoryImage(config.mem_size_bytes, config.geometry)
    port = L1Port()
    lsu = Lsu(0, config, coherence, image, stats, port)
    gsu = Gsu(0, config, coherence, image, stats, port)
    return lsu, gsu, config, stats, coherence, image


class TestPort:
    def test_booking_serializes(self):
        port = L1Port()
        assert port.book(5) == 5
        assert port.book(5) == 6
        assert port.book(3) == 7
        assert port.book(100) == 100


class TestLsu:
    def test_load_returns_value_and_latency(self):
        lsu, _, cfg, _, _, image = make_units()
        view = image.alloc_array([7.0])
        # warm the line
        lsu.load(0, view.base, now=0)
        value, done = lsu.load(0, view.base, now=100)
        assert value == 7.0
        assert done == 100 + cfg.l1_hit_latency

    def test_store_is_write_buffered(self):
        lsu, _, cfg, _, _, image = make_units()
        view = image.alloc_zeros(1)
        done = lsu.store(0, view.base, 3.0, now=0)
        assert done == 1  # thread only waits for the port slot
        assert view[0] == 3.0

    def test_ll_sc_roundtrip(self):
        lsu, _, _, stats, _, image = make_units()
        view = image.alloc_array([10])
        value, _ = lsu.ll(0, view.base, now=0)
        ok, _ = lsu.sc(0, view.base, value + 1, now=5)
        assert ok and view[0] == 11
        assert stats.ll_count == 1 and stats.sc_count == 1
        assert stats.sc_failures == 0

    def test_failed_sc_does_not_write(self):
        lsu, _, _, stats, coherence, image = make_units()
        view = image.alloc_array([10])
        lsu.ll(0, view.base, now=0)
        coherence.write(1, 0, view.base, now=1)  # remote write
        ok, _ = lsu.sc(0, view.base, 99, now=2)
        assert not ok and view[0] == 10
        assert stats.sc_failures == 1

    def test_vload_within_line_is_single_access(self):
        lsu, _, cfg, stats, _, image = make_units()
        view = image.alloc_array([1, 2, 3, 4])
        lsu.load(0, view.base, now=0)  # warm
        before = stats.l1_accesses
        values, done = lsu.vload(0, view.base, 4, now=50)
        assert values == (1, 2, 3, 4)
        assert stats.l1_accesses - before == 1
        assert done == 50 + cfg.l1_hit_latency

    def test_vload_spanning_lines(self):
        lsu, _, cfg, stats, _, image = make_units()
        base = image.alloc(128)
        addr = base + 56  # words at offsets 56,60,64,68: spans 2 lines
        before = stats.l1_accesses
        lsu.vload(0, addr, 4, now=0)
        assert stats.l1_accesses - before == 2

    def test_vstore_masked(self):
        lsu, _, _, _, _, image = make_units()
        view = image.alloc_array([0, 0, 0, 0])
        lsu.vstore(0, view.base, (1, 2, 3, 4), Mask(0b0101, 4), now=0)
        assert view.to_list() == [1, 0, 3, 0]

    def test_vstore_empty_mask_is_noop(self):
        lsu, _, _, stats, _, image = make_units()
        view = image.alloc_array([5])
        before = stats.l1_accesses
        done = lsu.vstore(0, view.base, (9,), Mask.zeros(1), now=0)
        assert view[0] == 5
        assert stats.l1_accesses == before
        assert done == 1


class TestGsuTiming:
    def test_min_gather_latency_matches_table1(self):
        _, gsu, cfg, _, _, image = make_units()
        view = image.alloc_array(list(range(16)))
        indices = [0, 1, 2, 3]  # same line: warm it first
        gsu.gather(0, view.base, indices, Mask.all_ones(4), now=0,
                   linked=False)
        (_, _), done = gsu.gather(
            0, view.base, indices, Mask.all_ones(4), now=100, linked=False
        )
        # one line, all hits: addr-gen 4 cycles + hit + assembly
        assert done <= 100 + cfg.min_glsc_latency + cfg.l1_hit_latency

    def test_miss_overlap(self):
        """Two missing lines overlap their latencies (GLSC benefit 2)."""
        _, gsu, cfg, _, _, image = make_units()
        base = image.alloc(4096)
        spread = [0, 16, 32, 48]  # four distinct lines, all cold
        (_, _), done = gsu.gather(
            0, base, spread, Mask.all_ones(4), now=0, linked=False
        )
        one_miss = cfg.l1_hit_latency + cfg.l2_latency + cfg.mem_latency
        # Serial misses would cost ~4x one_miss; overlap keeps it near 1x.
        assert done < 2 * one_miss

    def test_addr_generation_serializes_across_threads(self):
        _, gsu, cfg, _, _, image = make_units()
        view = image.alloc_array(list(range(64)))
        m = Mask.all_ones(4)
        gsu.gather(0, view.base, [0, 1, 2, 3], m, now=0, linked=False)  # warm
        (_, _), done_a = gsu.gather(0, view.base, [0, 1, 2, 3], m, now=100,
                                    linked=False)
        # Second gather issued at the same cycle queues behind addr-gen.
        (_, _), done_b = gsu.gather(1, view.base, [4, 5, 6, 7], m, now=100,
                                    linked=False)
        assert done_b >= done_a + 4  # queued behind 4 addr-gen cycles


class TestGsuCombining:
    def test_same_line_combined_one_access(self):
        _, gsu, _, stats, _, image = make_units()
        view = image.alloc_array(list(range(16)))
        gsu.gather(0, view.base, [0, 1, 2, 3], Mask.all_ones(4), now=0,
                   linked=False)
        assert stats.l1_accesses == 1

    def test_combining_savings_counted_for_sync_ops(self):
        _, gsu, _, stats, _, image = make_units()
        view = image.alloc_array(list(range(16)))
        gsu.gather(0, view.base, [0, 1, 2, 3], Mask.all_ones(4), now=0,
                   linked=True)
        assert stats.l1_accesses_saved_by_combining == 3
        assert stats.l1_sync_accesses == 1

    def test_combining_disabled_charges_per_lane(self):
        _, gsu, _, stats, _, image = make_units(gsu_combine_lines=False)
        view = image.alloc_array(list(range(16)))
        gsu.gather(0, view.base, [0, 1, 2, 3], Mask.all_ones(4), now=0,
                   linked=False)
        assert stats.l1_accesses == 4
        assert stats.l1_accesses_saved_by_combining == 0


class TestGsuGlsc:
    def test_gatherlink_scattercond_roundtrip(self):
        _, gsu, _, stats, _, image = make_units()
        view = image.alloc_array([10, 20, 30, 40])
        m = Mask.all_ones(4)
        (values, got), _ = gsu.gather(0, view.base, [0, 1, 2, 3], m, now=0,
                                      linked=True)
        assert values == (10, 20, 30, 40) and got.all()
        newvals = tuple(v + 1 for v in values)
        ok, _ = gsu.scatter(0, view.base, [0, 1, 2, 3], newvals, got,
                            now=10, conditional=True)
        assert ok.all()
        assert view.to_list() == [11, 21, 31, 41]
        assert stats.scattercond_successes == 4
        assert stats.glsc_failure_rate == 0.0

    def test_alias_exactly_one_winner(self):
        _, gsu, _, stats, _, image = make_units()
        view = image.alloc_array([0, 0])
        m = Mask.all_ones(4)
        indices = [0, 0, 0, 1]  # three lanes alias word 0
        (values, got), _ = gsu.gather(0, view.base, indices, m, now=0,
                                      linked=True)
        assert got.all()  # default: alias resolved at scatter time
        ok, _ = gsu.scatter(0, view.base, indices, (7, 8, 9, 5), got,
                            now=10, conditional=True)
        assert ok.popcount() == 2  # one winner for word 0, plus lane 3
        assert ok.lane(0) and not ok.lane(1) and not ok.lane(2) and ok.lane(3)
        assert view[0] == 7  # lowest lane wins
        assert view[1] == 5
        assert stats.glsc_element_failures["alias"] == 2

    def test_alias_resolved_in_gather_when_configured(self):
        _, gsu, _, stats, _, image = make_units(glsc_alias_in_gather=True)
        view = image.alloc_array([0, 0])
        m = Mask.all_ones(4)
        indices = [0, 0, 1, 1]
        (values, got), _ = gsu.gather(0, view.base, indices, m, now=0,
                                      linked=True)
        assert got == Mask(0b0101, 4)
        assert stats.glsc_element_failures["alias"] == 2
        ok, _ = gsu.scatter(0, view.base, indices, (1, 2, 3, 4), got,
                            now=10, conditional=True)
        assert ok == got  # winners all succeed

    def test_masked_lanes_ignored(self):
        _, gsu, _, stats, _, image = make_units()
        view = image.alloc_array([10, 20, 30, 40])
        m = Mask(0b1010, 4)
        (values, got), _ = gsu.gather(0, view.base, [0, 1, 2, 3], m, now=0,
                                      linked=True)
        assert got == m
        assert stats.gatherlink_elements == 2

    def test_failure_rate_counts_unwritten_lanes(self):
        """Lanes the kernel abandons (e.g. contended locks) count as
        failures even though the GSU never saw their scatter."""
        _, gsu, _, stats, _, image = make_units()
        view = image.alloc_array([0, 0, 0, 0])
        m = Mask.all_ones(4)
        (_, got), _ = gsu.gather(0, view.base, [0, 1, 2, 3], m, now=0,
                                 linked=True)
        subset = Mask(0b0011, 4)
        gsu.scatter(0, view.base, [0, 1, 2, 3], (1, 1, 1, 1), subset,
                    now=10, conditional=True)
        assert stats.glsc_failure_rate == pytest.approx(0.5)

    def test_plain_scatter_last_lane_wins(self):
        _, gsu, _, _, _, image = make_units()
        view = image.alloc_array([0])
        gsu.scatter(0, view.base, [0, 0, 0, 0], (1, 2, 3, 4),
                    Mask.all_ones(4), now=0, conditional=False)
        assert view[0] == 4
