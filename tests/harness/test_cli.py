"""Smoke tests for the observability CLI subcommands."""

import json

import pytest

from repro.harness.cli import main


class TestTraceSubcommand:
    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "hip.trace.json"
        jsonl = tmp_path / "events.jsonl"
        telemetry_out = tmp_path / "telemetry.json"
        code = main([
            "trace", "hip", "--dataset", "tiny", "--topology", "1x2",
            "--out", str(out), "--jsonl", str(jsonl),
            "--telemetry-out", str(telemetry_out),
        ])
        assert code == 0

        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {
            "M", "X", "i", "b", "e"
        }

        events = [json.loads(line) for line in
                  jsonl.read_text().splitlines()]
        assert any(e["type"] == "CacheMiss" for e in events)

        telemetry = json.loads(telemetry_out.read_text())
        assert telemetry["source"] == "simulated"
        assert telemetry["cycles"] > 0
        assert telemetry["wall_time_s"] > 0

        stdout = capsys.readouterr().out
        assert "ui.perfetto.dev" in stdout
        assert "cycles" in stdout

    def test_micro_spec_accepted(self, tmp_path):
        out = tmp_path / "micro.trace.json"
        code = main([
            "trace", "micro:A", "--topology", "1x2", "--out", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["traceEvents"]

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "hip", "--dataset", "nope",
                  "--out", str(tmp_path / "x.json")])


class TestProfileSubcommand:
    def test_prints_latency_and_metrics_report(self, capsys):
        code = main([
            "profile", "tms", "--dataset", "tiny", "--topology", "1x2",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "cycles" in stdout
        assert "VGATHERLINK" in stdout          # kind-latency table
        assert "events observed" in stdout      # metrics render
        assert "sync share of occupancy" in stdout

    def test_base_variant_profiles_too(self, capsys):
        code = main([
            "profile", "tms", "--dataset", "tiny", "--topology", "1x2",
            "--variant", "base",
        ])
        assert code == 0
        assert "LL" in capsys.readouterr().out


class TestCacheSubcommand:
    @pytest.fixture
    def populated(self, tmp_path):
        cache = tmp_path / "cache"
        assert main(["fig8", "--kernels", "tms", "--datasets", "tiny",
                     "--cache-dir", str(cache)]) == 0
        return cache

    def test_ls_lists_entries(self, populated, capsys):
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "tms/tiny" in out
        assert "6 entries" in out

    def test_ls_kernel_filter(self, populated, capsys):
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(populated),
                     "--kernel", "hip"]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_stats_reports_hits_and_misses(self, populated, capsys):
        # A second, fully cached invocation generates store hits.
        assert main(["fig8", "--kernels", "tms", "--datasets", "tiny",
                     "--cache-dir", str(populated)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "6 entries" in out
        assert "served 6 hits / 6 misses" in out
        assert "by kernel: tms=6" in out
        assert "of simulation represented" in out

    def test_prune_removes_stale_only(self, populated, capsys):
        from repro.sim.store import ResultStore

        store = ResultStore(populated)
        good = len(store)
        (populated / ("ee" * 32 + ".json")).write_text("{corrupt")
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir",
                     str(populated)]) == 0
        assert "removed 1 stale entries" in capsys.readouterr().out
        assert len(store) == good


class TestBenchSubcommand:
    def test_run_compare_report_round_trip(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BENCH_SHA", "feed123")
        assert main(["bench", "run", "--suite", "smoke", "--repeats", "1",
                     "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "archived" in out

        bench = tmp_path / "BENCH_feed123.json"
        doc = json.loads(bench.read_text())
        assert doc["schema_version"] == 1
        assert doc["suite"] == "smoke"
        assert len(doc["points"]) == 16
        assert (tmp_path / "BENCH_TRAJECTORY.jsonl").exists()

        # Distill reference bands, then the gate passes on itself.
        assert main(["bench", "reference", "--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["bench", "compare", "--dir", str(tmp_path)]) == 0
        assert "GATE: ok" in capsys.readouterr().out

        report = tmp_path / "report.md"
        assert main(["bench", "report", "--dir", str(tmp_path),
                     "--out", str(report)]) == 0
        text = report.read_text()
        assert "# Bench report" in text and "## Trajectory" in text

    def test_compare_without_artifacts_errors(self, tmp_path, capsys):
        assert main(["bench", "compare", "--dir", str(tmp_path)]) == 2
        assert "run `bench run` first" in capsys.readouterr().err

    def test_reference_merges_unless_fresh(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHA", "feed124")
        assert main(["bench", "run", "--suite", "smoke", "--repeats", "1",
                     "--dir", str(tmp_path), "--no-trajectory"]) == 0
        assert main(["bench", "reference", "--dir", str(tmp_path)]) == 0

        # A band from another suite must survive a re-distill...
        ref_path = tmp_path / "BENCH_REFERENCE.json"
        reference = json.loads(ref_path.read_text())
        reference["speedup_bands"]["other/A:4x4:w4"] = [1.0, 2.0]
        ref_path.write_text(json.dumps(reference))
        assert main(["bench", "reference", "--dir", str(tmp_path)]) == 0
        merged = json.loads(ref_path.read_text())
        assert merged["speedup_bands"]["other/A:4x4:w4"] == [1.0, 2.0]
        assert "tms/tiny:4x4:w4" in merged["speedup_bands"]

        # ...but --fresh starts over.
        assert main(["bench", "reference", "--dir", str(tmp_path),
                     "--fresh"]) == 0
        fresh = json.loads(ref_path.read_text())
        assert "other/A:4x4:w4" not in fresh["speedup_bands"]


class TestBenchHtmlReport:
    def test_report_html_writes_the_dashboard(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BENCH_SHA", "feed125")
        assert main(["bench", "run", "--suite", "smoke", "--repeats", "1",
                     "--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["bench", "report", "--dir", str(tmp_path),
                     "--html"]) == 0
        html = (tmp_path / "bench_dashboard.html").read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "feed125" in html
        assert "<svg" in html


class TestSweepTraceSubcommand:
    def test_exports_a_chrome_trace_of_a_drain(self, tmp_path, capsys):
        from repro.service.queue import WorkQueue
        from repro.service.worker import worker_loop
        from repro.sim.executor import RunSpec
        from repro.sim.store import ResultStore

        queue_dir = tmp_path / "q"
        queue = WorkQueue(queue_dir)
        queue.submit(
            RunSpec("tms", "tiny", "1x1", 4, "glsc"), trace_id="t1"
        )
        worker_loop(
            queue, ResultStore(tmp_path / "s"), worker_id="w0",
            exit_when_empty=True,
        )

        out = tmp_path / "drain.trace.json"
        assert main(["sweep-trace", f"queue://{queue_dir}",
                     "--out", str(out)]) == 0
        assert "spans" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        names = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert "w0" in names

    def test_traceless_queue_is_an_error(self, tmp_path, capsys):
        assert main(["sweep-trace", f"queue://{tmp_path / 'q'}"]) == 2
        assert "no spans" in capsys.readouterr().err


class TestContendSubcommand:
    def test_markdown_report(self, capsys):
        code = main([
            "contend", "tms", "--dataset", "tiny", "--topology", "2x2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# Contention report" in out
        assert "## Kill matrix" in out
        assert "## Hot lines" in out
        assert "MISMATCH" not in out

    def test_json_crosschecks_against_machine_stats(self, capsys):
        code = main([
            "contend", "tms", "--dataset", "tiny", "--topology", "4x4",
            "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert all(doc["crosscheck"].values()), doc["crosscheck"]
        # Matrix marginals equal the per-cause kill totals.
        total = doc["total_kills"]
        assert sum(doc["row_sums"].values()) == total
        assert sum(doc["col_sums"].values()) == total
        assert sum(doc["kills_by_cause"].values()) == total
        # Failed lanes reproduce MachineStats.glsc_element_failures.
        nonzero = {
            cause: count
            for cause, count in doc["stats"]["glsc_element_failures"].items()
            if count
        }
        assert doc["failed_lanes"] == nonzero
        assert doc["spec"]["kernel"] == "tms"
        assert doc["cycles"] > 0

    def test_json_output_is_deterministic(self, capsys):
        args = ["contend", "tms", "--dataset", "tiny",
                "--topology", "2x2", "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_hot_lines_are_symbolized(self, capsys):
        assert main([
            "contend", "tms", "--dataset", "tiny", "--topology", "4x4",
        ]) == 0
        assert "tms." in capsys.readouterr().out

    def test_micro_spec_accepted(self, capsys):
        code = main([
            "contend", "micro:D", "--topology", "2x2",
        ])
        assert code == 0
        assert "# Contention report" in capsys.readouterr().out


def status_doc(match):
    return {
        "metrics": {},
        "requests": 3,
        "workers": [],
        "queue": {"root": "/q", "pending": 1, "leased": 0,
                  "lease_s": 60.0},
        "queue_verify": {
            "match": match,
            "scan": {"pending": 2, "leased": 0},
            "tracked": {"pending": 1, "leased": 0},
        },
    }


class TestStatusSubcommand:
    def test_unreachable_server_returns_2(self, capsys):
        assert main(["status", "http://127.0.0.1:1"]) == 2
        assert capsys.readouterr().err

    @pytest.fixture
    def served(self, monkeypatch):
        """Stub the HTTP round trip with a canned metrics document."""
        from repro.service import client as client_mod

        def install(doc):
            monkeypatch.setattr(
                client_mod.SweepClient, "_request_json",
                lambda self, method, path: (200, doc),
            )

        return install

    def test_verify_mismatch_exits_nonzero(self, served, capsys):
        served(status_doc(match=False))
        assert main(["status", "--verify"]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_verify_mismatch_exits_nonzero_in_json_mode(
        self, served, capsys
    ):
        served(status_doc(match=False))
        assert main(["status", "--verify", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["queue_verify"]["match"] is False

    def test_verify_match_exits_zero(self, served, capsys):
        served(status_doc(match=True))
        assert main(["status", "--verify"]) == 0
        assert "match" in capsys.readouterr().out

    def test_without_verify_flag_mismatch_does_not_gate(
        self, served, capsys
    ):
        # The server only includes queue_verify when asked, but even a
        # document carrying a mismatch must not flip the exit code
        # unless the caller requested verification.
        served(status_doc(match=False))
        assert main(["status"]) == 0
        capsys.readouterr()

    def test_contention_rollup_printed_across_workers(
        self, served, capsys
    ):
        doc = status_doc(match=True)
        doc["workers"] = [
            {"worker_id": "w0", "claims": 2, "executed": 2,
             "age_s": 1.0, "contention_failed_lanes": 30,
             "contention_sc_failures": 4},
            {"worker_id": "w1", "claims": 1, "executed": 1,
             "age_s": 2.0, "contention_failed_lanes": 12,
             "contention_sc_failures": 0},
        ]
        served(doc)
        assert main(["status"]) == 0
        out = capsys.readouterr().out
        assert "contention: 42 failed GLSC lanes, 4 sc failures" in out


class TestTelemetryFlag:
    def test_sweep_summary_table(self, tmp_path, capsys):
        code = main([
            "fig8", "--kernels", "tms", "--datasets", "tiny",
            "--cache-dir", str(tmp_path / "cache"), "--telemetry",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "source" in stdout and "cyc/s" in stdout
        assert "simulated" in stdout
        assert "fresh cycles" in stdout
