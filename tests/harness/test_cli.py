"""Smoke tests for the observability CLI subcommands."""

import json

import pytest

from repro.harness.cli import main


class TestTraceSubcommand:
    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "hip.trace.json"
        jsonl = tmp_path / "events.jsonl"
        telemetry_out = tmp_path / "telemetry.json"
        code = main([
            "trace", "hip", "--dataset", "tiny", "--topology", "1x2",
            "--out", str(out), "--jsonl", str(jsonl),
            "--telemetry-out", str(telemetry_out),
        ])
        assert code == 0

        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {
            "M", "X", "i", "b", "e"
        }

        events = [json.loads(line) for line in
                  jsonl.read_text().splitlines()]
        assert any(e["type"] == "CacheMiss" for e in events)

        telemetry = json.loads(telemetry_out.read_text())
        assert telemetry["source"] == "simulated"
        assert telemetry["cycles"] > 0
        assert telemetry["wall_time_s"] > 0

        stdout = capsys.readouterr().out
        assert "ui.perfetto.dev" in stdout
        assert "cycles" in stdout

    def test_micro_spec_accepted(self, tmp_path):
        out = tmp_path / "micro.trace.json"
        code = main([
            "trace", "micro:A", "--topology", "1x2", "--out", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["traceEvents"]

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "hip", "--dataset", "nope",
                  "--out", str(tmp_path / "x.json")])


class TestProfileSubcommand:
    def test_prints_latency_and_metrics_report(self, capsys):
        code = main([
            "profile", "tms", "--dataset", "tiny", "--topology", "1x2",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "cycles" in stdout
        assert "VGATHERLINK" in stdout          # kind-latency table
        assert "events observed" in stdout      # metrics render
        assert "sync share of occupancy" in stdout

    def test_base_variant_profiles_too(self, capsys):
        code = main([
            "profile", "tms", "--dataset", "tiny", "--topology", "1x2",
            "--variant", "base",
        ])
        assert code == 0
        assert "LL" in capsys.readouterr().out


class TestTelemetryFlag:
    def test_sweep_summary_table(self, tmp_path, capsys):
        code = main([
            "fig8", "--kernels", "tms", "--datasets", "tiny",
            "--cache-dir", str(tmp_path / "cache"), "--telemetry",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "source" in stdout and "cyc/s" in stdout
        assert "simulated" in stdout
        assert "fresh cycles" in stdout
