"""Harness tests: each experiment returns the full row structure.

Uses a reduced kernel/dataset sweep so the suite stays fast; the
structure and invariants are what is under test, not the calibrated
numbers (EXPERIMENTS.md records those).
"""

import pytest

from repro.harness import experiments, report
from repro.sim.config import CONFIG_NAMES
from repro.sim.executor import Executor

KERNELS = ("hip", "tms")
DATASETS = ("tiny",)


@pytest.fixture(scope="module")
def executor():
    return Executor()


class TestTables:
    def test_table1_matches_paper_parameters(self):
        params = experiments.table1()
        assert params["l1_latency"] == 3
        assert params["min_l2_latency"] == 12
        assert params["mem_latency"] == 280
        assert params["min_glsc_latency"] == 4 + params["simd_width"]

    def test_table3_rows_complete(self):
        rows = experiments.table3()
        assert len(rows) == 7 * 2
        assert all(r["paper"] != "-" for r in rows)

    def test_table4_rows(self, executor):
        rows = experiments.table4(KERNELS, DATASETS, executor=executor)
        assert len(rows) == len(KERNELS) * len(DATASETS)
        for row in rows:
            assert 0 <= row.failure_rate_1x1 <= 100
            assert 0 <= row.failure_rate_4x4 <= 100
            assert 0 <= row.l1_combining_reduction <= 100
            assert 0 <= row.l1_sync_share <= 100


class TestFigures:
    def test_fig5a_rows(self, executor):
        rows = experiments.fig5a(KERNELS, DATASETS, executor=executor)
        assert len(rows) == len(KERNELS)
        for row in rows:
            assert 0 < row.sync_percent < 100

    def test_fig5b_rows(self, executor):
        rows = experiments.fig5b(KERNELS, DATASETS, executor=executor)
        for row in rows:
            assert row.speedup_4wide > 0.5
            assert row.speedup_16wide > 0.5

    def test_fig6_normalization(self, executor):
        rows = experiments.fig6(KERNELS, DATASETS, executor=executor)
        for row in rows:
            assert set(row.base) == set(CONFIG_NAMES)
            # By construction the 1x1 GLSC bar is exactly 1.0.
            assert row.glsc["1x1"] == pytest.approx(1.0)
            # More hardware never slows these kernels down.
            assert row.glsc["4x4"] > row.glsc["1x1"] * 0.9
            assert row.ratio("1x1") > 0

    def test_fig7_rows(self, executor):
        rows = experiments.fig7(scenarios=("B", "D"), executor=executor)
        assert [r.scenario for r in rows] == ["B", "D"]
        by_name = {r.scenario: r for r in rows}
        # Scenario D has no SIMD parallelism: GLSC cannot be much
        # faster, and degrades with width relative to B.
        assert by_name["D"].ratio_4wide < by_name["B"].ratio_4wide + 0.5

    def test_fig8_rows(self, executor):
        rows = experiments.fig8(KERNELS, DATASETS, widths=(1, 4),
                                executor=executor)
        for row in rows:
            assert set(row.ratios) == {1, 4}

    def test_executor_caches_across_experiments(self):
        executor = Executor()
        experiments.fig5b(("hip",), DATASETS, executor=executor)
        count = executor.distinct_runs()
        simulations = executor.simulations
        experiments.fig5b(("hip",), DATASETS, executor=executor)
        assert executor.distinct_runs() == count
        assert executor.simulations == simulations


class TestReport:
    def test_all_renderers_produce_tables(self, executor):
        outputs = [
            report.render_table1(experiments.table1()),
            report.render_table3(experiments.table3()),
            report.render_fig5a(
                experiments.fig5a(KERNELS, DATASETS, executor=executor)
            ),
            report.render_fig5b(
                experiments.fig5b(KERNELS, DATASETS, executor=executor)
            ),
            report.render_fig6(
                experiments.fig6(KERNELS, DATASETS, executor=executor)
            ),
            report.render_fig7(
                experiments.fig7(scenarios=("B",), executor=executor)
            ),
            report.render_fig8(
                experiments.fig8(KERNELS, DATASETS, widths=(1, 4),
                                 executor=executor)
            ),
            report.render_table4(
                experiments.table4(KERNELS, DATASETS, executor=executor)
            ),
        ]
        for text in outputs:
            lines = text.splitlines()
            assert len(lines) >= 3  # title, header, separator, rows
            assert "-" in lines[2] or "-" in lines[1]

    def test_cli_runs_one_experiment(self, capsys):
        from repro.harness.cli import main

        code = main(["table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
