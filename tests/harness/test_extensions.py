"""Unit tests for the extension experiments (tiny datasets for speed)."""

from repro.harness.extensions import (
    failure_resilience,
    latency_sensitivity,
    width_sweep,
)


def test_width_sweep_structure():
    row = width_sweep("hip", dataset="tiny", widths=(1, 4), topology="2x2")
    assert set(row.ratios) == {1, 4}
    assert all(r > 0 for r in row.ratios.values())


def test_width_sweep_crossover_none_when_never_winning():
    row = width_sweep("hip", dataset="tiny", widths=(1,), topology="1x1")
    # With only width 1 the crossover is either W1 or absent; both are
    # legal outcomes — the API must not crash on either.
    assert row.crossover_width() in (None, 1)


def test_latency_sensitivity_structure():
    row = latency_sensitivity(
        "tms", dataset="tiny", latencies=(70, 280), topology="2x2"
    )
    assert set(row.ratios) == {70, 280}


def test_failure_resilience_structure():
    rows = failure_resilience(
        "hip", dataset="tiny", losses=(0.0, 0.1), topology="2x2"
    )
    assert [r.loss for r in rows] == [0.0, 0.1]
    assert rows[0].slowdown_vs_clean == 1.0
    assert rows[1].cycles > 0
