"""Unit tests for report formatting (tables and ASCII charts)."""

import pytest

from repro.harness import experiments
from repro.harness.experiments import Fig5Row, Fig6Row, Fig7Row, Fig8Row
from repro.harness.report import (
    ascii_bars,
    chart_fig5a,
    chart_fig7,
    chart_fig8,
    render_fig5a,
    render_fig6,
    render_fig8,
    render_table4,
)
from repro.sim.executor import RunSpec
from repro.sim.stats import MachineStats


class TestAsciiBars:
    def test_scales_to_peak(self):
        chart = ascii_bars([("a", 1.0), ("b", 2.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        chart = ascii_bars([("long-label", 1.0), ("x", 1.0)])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty(self):
        assert ascii_bars([]) == "(no data)"

    def test_zero_values(self):
        chart = ascii_bars([("a", 0.0)])
        assert "0.00" in chart

    def test_unit_suffix(self):
        assert "1.00x" in ascii_bars([("a", 1.0)], unit="x")


class TestCharts:
    def test_chart_fig5a(self):
        rows = [Fig5Row("hip", "A", sync_percent=40.0)]
        chart = chart_fig5a(rows)
        assert "HIP-A" in chart and "#" in chart

    def test_chart_fig7(self):
        rows = [Fig7Row("A", 1.5, 2.5)]
        chart = chart_fig7(rows)
        assert "A (4-wide)" in chart and "A (16-wide)" in chart

    def test_chart_fig8(self):
        rows = [Fig8Row("tms", "A", ratios={1: 1.0, 4: 2.0})]
        chart = chart_fig8(rows)
        assert "TMS-A W1" in chart and "TMS-A W4" in chart


class TestTableRenderers:
    def test_fig5a_table(self):
        text = render_fig5a([Fig5Row("gbc", "A", sync_percent=12.5)])
        assert "GBC" in text and "12.5%" in text

    def test_fig6_table_has_all_topologies(self):
        row = Fig6Row(
            "hip",
            "A",
            base={"1x1": 0.8, "1x4": 2.0, "4x1": 2.1, "4x4": 5.0},
            glsc={"1x1": 1.0, "1x4": 2.5, "4x1": 2.6, "4x4": 6.0},
        )
        text = render_fig6([row])
        for topology in ("1x1", "1x4", "4x1", "4x4"):
            assert topology in text
        assert "Base" in text and "GLSC" in text

    def test_fig6_ratio_helper(self):
        row = Fig6Row("hip", "A", base={"4x4": 5.0}, glsc={"4x4": 6.0})
        assert row.ratio("4x4") == pytest.approx(1.2)

    def test_fig8_table(self):
        text = render_fig8([Fig8Row("tms", "B", ratios={1: 1.0, 16: 3.0})])
        assert "1-wide" in text and "16-wide" in text and "3.00" in text


def _canned_stats(cycles, sync=0, instr=100, stall=10, l1=100, l1_sync=40,
                  saved=20, attempts=0, successes=0):
    stats = MachineStats(cycles=cycles)
    thread = stats.new_thread()
    thread.instructions = instr
    thread.sync_cycles = sync
    thread.mem_stall_cycles = stall
    stats.l1_accesses = l1
    stats.l1_sync_accesses = l1_sync
    stats.l1_accesses_saved_by_combining = saved
    stats.gatherlink_elements = attempts
    stats.scattercond_successes = successes
    return stats


class CannedExecutor:
    """Serves a fixed {spec: stats} table; no simulation involved."""

    def __init__(self, table):
        self.table = table

    def run_sweep(self, sweep, tracer=None, obs=None):
        return {spec: self.table[spec] for spec in sweep}


class TestGoldenRenders:
    """Exact-output tests: a canned {spec: stats} mapping runs through
    the experiment reducers and must render byte-for-byte stable text."""

    def test_fig5a_golden(self):
        table = {
            RunSpec("tms", "A", "1x1", 1, "glsc"): _canned_stats(
                1000, sync=250),
            RunSpec("hip", "A", "1x1", 1, "glsc"): _canned_stats(
                2000, sync=100),
        }
        rows = experiments.fig5a(("tms", "hip"), ("A",),
                                 executor=CannedExecutor(table))
        assert render_fig5a(rows) == (
            "Figure 5(a): % of execution time in synchronization ops "
            "(1x1, 1-wide SIMD, GLSC)\n"
            "benchmark  ds  sync  \n"
            "---------  --  ------\n"
            "TMS        A    25.0%\n"
            "HIP        A     5.0%"
        )

    def test_fig8_golden(self):
        table = {}
        for width, (base, glsc) in zip(
            (1, 4, 16), ((4000, 2000), (2400, 1200), (1600, 1000))
        ):
            table[RunSpec("tms", "A", "4x4", width, "base")] = \
                _canned_stats(base)
            table[RunSpec("tms", "A", "4x4", width, "glsc")] = \
                _canned_stats(glsc)
        rows = experiments.fig8(("tms",), ("A",),
                                executor=CannedExecutor(table))
        assert render_fig8(rows) == (
            "Figure 8: execution-time ratio Base/GLSC at 4x4\n"
            "benchmark  ds  1-wide  4-wide  16-wide\n"
            "---------  --  ------  ------  -------\n"
            "TMS        A   2.00    2.00    1.60   "
        )

    def test_table4_golden(self):
        table = {
            RunSpec("tms", "A", "4x4", 4, "base"): _canned_stats(
                3000, instr=200, stall=100),
            RunSpec("tms", "A", "4x4", 4, "glsc"): _canned_stats(
                1500, instr=100, stall=40, l1=100, l1_sync=40, saved=20,
                attempts=100, successes=90),
            RunSpec("tms", "A", "1x1", 4, "glsc"): _canned_stats(
                1200, attempts=100, successes=98),
        }
        rows = experiments.table4(("tms",), ("A",),
                                  executor=CannedExecutor(table))
        assert render_table4(rows) == (
            "Table 4: analysis of GLSC (4-wide SIMD; reductions at 4x4)\n"
            "benchmark  ds  instr red.  mem-stall red.  "
            "L1 accesses (combined of atomic)  fail 1x1  fail 4x4\n"
            "---------  --  ----------  --------------  "
            "--------------------------------  --------  --------\n"
            "TMS        A    50.00%      60.00%         "
            "33.33% of 40.00%                   2.00%    10.00%  "
        )

    def test_empty_sweep_renders_header_only(self):
        assert render_fig5a([]) == (
            "Figure 5(a): % of execution time in synchronization ops "
            "(1x1, 1-wide SIMD, GLSC)\n"
            "benchmark  ds  sync\n"
            "---------  --  ----"
        )
        assert render_fig8([]) == (
            "Figure 8: execution-time ratio Base/GLSC at 4x4\n"
            "benchmark  ds\n"
            "---------  --"
        )
        assert render_fig6([]).splitlines()[0] == (
            "Figure 6: speedup normalized to 1x1 GLSC time (4-wide SIMD)"
        )
        empty_t4 = render_table4([]).splitlines()
        assert len(empty_t4) == 3  # title + header + rule, no data rows
        assert empty_t4[0].startswith("Table 4:")
