"""Unit tests for report formatting (tables and ASCII charts)."""

import pytest

from repro.harness.experiments import Fig5Row, Fig6Row, Fig7Row, Fig8Row
from repro.harness.report import (
    ascii_bars,
    chart_fig5a,
    chart_fig7,
    chart_fig8,
    render_fig5a,
    render_fig6,
    render_fig8,
)


class TestAsciiBars:
    def test_scales_to_peak(self):
        chart = ascii_bars([("a", 1.0), ("b", 2.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        chart = ascii_bars([("long-label", 1.0), ("x", 1.0)])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty(self):
        assert ascii_bars([]) == "(no data)"

    def test_zero_values(self):
        chart = ascii_bars([("a", 0.0)])
        assert "0.00" in chart

    def test_unit_suffix(self):
        assert "1.00x" in ascii_bars([("a", 1.0)], unit="x")


class TestCharts:
    def test_chart_fig5a(self):
        rows = [Fig5Row("hip", "A", sync_percent=40.0)]
        chart = chart_fig5a(rows)
        assert "HIP-A" in chart and "#" in chart

    def test_chart_fig7(self):
        rows = [Fig7Row("A", 1.5, 2.5)]
        chart = chart_fig7(rows)
        assert "A (4-wide)" in chart and "A (16-wide)" in chart

    def test_chart_fig8(self):
        rows = [Fig8Row("tms", "A", ratios={1: 1.0, 4: 2.0})]
        chart = chart_fig8(rows)
        assert "TMS-A W1" in chart and "TMS-A W4" in chart


class TestTableRenderers:
    def test_fig5a_table(self):
        text = render_fig5a([Fig5Row("gbc", "A", sync_percent=12.5)])
        assert "GBC" in text and "12.5%" in text

    def test_fig6_table_has_all_topologies(self):
        row = Fig6Row(
            "hip",
            "A",
            base={"1x1": 0.8, "1x4": 2.0, "4x1": 2.1, "4x4": 5.0},
            glsc={"1x1": 1.0, "1x4": 2.5, "4x1": 2.6, "4x4": 6.0},
        )
        text = render_fig6([row])
        for topology in ("1x1", "1x4", "4x1", "4x4"):
            assert topology in text
        assert "Base" in text and "GLSC" in text

    def test_fig6_ratio_helper(self):
        row = Fig6Row("hip", "A", base={"4x4": 5.0}, glsc={"4x4": 6.0})
        assert row.ratio("4x4") == pytest.approx(1.2)

    def test_fig8_table(self):
        text = render_fig8([Fig8Row("tms", "B", ratios={1: 1.0, 16: 3.0})])
        assert "1-wide" in text and "16-wide" in text and "3.00" in text
