"""Tests for the assembly parser and interpreter."""

import pytest

from repro.errors import IsaError, ProgramError
from repro.isa.assembler import OPCODES, assemble
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


def run_asm(source, env=None, n_threads=1, simd_width=4, **cfg):
    defaults = dict(
        n_cores=1, threads_per_core=max(n_threads, 1), simd_width=simd_width
    )
    defaults.update(cfg)
    machine = Machine(MachineConfig(**defaults))
    program = assemble(source)
    envs = env if isinstance(env, list) else [env] * max(n_threads, 1)
    for tid in range(max(n_threads, 1)):
        machine.add_program(program.program(envs[tid]))
    return machine, machine.run()


class TestParsing:
    def test_labels_and_comments(self):
        program = assemble("""
        # leading comment
        start:  li r0, 1     ; trailing comment
                jmp end
                li r0, 2
        end:    halt
        """)
        assert program.labels == {"start": 0, "end": 3}
        assert len(program.insns) == 4

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IsaError):
            assemble("frobnicate r0")

    def test_operand_count_checked(self):
        with pytest.raises(IsaError):
            assemble("add r0, r1")

    def test_undefined_label_rejected(self):
        with pytest.raises(IsaError):
            assemble("jmp nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(IsaError):
            assemble("a: nop\na: nop")

    def test_every_opcode_has_bounds(self):
        for op, (low, high) in OPCODES.items():
            assert 0 <= low <= high


class TestScalarExecution:
    def test_arithmetic_and_branches(self):
        machine, _ = run_asm("""
            li   r0, 0
            li   ri, 0
        loop:
            bge  ri, 5, done
            add  r0, r0, ri
            addi ri, ri, 1
            jmp  loop
        done:
            mul  r0, r0, 2
            sw   r0, OUT
            halt
        """, env={"OUT": 64})
        assert machine.image.load_word(64) == 20  # (0+1+2+3+4)*2

    def test_memory_roundtrip(self):
        machine, _ = run_asm("""
            li  r0, 42
            sw  r0, OUT
            lw  r1, OUT
            addi r1, r1, 1
            sw  r1, OUT, 4
            halt
        """, env={"OUT": 128})
        assert machine.image.load_word(128) == 42
        assert machine.image.load_word(132) == 43

    def test_ll_sc(self):
        machine, stats = run_asm("""
        retry:
            ll   r0, ADDR
            addi r0, r0, 1
            sc   rok, ADDR, r0
            beq  rok, 0, retry
            halt
        """, env={"ADDR": 256})
        assert machine.image.load_word(256) == 1
        assert stats.sc_count == 1

    def test_unbound_operand_raises(self):
        with pytest.raises(ProgramError):
            run_asm("lw r0, NOWHERE\nhalt")

    def test_env_symbols_and_builtins(self):
        machine, _ = run_asm("""
            add r0, TID, W
            add r0, r0, BONUS
            sw  r0, OUT
            halt
        """, env={"OUT": 192, "BONUS": 100})
        assert machine.image.load_word(192) == 0 + 4 + 100


class TestVectorExecution:
    def test_vload_vmod_vstore(self):
        machine = Machine(MachineConfig(simd_width=4))
        data = machine.image.alloc_array([10, 21, 32, 43])
        out = machine.image.alloc_zeros(4)
        program = assemble("""
            vload  v0, IN
            vmod   v1, v0, 10
            vstore v1, OUT
            halt
        """)
        machine.add_program(program.program({"IN": data.base, "OUT": out.base}))
        machine.run()
        assert out.to_list() == [0, 1, 2, 3]

    def test_gatherlink_scattercond_loop(self):
        machine = Machine(MachineConfig(simd_width=4))
        bins = machine.image.alloc_zeros(8)
        idx = machine.image.alloc_array([1, 1, 3, 5])
        program = assemble("""
            vload v_idx, IDX
            kones ftodo
        retry:
            kmove ftmp, ftodo
            vgatherlink  ftmp, vtmp, BINS, v_idx, ftmp
            vinc  vtmp, vtmp, ftmp
            vscattercond ftmp, vtmp, BINS, v_idx, ftmp
            kxor  ftodo, ftodo, ftmp
            kbnz  ftodo, retry
            halt
        """)
        machine.add_program(program.program({"BINS": bins.base,
                                             "IDX": idx.base}))
        stats = machine.run()
        assert bins.to_list() == [0, 2, 0, 1, 0, 1, 0, 0]
        assert stats.glsc_element_failures["alias"] == 1

    def test_vector_arith_under_mask(self):
        machine = Machine(MachineConfig(simd_width=4))
        out = machine.image.alloc_zeros(4)
        program = assemble("""
            vbroadcast v0, 5
            viota      v1
            kones      fall
            vadd       v2, v0, v1, fall
            vstore     v2, OUT
            halt
        """)
        machine.add_program(program.program({"OUT": out.base}))
        machine.run()
        assert out.to_list() == [5, 6, 7, 8]

    def test_vcmpeq_and_mask_ops(self):
        machine = Machine(MachineConfig(simd_width=4))
        out = machine.image.alloc_zeros(4)
        program = assemble("""
            vbroadcast v0, 2
            viota      v1
            vcmpeq     feq, v0, v1      # lane 2 only
            knot       fne, feq
            kand       fboth, feq, fne  # empty
            kbz        fboth, good
            jmp        bad
        good:
            vbroadcast v2, 9
            vstore     v2, OUT, 0, feq
            halt
        bad:
            halt
        """)
        machine.add_program(program.program({"OUT": out.base}))
        machine.run()
        assert out.to_list() == [0, 0, 9, 0]

    def test_read_before_set_raises(self):
        with pytest.raises(ProgramError):
            run_asm("vinc v0, v1\nhalt")


class TestMultithreaded:
    def test_parallel_llsc_counter(self):
        machine = Machine(
            MachineConfig(n_cores=2, threads_per_core=2, simd_width=1)
        )
        counter = machine.image.alloc_zeros(1)
        program = assemble("""
            li ri, 0
        loop:
            bge ri, 10, done
        retry:
            ll   r0, ADDR
            addi r0, r0, 1
            sc   rok, ADDR, r0
            beq  rok, 0, retry
            addi ri, ri, 1
            jmp  loop
        done:
            halt
        """)
        for _ in range(4):
            machine.add_program(program.program({"ADDR": counter.base}))
        machine.run()
        assert counter[0] == 40

    def test_barrier(self):
        machine = Machine(MachineConfig(n_cores=2, threads_per_core=1))
        flags = machine.image.alloc_zeros(2)
        out = machine.image.alloc_zeros(2)
        program = assemble("""
            li   r0, 1
            mul  roff, TID, 4
            sw   r0, FLAGS, roff
            barrier
            lw   r1, FLAGS, 0
            lw   r2, FLAGS, 4
            add  r3, r1, r2
            sw   r3, OUT, roff
            halt
        """)
        for _ in range(2):
            machine.add_program(
                program.program({"FLAGS": flags.base, "OUT": out.base})
            )
        machine.run()
        assert out.to_list() == [2, 2]
