"""Unit tests for instruction descriptors and the program DSL."""

import pytest

from repro.errors import IsaError, ProgramError
from repro.isa.instructions import (
    ATOMIC_KINDS,
    GSU_KINDS,
    Instr,
    Kind,
    MEMORY_KINDS,
)
from repro.isa.masks import Mask
from repro.isa.program import ThreadCtx, check_program


class TestInstrConstruction:
    def test_alu_count(self):
        assert Instr.alu(3).count == 3
        with pytest.raises(IsaError):
            Instr.alu(0)

    def test_valu_requires_callable(self):
        with pytest.raises(IsaError):
            Instr.valu("not callable")

    def test_load_store(self):
        load = Instr.load(0x100)
        assert load.kind is Kind.LOAD and load.addr == 0x100
        store = Instr.store(0x104, 7)
        assert store.value == 7

    def test_negative_address_rejected(self):
        with pytest.raises(IsaError):
            Instr.load(-4)

    def test_ll_sc_default_sync(self):
        assert Instr.ll(0x10).sync
        assert Instr.sc(0x10, 1).sync

    def test_vgather_defaults_full_mask(self):
        g = Instr.vgather(0x100, [0, 1, 2, 3])
        assert g.mask == Mask.all_ones(4)

    def test_vscatter_width_mismatch(self):
        with pytest.raises(IsaError):
            Instr.vscatter(0x100, [0, 1], [1.0])

    def test_vscattercond_mask_width_checked(self):
        with pytest.raises(IsaError):
            Instr.vscattercond(0x100, [0, 1], [1, 2], Mask.all_ones(3))

    def test_glsc_instructions_default_sync(self):
        gl = Instr.vgatherlink(0x100, [0, 1])
        sc = Instr.vscattercond(0x100, [0, 1], [5, 6])
        assert gl.sync and sc.sync

    def test_negative_index_rejected(self):
        with pytest.raises(IsaError):
            Instr.vgather(0x100, [0, -1])

    def test_empty_indices_rejected(self):
        with pytest.raises(IsaError):
            Instr.vgather(0x100, [])

    def test_barrier(self):
        b = Instr.barrier("all")
        assert b.kind is Kind.BARRIER and b.group == "all" and b.sync

    def test_repr_mentions_kind(self):
        assert "vgatherlink" in repr(Instr.vgatherlink(0x40, [0]))


class TestKindSets:
    def test_gsu_kinds_are_memory_kinds(self):
        assert GSU_KINDS <= MEMORY_KINDS

    def test_atomic_kinds(self):
        assert Kind.LL in ATOMIC_KINDS
        assert Kind.VSCATTERCOND in ATOMIC_KINDS
        assert Kind.VGATHER not in ATOMIC_KINDS


class TestThreadCtx:
    def test_identity_validation(self):
        with pytest.raises(ProgramError):
            ThreadCtx(4, 4, 4)

    def test_masks(self):
        ctx = ThreadCtx(0, 1, 4)
        assert ctx.all_ones() == Mask.all_ones(4)
        assert ctx.zeros() == Mask.zeros(4)
        assert ctx.prefix_mask(2) == Mask(0b0011, 4)
        assert ctx.prefix_mask(99) == Mask.all_ones(4)
        assert ctx.prefix_mask(0) == Mask.zeros(4)

    def test_vload_uses_ctx_width(self):
        ctx = ThreadCtx(0, 1, 8)
        assert ctx.vload(0x100).count == 8

    def test_vgatherlink_builds_instr(self):
        ctx = ThreadCtx(0, 1, 2)
        instr = ctx.vgatherlink(0x100, [3, 5])
        assert instr.kind is Kind.VGATHERLINK
        assert instr.indices == (3, 5)

    def test_check_program_accepts_generator_fn(self):
        def prog(ctx):
            yield ctx.alu()

        check_program(prog)

    def test_check_program_rejects_non_callable(self):
        with pytest.raises(ProgramError):
            check_program(42)
