"""Unit and property tests for SIMD masks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.masks import Mask


def mask_strategy(width: int):
    return st.integers(min_value=0, max_value=(1 << width) - 1).map(
        lambda bits: Mask(bits, width)
    )


class TestConstruction:
    def test_all_ones(self):
        m = Mask.all_ones(4)
        assert m.bits == 0b1111
        assert m.all() and m.any() and not m.none()

    def test_zeros(self):
        m = Mask.zeros(4)
        assert m.none() and not m.any() and not m.all()

    def test_from_lanes(self):
        m = Mask.from_lanes([True, False, True, True])
        assert m.bits == 0b1101
        assert m.lanes() == [True, False, True, True]

    def test_single(self):
        assert Mask.single(2, 4).bits == 0b100

    def test_bits_must_fit(self):
        with pytest.raises(IsaError):
            Mask(0b10000, 4)

    def test_negative_bits_rejected(self):
        with pytest.raises(IsaError):
            Mask(-1, 4)

    def test_zero_width_rejected(self):
        with pytest.raises(IsaError):
            Mask(0, 0)

    def test_from_empty_lanes_rejected(self):
        with pytest.raises(IsaError):
            Mask.from_lanes([])


class TestQueries:
    def test_active_lanes(self):
        assert Mask(0b1010, 4).active_lanes() == [1, 3]

    def test_popcount(self):
        assert Mask(0b1011, 4).popcount() == 3

    def test_lane_out_of_range(self):
        with pytest.raises(IsaError):
            Mask.all_ones(4).lane(4)

    def test_len_and_iter(self):
        m = Mask(0b01, 2)
        assert len(m) == 2
        assert list(m) == [True, False]

    def test_bool(self):
        assert Mask(0b1, 1)
        assert not Mask(0, 1)


class TestAlgebra:
    def test_and_or_xor(self):
        a, b = Mask(0b1100, 4), Mask(0b1010, 4)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110

    def test_invert(self):
        assert (~Mask(0b0011, 4)).bits == 0b1100

    def test_andnot(self):
        assert Mask(0b1110, 4).andnot(Mask(0b0110, 4)).bits == 0b1000

    def test_width_mismatch_rejected(self):
        with pytest.raises(IsaError):
            Mask.all_ones(4) & Mask.all_ones(8)

    def test_with_lane(self):
        m = Mask(0b0000, 4).with_lane(2, True)
        assert m.bits == 0b100
        assert m.with_lane(2, False).bits == 0

    def test_equality_and_hash(self):
        assert Mask(0b01, 2) == Mask(0b01, 2)
        assert Mask(0b01, 2) != Mask(0b01, 4)
        assert hash(Mask(0b01, 2)) == hash(Mask(0b01, 2))


class TestProperties:
    @given(mask_strategy(8))
    def test_double_invert_is_identity(self, m):
        assert ~~m == m

    @given(mask_strategy(8), mask_strategy(8))
    def test_de_morgan(self, a, b):
        assert ~(a & b) == (~a | ~b)

    @given(mask_strategy(8), mask_strategy(8))
    def test_xor_via_andnot(self, a, b):
        assert (a ^ b) == (a.andnot(b) | b.andnot(a))

    @given(mask_strategy(8))
    def test_popcount_matches_active_lanes(self, m):
        assert m.popcount() == len(m.active_lanes())

    @given(mask_strategy(8), mask_strategy(8))
    def test_retry_loop_update_partitions(self, todo, ok):
        """FtoDo ^= Ftmp in Figure 3 never resurrects finished lanes."""
        done = ok & todo
        remaining = todo.andnot(done)
        assert (remaining & done).none()
        assert (remaining | done) == todo
