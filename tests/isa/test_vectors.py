"""Unit and property tests for SIMD vector helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.masks import Mask
from repro.isa import vectors as V


class TestConstructors:
    def test_vbroadcast(self):
        assert V.vbroadcast(7, 4) == (7, 7, 7, 7)

    def test_viota(self):
        assert V.viota(4) == (0, 1, 2, 3)
        assert V.viota(3, start=10, step=2) == (10, 12, 14)

    def test_zero_width_rejected(self):
        with pytest.raises(IsaError):
            V.vbroadcast(1, 0)


class TestMaskedOps:
    def test_vinc_full(self):
        assert V.vinc((1, 2, 3)) == (2, 3, 4)

    def test_vinc_masked_passthrough(self):
        m = Mask(0b101, 3)
        assert V.vinc((1, 2, 3), m) == (2, 2, 4)

    def test_vadd_masked(self):
        m = Mask(0b01, 2)
        assert V.vadd((1, 2), (10, 20), m) == (11, 2)

    def test_vmod(self):
        assert V.vmod((5, 9, 13), 4) == (1, 1, 1)

    def test_vmod_zero_divisor(self):
        with pytest.raises(IsaError):
            V.vmod((1,), 0)

    def test_vmul_vsub(self):
        assert V.vmul((2, 3), (4, 5)) == (8, 15)
        assert V.vsub((4, 5), (1, 1)) == (3, 4)

    def test_vmin_vmax(self):
        assert V.vmin((1, 5), (2, 4)) == (1, 4)
        assert V.vmax((1, 5), (2, 4)) == (2, 5)

    def test_width_mismatch(self):
        with pytest.raises(IsaError):
            V.vadd((1, 2), (1, 2, 3))

    def test_mask_width_mismatch(self):
        with pytest.raises(IsaError):
            V.vinc((1, 2), Mask.all_ones(3))


class TestCompareAndBlend:
    def test_vcompare_equal(self):
        m = V.vcompare_equal((0, 1, 0, 1), (0, 0, 0, 0))
        assert m == Mask(0b0101, 4)

    def test_vcompare_equal_under_mask(self):
        # Lanes outside the input mask must compare false (VLOCK relies
        # on this: unlinked lanes must not look like free locks).
        m = V.vcompare_equal((0, 0), (0, 0), Mask(0b01, 2))
        assert m == Mask(0b01, 2)

    def test_vblend(self):
        assert V.vblend((1, 2, 3), (9, 9, 9), Mask(0b010, 3)) == (1, 9, 3)


class TestProperties:
    vecs = st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=4, max_size=4
    ).map(tuple)

    @given(vecs, st.integers(0, 15))
    def test_masked_op_only_touches_active_lanes(self, vec, bits):
        mask = Mask(bits, 4)
        out = V.vinc(vec, mask)
        for lane in range(4):
            if mask.lane(lane):
                assert out[lane] == vec[lane] + 1
            else:
                assert out[lane] == vec[lane]

    @given(vecs, vecs)
    def test_compare_equal_reflexive(self, a, b):
        assert V.vcompare_equal(a, a).all()
        eq = V.vcompare_equal(a, b)
        for lane in range(4):
            assert eq.lane(lane) == (a[lane] == b[lane])
